//! End-to-end solver parity for the sharded backend: `Gmres` and
//! `BlockGmres` on `BackendKind::Sharded { shards }` must produce
//! bit-identical results and solutions to `BackendKind::Reference` at
//! every shard count — sharding only decides *which shard computes
//! which rows*, never the arithmetic.
//!
//! Unlike `backend_parity.rs` this deliberately does **not** compare
//! timing reports: the sharded context charges each matvec as per-shard
//! interior/boundary pieces plus explicit `Halo` exchange traffic, so
//! the simulated timeline is restructured by design. Instead the
//! sharded runs are checked for the things sharding *should* change:
//! halo bytes on the interconnect and comm/compute overlap
//! (critical-path seconds strictly below serial seconds at >= 2
//! shards).

use mpgmres::precond::block_jacobi::BlockJacobi;
use mpgmres::precond::poly::PolyPreconditioner;
use mpgmres::precond::Identity;
use mpgmres::{
    BackendKind, BlockGmres, Gmres, GmresConfig, GpuContext, GpuMatrix, MultiVec, SolveResult,
};
use mpgmres_gpusim::{DeviceModel, KernelClass};
use mpgmres_la::coo::Coo;
use mpgmres_la::vec_ops::ReductionOrder;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 4];

fn laplace2d(nx: usize) -> GpuMatrix<f64> {
    let n = nx * nx;
    let mut coo = Coo::new(n, n);
    let idx = |i: usize, j: usize| i * nx + j;
    for i in 0..nx {
        for j in 0..nx {
            let r = idx(i, j);
            coo.push(r, r, 4.0);
            if i > 0 {
                coo.push(r, idx(i - 1, j), -1.0);
            }
            if i + 1 < nx {
                coo.push(r, idx(i + 1, j), -1.0);
            }
            if j > 0 {
                coo.push(r, idx(i, j - 1), -1.0);
            }
            if j + 1 < nx {
                coo.push(r, idx(i, j + 1), -1.0);
            }
        }
    }
    GpuMatrix::new(coo.into_csr())
}

fn rhs(n: usize, salt: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let z = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
            (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

fn ctx(kind: BackendKind, order: ReductionOrder) -> GpuContext {
    GpuContext::with_backend_kind(DeviceModel::v100_belos(), order, kind)
}

fn assert_same_result(a: &SolveResult, b: &SolveResult, what: &str) {
    assert_eq!(a.status, b.status, "{what}: status");
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.restarts, b.restarts, "{what}: restarts");
    assert_eq!(
        a.final_relative_residual.to_bits(),
        b.final_relative_residual.to_bits(),
        "{what}: final residual must be bit-identical"
    );
    assert_eq!(a.history.len(), b.history.len(), "{what}: history length");
    for (i, (ha, hb)) in a.history.iter().zip(&b.history).enumerate() {
        assert_eq!(ha.iteration, hb.iteration, "{what}: history[{i}] iteration");
        assert_eq!(
            ha.relative_residual.to_bits(),
            hb.relative_residual.to_bits(),
            "{what}: history[{i}] residual"
        );
    }
}

fn assert_same_bits(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (p, q)) in a.iter().zip(b).enumerate() {
        assert_eq!(p.to_bits(), q.to_bits(), "{what}: x[{i}]");
    }
}

/// Assert the sharded-specific invariants on a finished context: halo
/// traffic was charged and the recorded pieces overlapped on the
/// timeline (only meaningful at >= 2 shards; a single shard degenerates
/// to the reference schedule with no halo).
fn assert_sharded_profile(c: &GpuContext, shards: usize, what: &str) {
    let halo = c.profiler().class_stats(KernelClass::Halo);
    if shards >= 2 {
        assert!(halo.bytes > 0, "{what}: {shards} shards must charge halo");
        let (serial, critical) = (
            c.profiler().total_seconds(),
            c.profiler().critical_seconds(),
        );
        assert!(
            critical < serial,
            "{what}: {shards} shards must overlap comm and compute \
             ({critical} !< {serial})"
        );
    } else {
        assert_eq!(halo.bytes, 0, "{what}: 1 shard has no halo");
    }
}

/// Run one closure on the reference backend and on every sharded shard
/// count; results and solutions must match bit-for-bit, and the sharded
/// contexts must show halo traffic + overlap.
fn compare<F>(what: &str, order: ReductionOrder, run: F)
where
    F: Fn(&mut GpuContext) -> (SolveResult, Vec<f64>),
{
    let mut c_ref = ctx(BackendKind::Reference, order);
    let (r_ref, x_ref) = run(&mut c_ref);
    assert_eq!(
        c_ref.profiler().class_stats(KernelClass::Halo).bytes,
        0,
        "{what}: reference backend must never touch the Halo class"
    );
    for shards in SHARD_COUNTS {
        let mut c_s = ctx(BackendKind::Sharded { shards }, order);
        let (r_s, x_s) = run(&mut c_s);
        let tag = format!("{what}@{shards}shards");
        assert_same_result(&r_ref, &r_s, &tag);
        assert_same_bits(&x_ref, &x_s, &tag);
        assert_sharded_profile(&c_s, shards, &tag);
    }
}

#[test]
fn gmres_sharded_matches_reference_both_orders() {
    let nx = 14;
    let n = nx * nx;
    let a = laplace2d(nx);
    let b = rhs(n, 7);
    for order in [ReductionOrder::Sequential, ReductionOrder::GPU_LIKE] {
        compare(&format!("gmres/{order:?}"), order, |c| {
            let mut x = vec![0.0f64; n];
            let cfg = GmresConfig::default().with_m(20).with_max_iters(10_000);
            let r = Gmres::new(&a, &Identity, cfg).solve(c, &b, &mut x);
            (r, x)
        });
    }
}

#[test]
fn poly_preconditioned_gmres_sharded_matches_reference() {
    // The polynomial preconditioner's setup (Arnoldi + eigensolve) and
    // its apply both run through the sharded backend too.
    let nx = 12;
    let n = nx * nx;
    let a = laplace2d(nx);
    let b = rhs(n, 11);
    compare("gmres+poly", ReductionOrder::GPU_LIKE, |c| {
        let poly = PolyPreconditioner::build_auto_seed(c, &a, 8).expect("poly build");
        let mut x = vec![0.0f64; n];
        let cfg = GmresConfig::default().with_m(20).with_max_iters(5_000);
        let r = Gmres::new(&a, &poly, cfg).solve(c, &b, &mut x);
        (r, x)
    });
}

#[test]
fn block_gmres_sharded_matches_reference() {
    // k = 3 exercises the sharded SpMM path (per-column halo spans).
    let nx = 12;
    let n = nx * nx;
    let a = laplace2d(nx);
    let cols: Vec<Vec<f64>> = (0..3).map(|s| rhs(n, 21 + s)).collect();
    let precond = BlockJacobi::build(&a, 8);
    let run_block = |c: &mut GpuContext, cfg: GmresConfig| {
        let bb = MultiVec::from_columns(&[&cols[0][..], &cols[1][..], &cols[2][..]]);
        let mut xb = MultiVec::zeros(n, 3);
        let r = BlockGmres::new(&a, &precond, cfg).solve(c, &bb, &mut xb);
        (r, xb)
    };
    for (what, cfg) in [
        (
            "block-gmres",
            GmresConfig::default().with_m(25).with_max_iters(5_000),
        ),
        (
            // Pipelined: host-side steps are software-pipelined behind
            // device work, which must not perturb the arithmetic.
            "block-gmres+pipeline",
            GmresConfig::default()
                .with_m(25)
                .with_max_iters(5_000)
                .with_pipeline_depth(1),
        ),
    ] {
        let mut c_ref = ctx(BackendKind::Reference, ReductionOrder::GPU_LIKE);
        let (r_ref, x_ref) = run_block(&mut c_ref, cfg);
        for shards in SHARD_COUNTS {
            let mut c_s = ctx(BackendKind::Sharded { shards }, ReductionOrder::GPU_LIKE);
            let (r_s, x_s) = run_block(&mut c_s, cfg);
            let tag = format!("{what}@{shards}shards");
            for (col, (rr, rs)) in r_ref.iter().zip(&r_s).enumerate() {
                assert_same_result(rr, rs, &format!("{tag} col{col}"));
            }
            for col in 0..3 {
                assert_same_bits(x_ref.col(col), x_s.col(col), &format!("{tag} col{col}"));
            }
            assert_sharded_profile(&c_s, shards, &tag);
        }
    }
}

/// A second identical sharded solve on the same context must replay the
/// recorded regions: stream hits strictly increase while the node pool
/// stays flat (zero-node warm replay at full-solver scope, not just for
/// one hand-built region).
#[test]
fn sharded_solver_warm_replay_allocates_no_nodes() {
    let nx = 10;
    let n = nx * nx;
    let a = laplace2d(nx);
    let b = rhs(n, 3);
    let mut c = ctx(
        BackendKind::Sharded { shards: 3 },
        ReductionOrder::Sequential,
    );
    let cfg = GmresConfig::default().with_m(20).with_max_iters(10_000);
    let solve = |c: &mut GpuContext| {
        let mut x = vec![0.0f64; n];
        let r = Gmres::new(&a, &Identity, cfg).solve(c, &b, &mut x);
        (r, x)
    };
    let (r0, x0) = solve(&mut c);
    let cold = c.stream_stats();
    let (r1, x1) = solve(&mut c);
    let warm = c.stream_stats();
    assert_same_result(&r0, &r1, "warm replay");
    assert_same_bits(&x0, &x1, "warm replay");
    assert!(
        warm.hits > cold.hits,
        "warm solve must hit the region cache"
    );
    assert_eq!(
        warm.nodes_allocated, cold.nodes_allocated,
        "warm sharded solve must allocate zero new nodes"
    );
}
