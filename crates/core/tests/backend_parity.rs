//! Full-solver backend parity: all four solvers must produce identical
//! results and identical simulated V100 timing reports on every backend.
//!
//! This is the acceptance test for the backend refactor: `GpuContext`
//! charges the profiler from operand shapes only, and the backends are
//! bit-compatible, so switching backends must change *nothing* about a
//! solve except wall-clock time.

use std::sync::Arc;

use mpgmres::precond::poly::PolyPreconditioner;
use mpgmres::precond::Identity;
use mpgmres::{
    Backend, BackendKind, FdConfig, Gmres, GmresConfig, GmresFd, GmresIr, GmresIr3, GpuContext,
    GpuMatrix, Ir3Config, IrConfig, ParallelBackend, ReferenceBackend, SolveResult,
};
use mpgmres_gpusim::{DeviceModel, PaperCategory, TimingReport};
use mpgmres_la::coo::Coo;
use mpgmres_la::vec_ops::ReductionOrder;
use mpgmres_scalar::Half;

fn laplace1d(n: usize) -> GpuMatrix<f64> {
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.0);
        if i > 0 {
            coo.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            coo.push(i, i + 1, -1.0);
        }
    }
    GpuMatrix::new(coo.into_csr())
}

fn ctx(kind: BackendKind, order: ReductionOrder) -> GpuContext {
    GpuContext::with_backend_kind(DeviceModel::v100_belos(), order, kind)
}

fn assert_same_result(a: &SolveResult, b: &SolveResult, what: &str) {
    assert_eq!(a.status, b.status, "{what}: status");
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.restarts, b.restarts, "{what}: restarts");
    assert_eq!(
        a.final_relative_residual.to_bits(),
        b.final_relative_residual.to_bits(),
        "{what}: final residual must be bit-identical"
    );
    assert_eq!(a.history.len(), b.history.len(), "{what}: history length");
    for (ha, hb) in a.history.iter().zip(&b.history) {
        assert_eq!(ha.iteration, hb.iteration, "{what}: history iteration");
        assert_eq!(
            ha.relative_residual.to_bits(),
            hb.relative_residual.to_bits(),
            "{what}: history residual must be bit-identical"
        );
    }
}

fn assert_same_report(a: &TimingReport, b: &TimingReport, what: &str) {
    assert_eq!(
        a.total_seconds.to_bits(),
        b.total_seconds.to_bits(),
        "{what}: total simulated seconds must be identical across backends"
    );
    for cat in PaperCategory::ALL {
        let (sa, sb) = (a.seconds(cat), b.seconds(cat));
        assert_eq!(sa.to_bits(), sb.to_bits(), "{what}: category {cat} seconds");
        let ca = a.categories.get(&cat).map(|s| s.calls).unwrap_or(0);
        let cb = b.categories.get(&cat).map(|s| s.calls).unwrap_or(0);
        assert_eq!(ca, cb, "{what}: category {cat} calls");
    }
}

/// Run one closure per backend and compare results + timing reports.
fn compare<F>(what: &str, order: ReductionOrder, run: F)
where
    F: Fn(&mut GpuContext) -> (SolveResult, Vec<f64>),
{
    let mut c_ref = ctx(BackendKind::Reference, order);
    let (r_ref, x_ref) = run(&mut c_ref);
    let mut c_par = ctx(BackendKind::Parallel, order);
    let (r_par, x_par) = run(&mut c_par);
    assert_same_result(&r_ref, &r_par, what);
    for (a, b) in x_ref.iter().zip(&x_par) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: solution must be bit-identical"
        );
    }
    assert_same_report(&c_ref.report(), &c_par.report(), what);
}

#[test]
fn gmres_identical_across_backends_both_orders() {
    let n = 160;
    let a = laplace1d(n);
    let b = vec![1.0f64; n];
    for order in [ReductionOrder::Sequential, ReductionOrder::GPU_LIKE] {
        compare(&format!("gmres/{order:?}"), order, |c| {
            let mut x = vec![0.0f64; n];
            let cfg = GmresConfig::default().with_m(20).with_max_iters(10_000);
            let r = Gmres::new(&a, &Identity, cfg).solve(c, &b, &mut x);
            (r, x)
        });
    }
}

#[test]
fn gmres_ir_identical_across_backends() {
    let n = 120;
    let a = laplace1d(n);
    let b = vec![1.0f64; n];
    for order in [ReductionOrder::Sequential, ReductionOrder::GPU_LIKE] {
        compare(&format!("gmres-ir/{order:?}"), order, |c| {
            let mut x = vec![0.0f64; n];
            let cfg = IrConfig::default().with_m(20).with_max_iters(20_000);
            let r = GmresIr::<f32, f64>::new(&a, &Identity, cfg).solve(c, &b, &mut x);
            (r, x)
        });
    }
}

#[test]
fn gmres_ir3_identical_across_backends() {
    let n = 32;
    let a = laplace1d(n);
    let b = vec![1.0f64; n];
    compare("gmres-ir3", ReductionOrder::Sequential, |c| {
        let mut x = vec![0.0f64; n];
        let cfg = Ir3Config {
            m: 32,
            ..Ir3Config::default()
        };
        let r = GmresIr3::new(&a, &Identity, cfg).solve(c, &b, &mut x);
        (r, x)
    });
}

#[test]
fn gmres_fd_identical_across_backends() {
    let n = 96;
    let a = laplace1d(n);
    let b = vec![1.0f64; n];
    let id32 = Identity;
    let id64 = Identity;
    compare("gmres-fd", ReductionOrder::Sequential, |c| {
        let cfg = FdConfig {
            m: 15,
            switch_at: 30,
            max_iters: 20_000,
            ..FdConfig::default()
        };
        let mut x = vec![0.0f64; n];
        let r = GmresFd::<f32, f64>::new(&a, &id32, &id64, cfg).solve(c, &b, &mut x);
        (r.result, x)
    });
}

#[test]
fn preconditioned_solve_identical_across_backends() {
    // Polynomial preconditioner: setup (Arnoldi + eigensolve) and apply
    // both go through the backend.
    let n = 96;
    let a = laplace1d(n);
    let b = vec![1.0f64; n];
    compare("gmres+poly", ReductionOrder::GPU_LIKE, |c| {
        let poly = PolyPreconditioner::build_auto_seed(c, &a, 8).expect("poly build");
        let mut x = vec![0.0f64; n];
        let cfg = GmresConfig::default().with_m(20).with_max_iters(5_000);
        let r = Gmres::new(&a, &poly, cfg).solve(c, &b, &mut x);
        (r, x)
    });
}

#[test]
fn half_precision_ir_identical_across_backends() {
    let n = 24;
    let a = laplace1d(n);
    let b = vec![1.0f64; n];
    compare("gmres-ir<half>", ReductionOrder::Sequential, |c| {
        let mut x = vec![0.0f64; n];
        let cfg = IrConfig::default().with_m(24).with_max_iters(50_000);
        let r = GmresIr::<Half, f64>::new(&a, &Identity, cfg).solve(c, &b, &mut x);
        (r, x)
    });
}

#[test]
fn gmres_parity_on_large_problem_exercises_parallel_kernels() {
    // n and nnz are above PAR_THRESHOLD / SPMV_PAR_THRESHOLD and the
    // backend is forced to 4 workers, so the row/column/block
    // partitioned kernels in `mpgmres_la::par` genuinely execute (the
    // small-problem tests above all take the sequential fallback).
    let n = 40_000;
    let a = laplace1d(n);
    let b = vec![1.0f64; n];
    let cfg = GmresConfig::default().with_m(20).with_max_iters(100);
    let run = |backend: Arc<dyn Backend>| {
        let mut c =
            GpuContext::with_backend(DeviceModel::v100_belos(), ReductionOrder::GPU_LIKE, backend);
        let mut x = vec![0.0f64; n];
        let r = Gmres::new(&a, &Identity, cfg).solve(&mut c, &b, &mut x);
        (r, x, c.report())
    };
    let (r_ref, x_ref, rep_ref) = run(Arc::new(ReferenceBackend));
    let (r_par, x_par, rep_par) = run(Arc::new(ParallelBackend::with_threads(4)));
    assert_same_result(&r_ref, &r_par, "gmres/large");
    for (p, q) in x_ref.iter().zip(&x_par) {
        assert_eq!(p.to_bits(), q.to_bits(), "gmres/large: solution bits");
    }
    assert_same_report(&rep_ref, &rep_par, "gmres/large");
}
