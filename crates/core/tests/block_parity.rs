//! Multi-RHS parity: `BlockGmres` vs independent single-RHS `Gmres`.
//!
//! The contract under test (see `block_gmres`'s module docs):
//!
//! - `k = 1`: solution, iteration history, terminal status, AND the
//!   simulated timing report are **bit-for-bit** identical to `Gmres`,
//!   on both backends.
//! - `k = 4`: each column's solution and history are bit-for-bit
//!   identical to an independent `Gmres` solve of that column, on both
//!   backends, including columns that converge at different iterations
//!   (exercising deflation).

use std::sync::Arc;

use mpgmres::precond::block_jacobi::BlockJacobi;
use mpgmres::precond::{Identity, Preconditioner};
use mpgmres::{
    Backend, BlockGmres, Gmres, GmresConfig, GpuContext, GpuMatrix, MultiVec, ParallelBackend,
    ReferenceBackend, SolveResult,
};
use mpgmres_gpusim::{DeviceModel, PaperCategory};
use mpgmres_la::coo::Coo;
use mpgmres_la::vec_ops::ReductionOrder;

fn laplace2d_matrix(nx: usize) -> GpuMatrix<f64> {
    let n = nx * nx;
    let mut coo = Coo::new(n, n);
    let idx = |i: usize, j: usize| i * nx + j;
    for i in 0..nx {
        for j in 0..nx {
            let r = idx(i, j);
            coo.push(r, r, 4.0);
            if i > 0 {
                coo.push(r, idx(i - 1, j), -1.0);
            }
            if i + 1 < nx {
                coo.push(r, idx(i + 1, j), -1.0);
            }
            if j > 0 {
                coo.push(r, idx(i, j - 1), -1.0);
            }
            if j + 1 < nx {
                coo.push(r, idx(i, j + 1), -1.0);
            }
        }
    }
    GpuMatrix::new(coo.into_csr())
}

fn rhs(n: usize, salt: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let z = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
            (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

fn backends() -> Vec<(&'static str, Arc<dyn Backend>)> {
    vec![
        ("reference", Arc::new(ReferenceBackend) as Arc<dyn Backend>),
        (
            "parallel",
            Arc::new(ParallelBackend::with_threads(4)) as Arc<dyn Backend>,
        ),
    ]
}

fn ctx_on(backend: Arc<dyn Backend>, order: ReductionOrder) -> GpuContext {
    GpuContext::with_backend(DeviceModel::v100_belos(), order, backend)
}

fn assert_results_identical(single: &SolveResult, block: &SolveResult, what: &str) {
    assert_eq!(single.status, block.status, "{what}: status");
    assert_eq!(single.iterations, block.iterations, "{what}: iterations");
    assert_eq!(single.restarts, block.restarts, "{what}: restarts");
    assert_eq!(
        single.final_relative_residual.to_bits(),
        block.final_relative_residual.to_bits(),
        "{what}: final residual"
    );
    assert_eq!(
        single.history.len(),
        block.history.len(),
        "{what}: history length"
    );
    for (i, (hs, hb)) in single.history.iter().zip(&block.history).enumerate() {
        assert_eq!(hs.iteration, hb.iteration, "{what}: history[{i}] iteration");
        assert_eq!(hs.kind, hb.kind, "{what}: history[{i}] kind");
        assert_eq!(
            hs.relative_residual.to_bits(),
            hb.relative_residual.to_bits(),
            "{what}: history[{i}] residual"
        );
    }
}

fn assert_reports_identical(single: &GpuContext, block: &GpuContext, what: &str) {
    let (rs, rb) = (single.report(), block.report());
    assert_eq!(
        rs.total_seconds.to_bits(),
        rb.total_seconds.to_bits(),
        "{what}: total simulated seconds"
    );
    for cat in PaperCategory::ALL {
        let s = rs.categories.get(&cat).copied().unwrap_or_default();
        let b = rb.categories.get(&cat).copied().unwrap_or_default();
        assert_eq!(s.calls, b.calls, "{what}: {cat} calls");
        assert_eq!(s.bytes, b.bytes, "{what}: {cat} bytes");
        assert_eq!(
            s.seconds.to_bits(),
            b.seconds.to_bits(),
            "{what}: {cat} seconds"
        );
    }
}

/// k = 1 reproduces single-RHS GMRES bit-for-bit, including the
/// simulated timing report, on both backends and both reduction orders.
#[test]
fn width_one_block_solve_is_bit_identical_to_gmres() {
    let a = laplace2d_matrix(40);
    let n = a.n();
    let b = rhs(n, 1);
    let cfg = GmresConfig::default().with_m(25).with_max_iters(5_000);
    for (name, backend) in backends() {
        for order in [ReductionOrder::Sequential, ReductionOrder::GPU_LIKE] {
            let what = format!("{name}/{order:?}");
            let mut ctx_s = ctx_on(backend.clone(), order);
            let mut x_s = vec![0.0f64; n];
            let res_s = Gmres::new(&a, &Identity, cfg).solve(&mut ctx_s, &b, &mut x_s);

            let mut ctx_b = ctx_on(backend.clone(), order);
            let bb = MultiVec::from_columns(&[&b]);
            let mut xb = MultiVec::<f64>::zeros(n, 1);
            let res_b = BlockGmres::new(&a, &Identity, cfg).solve(&mut ctx_b, &bb, &mut xb);

            assert_eq!(res_b.len(), 1);
            assert!(
                res_s.status.is_converged(),
                "{what}: single solve converged"
            );
            assert_results_identical(&res_s, &res_b[0], &what);
            for (i, (xs, xb)) in x_s.iter().zip(xb.col(0)).enumerate() {
                assert_eq!(xs.to_bits(), xb.to_bits(), "{what}: x[{i}]");
            }
            assert_reports_identical(&ctx_s, &ctx_b, &what);
        }
    }
}

/// k = 4 with heterogeneous right-hand sides: every column bit-identical
/// to its independent solve, with columns converging at different
/// iteration counts (so the deflation path really runs).
#[test]
fn width_four_columns_match_independent_solves() {
    let a = laplace2d_matrix(40);
    let n = a.n();
    // Heterogeneous difficulty: a smooth RHS, two pseudo-random ones,
    // and a near-sparse one converge at different iteration counts.
    let b0: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 / n as f64)).collect();
    let b1 = rhs(n, 2);
    let b2 = rhs(n, 3);
    let mut b3 = vec![0.0f64; n];
    b3[0] = 1.0;
    b3[n / 2] = -2.0;
    let cols: Vec<&[f64]> = vec![&b0, &b1, &b2, &b3];
    let cfg = GmresConfig::default().with_m(30).with_max_iters(5_000);

    for (name, backend) in backends() {
        let order = ReductionOrder::GPU_LIKE;
        let mut singles = Vec::new();
        for (l, b) in cols.iter().enumerate() {
            let mut ctx = ctx_on(backend.clone(), order);
            let mut x = vec![0.0f64; n];
            let res = Gmres::new(&a, &Identity, cfg).solve(&mut ctx, b, &mut x);
            assert!(res.status.is_converged(), "{name}: single col {l}");
            singles.push((res, x));
        }
        let iters: Vec<usize> = singles.iter().map(|(r, _)| r.iterations).collect();
        assert!(
            iters.iter().any(|&i| i != iters[0]),
            "{name}: columns should converge at different iterations, got {iters:?}"
        );

        let mut ctx_b = ctx_on(backend.clone(), order);
        let bb = MultiVec::from_columns(&cols);
        let mut xb = MultiVec::<f64>::zeros(n, 4);
        let res_b = BlockGmres::new(&a, &Identity, cfg).solve(&mut ctx_b, &bb, &mut xb);
        assert_eq!(res_b.len(), 4);
        for (l, (res_s, x_s)) in singles.iter().enumerate() {
            let what = format!("{name}: col {l}");
            assert_results_identical(res_s, &res_b[l], &what);
            for (i, (xs, xbv)) in x_s.iter().zip(xb.col(l)).enumerate() {
                assert_eq!(xs.to_bits(), xbv.to_bits(), "{what}: x[{i}]");
            }
        }
    }
}

/// ISSUE 5: the software-pipelined driver keeps the same contract —
/// every column of a `pipeline_depth = 1` block solve is bit-identical
/// to an independent single-RHS `Gmres` solve (the pipelining only
/// moves host charges on the timeline, never the arithmetic).
#[test]
fn pipelined_columns_match_independent_solves() {
    let a = laplace2d_matrix(32);
    let n = a.n();
    let cols_data: Vec<Vec<f64>> = (0..3).map(|l| rhs(n, 40 + l)).collect();
    let cols: Vec<&[f64]> = cols_data.iter().map(|c| c.as_slice()).collect();
    let cfg = GmresConfig::default().with_m(25).with_max_iters(5_000);
    for (name, backend) in backends() {
        let order = ReductionOrder::GPU_LIKE;
        let mut singles = Vec::new();
        for (l, b) in cols.iter().enumerate() {
            let mut ctx = ctx_on(backend.clone(), order);
            let mut x = vec![0.0f64; n];
            let res = Gmres::new(&a, &Identity, cfg).solve(&mut ctx, b, &mut x);
            assert!(res.status.is_converged(), "{name}: single col {l}");
            singles.push((res, x));
        }
        let mut ctx_b = ctx_on(backend.clone(), order);
        let bb = MultiVec::from_columns(&cols);
        let mut xb = MultiVec::<f64>::zeros(n, 3);
        let res_b = BlockGmres::new(&a, &Identity, cfg.with_pipeline_depth(1))
            .solve(&mut ctx_b, &bb, &mut xb);
        for (l, (res_s, x_s)) in singles.iter().enumerate() {
            let what = format!("{name}: pipelined col {l}");
            assert_results_identical(res_s, &res_b[l], &what);
            for (i, (xs, xbv)) in x_s.iter().zip(xb.col(l)).enumerate() {
                assert_eq!(xs.to_bits(), xbv.to_bits(), "{what}: x[{i}]");
            }
        }
    }
}

/// Preconditioned parity (block Jacobi): the preconditioner is applied
/// per column inside the block path and per solve outside; results must
/// still be bit-identical, k = 1 and k = 4.
#[test]
fn preconditioned_block_solve_matches_independent_solves() {
    let a = laplace2d_matrix(32);
    let n = a.n();
    let precond = BlockJacobi::build(&a, 8);
    assert!(!precond.is_identity());
    let cfg = GmresConfig::default().with_m(20).with_max_iters(3_000);
    let cols: Vec<Vec<f64>> = (0..3).map(|l| rhs(n, 10 + l)).collect();
    let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
    let order = ReductionOrder::GPU_LIKE;

    for (name, backend) in backends() {
        let mut singles = Vec::new();
        for b in &cols {
            let mut ctx = ctx_on(backend.clone(), order);
            let mut x = vec![0.0f64; n];
            let res = Gmres::new(&a, &precond, cfg).solve(&mut ctx, b, &mut x);
            assert!(res.status.is_converged(), "{name}: preconditioned single");
            singles.push((res, x, ctx));
        }
        let mut ctx_b = ctx_on(backend.clone(), order);
        let bb = MultiVec::from_columns(&col_refs);
        let mut xb = MultiVec::<f64>::zeros(n, 3);
        let res_b = BlockGmres::new(&a, &precond, cfg).solve(&mut ctx_b, &bb, &mut xb);
        for (l, (res_s, x_s, _)) in singles.iter().enumerate() {
            let what = format!("{name}: precond col {l}");
            assert_results_identical(res_s, &res_b[l], &what);
            for (xs, xbv) in x_s.iter().zip(xb.col(l)) {
                assert_eq!(xs.to_bits(), xbv.to_bits(), "{what}");
            }
        }
        // Width-1 preconditioned solve also reproduces the timing report.
        let mut ctx_s1 = ctx_on(backend.clone(), order);
        let mut x1 = vec![0.0f64; n];
        Gmres::new(&a, &precond, cfg).solve(&mut ctx_s1, &cols[0], &mut x1);
        let mut ctx_b1 = ctx_on(backend.clone(), order);
        let b1 = MultiVec::from_columns(&[&cols[0]]);
        let mut xb1 = MultiVec::<f64>::zeros(n, 1);
        BlockGmres::new(&a, &precond, cfg).solve(&mut ctx_b1, &b1, &mut xb1);
        assert_reports_identical(&ctx_s1, &ctx_b1, &format!("{name}: precond k=1"));
    }
}

/// Degenerate columns (zero RHS, trivially convergent RHS) deflate
/// immediately without disturbing the remaining columns.
#[test]
fn degenerate_columns_deflate_cleanly() {
    let a = laplace2d_matrix(16);
    let n = a.n();
    let zero = vec![0.0f64; n];
    let hard = rhs(n, 5);
    let cfg = GmresConfig::default().with_m(12).with_max_iters(2_000);
    let cols: Vec<&[f64]> = vec![&zero, &hard];
    let mut ctx = ctx_on(Arc::new(ReferenceBackend), ReductionOrder::Sequential);
    let bb = MultiVec::from_columns(&cols);
    let mut xb = MultiVec::<f64>::zeros(n, 2);
    let res = BlockGmres::new(&a, &Identity, cfg).solve(&mut ctx, &bb, &mut xb);
    assert!(res[0].status.is_converged());
    assert_eq!(res[0].iterations, 0);
    assert!(xb.col(0).iter().all(|&v| v == 0.0));
    assert!(res[1].status.is_converged());
    assert!(res[1].iterations > 0);

    // And a single-column zero block terminates immediately too.
    let mut ctx2 = ctx_on(Arc::new(ReferenceBackend), ReductionOrder::Sequential);
    let zb = MultiVec::from_columns(&[&zero[..]]);
    let mut xz = MultiVec::<f64>::zeros(n, 1);
    let rz = BlockGmres::new(&a, &Identity, cfg).solve(&mut ctx2, &zb, &mut xz);
    assert_eq!(rz[0].iterations, 0);
    assert!(rz[0].status.is_converged());
}
