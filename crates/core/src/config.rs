//! Solver configuration.

use mpgmres_scalar::Precision;
use serde::Serialize;

/// Orthogonalization scheme for the Arnoldi basis.
///
/// The paper uses two-pass classical Gram-Schmidt (CGS2) exclusively: one
/// CGS pass is numerically inadequate in low precision, and modified
/// Gram-Schmidt — while stable — issues `2j` skinny kernels per iteration
/// instead of CGS's four wide ones, which is hostile to GPUs (each launch
/// pays overhead; see the ablation bench). The alternatives are provided
/// for the DESIGN.md §8 ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum OrthoMethod {
    /// Two-pass classical Gram-Schmidt (the paper's choice).
    Cgs2,
    /// Single-pass classical Gram-Schmidt: cheapest, loses orthogonality
    /// in low precision.
    Cgs1,
    /// Modified Gram-Schmidt: stable but serializes into 2j kernels per
    /// iteration.
    Mgs,
}

/// Configuration for one GMRES(m) solver (Algorithm 1 of the paper).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct GmresConfig {
    /// Restart length / maximum Krylov subspace size `m`. The paper uses
    /// 50 unless stated otherwise (§V preamble).
    pub m: usize,
    /// Relative residual tolerance `||r|| / ||r0||` (paper: 1e-10).
    pub rtol: f64,
    /// Hard iteration cap across all restarts.
    pub max_iters: usize,
    /// Orthogonalization scheme (paper: CGS2).
    pub ortho: OrthoMethod,
    /// Monitor the implicit (Givens) residual every iteration and exit
    /// the cycle early when it clears the tolerance. Standard GMRES
    /// behaviour; GMRES-IR's inner solver sets this `false` because the
    /// single-precision implicit residual says nothing about the outer
    /// fp64 convergence (§III-B) — the inner cycle always runs its full
    /// `m` iterations, which is why the paper's IR iteration counts are
    /// multiples of `m`.
    pub monitor_implicit: bool,
    /// Declare "loss of accuracy" (Belos terminology, §V-F) when the
    /// implicit residual claims convergence but the explicit residual is
    /// more than `loa_factor * rtol`.
    pub loa_factor: f64,
    /// Record the per-iteration residual history (costs memory only).
    pub record_history: bool,
    /// Software-pipeline depth of the `BlockGmres` driver. `0` (the
    /// default) is the lockstep baseline: every lane's host-side
    /// Givens/least-squares step serializes against the device stream
    /// each iteration. `1` defers each lane's host step one iteration:
    /// it is recorded as a host node whose lagged read spans prove it
    /// independent of the next iteration's device kernels, so the
    /// simulated timeline hides the host latency behind device work
    /// (the paper's launch-latency hiding). Results are bit-identical
    /// to depth 0 by construction — only the timeline changes. Ignored
    /// by the single-RHS [`crate::Gmres`] driver.
    pub pipeline_depth: usize,
    /// Krylov-basis storage path (see [`BasisPolicy`]). `Native` (the
    /// default) reproduces the pre-storage-path drivers bit for bit;
    /// `Compressed` stores basis columns narrow and promotes on read.
    pub basis: BasisPolicy,
}

impl Default for GmresConfig {
    fn default() -> Self {
        GmresConfig {
            m: 50,
            rtol: 1e-10,
            max_iters: 200_000,
            ortho: OrthoMethod::Cgs2,
            monitor_implicit: true,
            loa_factor: 10.0,
            record_history: true,
            pipeline_depth: 0,
            basis: BasisPolicy::Native,
        }
    }
}

impl GmresConfig {
    /// Builder-style restart length.
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = m;
        self
    }

    /// Builder-style tolerance.
    pub fn with_rtol(mut self, rtol: f64) -> Self {
        self.rtol = rtol;
        self
    }

    /// Builder-style iteration cap.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Builder-style orthogonalization method.
    pub fn with_ortho(mut self, ortho: OrthoMethod) -> Self {
        self.ortho = ortho;
        self
    }

    /// Builder-style `BlockGmres` software-pipeline depth (0 or 1).
    /// Out-of-range depths are reported by [`GmresConfig::validate`] at
    /// the request surface (and still trip a `debug_assert!` here).
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        debug_assert!(depth <= 1, "pipeline depth must be 0 or 1");
        self.pipeline_depth = depth;
        self
    }

    /// Builder-style Krylov-basis storage path.
    pub fn with_basis(mut self, basis: BasisPolicy) -> Self {
        self.basis = basis;
        self
    }

    /// Builder-style loss-of-accuracy factor. A compressed basis holds
    /// the implicit/explicit residual gap at storage-precision level by
    /// design; raising the factor lets the restart loop keep refining
    /// from the true residual (IR-style) instead of aborting, while
    /// `Converged` still requires the explicit residual to clear
    /// `rtol`.
    pub fn with_loa_factor(mut self, loa_factor: f64) -> Self {
        self.loa_factor = loa_factor;
        self
    }

    /// Check the configuration at the request surface; everything the
    /// drivers used to `assert!` at construction now reports a typed
    /// [`SolveError`](crate::SolveError).
    pub fn validate(&self) -> Result<(), crate::service::SolveError> {
        use crate::service::SolveError;
        if self.m < 1 {
            return Err(SolveError::InvalidConfig(
                "restart length must be at least 1".into(),
            ));
        }
        if self.pipeline_depth > 1 {
            return Err(SolveError::InvalidConfig(format!(
                "pipeline depth must be 0 or 1, got {}",
                self.pipeline_depth
            )));
        }
        if !(self.rtol >= 0.0) {
            return Err(SolveError::InvalidConfig(format!(
                "relative tolerance must be non-negative and not NaN, got {}",
                self.rtol
            )));
        }
        if !(self.loa_factor >= 1.0) {
            return Err(SolveError::InvalidConfig(format!(
                "loss-of-accuracy factor must be at least 1, got {}",
                self.loa_factor
            )));
        }
        if let BasisPolicy::Compressed(p) = self.basis {
            if p == Precision::Fp64 {
                return Err(SolveError::InvalidConfig(
                    "compressed basis storage must be narrower than fp64; \
                     use BasisPolicy::Native for full-width storage"
                        .into(),
                ));
            }
            if self.ortho == OrthoMethod::Mgs {
                return Err(SolveError::InvalidConfig(
                    "compressed basis storage requires CGS1/CGS2: MGS reads \
                     basis columns one at a time through S-typed views"
                        .into(),
                ));
            }
            if self.pipeline_depth > 0 {
                return Err(SolveError::InvalidConfig(
                    "compressed basis storage requires pipeline depth 0: the \
                     pipelined driver records in-place basis writes"
                        .into(),
                ));
            }
        }
        Ok(())
    }

    /// Configuration for the GMRES-IR inner solver: one full-`m` cycle,
    /// no implicit monitoring.
    pub fn inner_cycle(m: usize) -> Self {
        GmresConfig {
            m,
            rtol: 0.0, // never triggers
            max_iters: m,
            ortho: OrthoMethod::Cgs2,
            monitor_implicit: false,
            loa_factor: f64::INFINITY,
            record_history: false,
            pipeline_depth: 0,
            basis: BasisPolicy::Native,
        }
    }
}

/// Krylov-basis storage path of a GMRES / block-GMRES solve.
///
/// Orthogonal to the working precision and to [`StorePath`] (which governs
/// the *matrix* operand): the basis is by far the largest solver-owned
/// array (`(m+1) x n`), and every CGS pass streams all of it twice. `Native`
/// keeps the classic full-width `MultiVector` layout — bit-identical to the
/// pre-storage-path drivers. `Compressed(p)` stores each basis column
/// demoted to `p` (fp32 or fp16) and promotes on read, so the GEMV-T /
/// GEMV-N kernels stream `p.bytes()` per basis element while still
/// accumulating in the working precision. Compressed storage requires
/// CGS1/CGS2 (MGS reads columns through full-width views) and pipeline
/// depth 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BasisPolicy {
    /// Full-width storage in the working precision (the legacy path).
    Native,
    /// Columns stored demoted to the given precision, promoted on read.
    Compressed(Precision),
}

impl BasisPolicy {
    /// Short name for experiment output (`native`, `fp32`, `fp16`).
    pub fn label(self) -> &'static str {
        match self {
            BasisPolicy::Native => "native",
            BasisPolicy::Compressed(p) => p.name(),
        }
    }

    /// Allocate a basis store of this policy's storage path. A
    /// `Compressed` precision at or above the working precision
    /// degenerates to `Native` (demote-only, like
    /// [`mpgmres_la::BasisStore::compressed`]).
    pub fn store<S: mpgmres_scalar::Scalar>(
        self,
        n: usize,
        max_cols: usize,
    ) -> mpgmres_la::BasisStore<S> {
        match self {
            BasisPolicy::Native => mpgmres_la::BasisStore::native(n, max_cols),
            BasisPolicy::Compressed(p) => mpgmres_la::BasisStore::compressed(n, max_cols, p),
        }
    }

    /// Storage code matching [`mpgmres_la::BasisStore::code`]: `Native` is
    /// 0 so native solves keep their pre-refactor replay-region keys;
    /// fp16 is 1, fp32 is 2. Drivers salt region tags with
    /// `code() << 5` so each storage path replays its own stream.
    pub fn code(self) -> u8 {
        match self {
            BasisPolicy::Native => 0,
            BasisPolicy::Compressed(Precision::Fp16) => 1,
            BasisPolicy::Compressed(Precision::Fp32) => 2,
            BasisPolicy::Compressed(Precision::Fp64) => 3,
        }
    }
}

impl Serialize for BasisPolicy {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label().to_string())
    }
}

/// Matrix storage path of the GMRES-IR *inner* operand.
///
/// The inner solver's working precision and the precision its matrix
/// values are *stored* in are independent axes. `Native` keeps the
/// classic plain-CSR copy in the working precision (bit-identical to
/// the pre-storage-path solver); the other variants stream fewer value
/// bytes per SpMV/SpMM while still accumulating in the working
/// precision. Storage paths other than `Native` require the identity
/// preconditioner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StorePath {
    /// Plain CSR in the inner working precision (the legacy path).
    Native,
    /// Shadow value array cast down to the given precision; structure
    /// (row pointers / column indices) is shared with the plain copy.
    Shadow(Precision),
    /// Magnitude-split two-bucket storage: entries with `|v|` at or
    /// above the threshold stay in the working precision, the rest drop
    /// to fp32.
    Split(f64),
}

impl StorePath {
    /// Short name for experiment output (`native`, `fp32`, `split@1e-3`).
    pub fn label(self) -> String {
        match self {
            StorePath::Native => "native".to_string(),
            StorePath::Shadow(p) => p.name().to_string(),
            StorePath::Split(t) => format!("split@{t:e}"),
        }
    }
}

impl Serialize for StorePath {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label())
    }
}

/// Admission-scheduling policy of the serving layer: how the
/// [`crate::service::SolverService`] orders each group's pending queue
/// and picks which request fills a deflation-vacated lane at a cycle
/// barrier. Scheduling decisions stay *outside* the arithmetic — a
/// request's completed outcome is bit-identical under every policy;
/// only its wait (and, under load, whether it degrades or expires)
/// changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Strict arrival order (the pre-QoS behavior, and the default).
    Fifo,
    /// Highest [`Qos::priority`] first; ties break by arrival order.
    ///
    /// [`Qos::priority`]: crate::service::Qos::priority
    Priority,
    /// Earliest absolute deadline first (no-deadline requests sort
    /// last); ties break by arrival order. Meets every feasible
    /// deadline at subcritical load.
    EarliestDeadlineFirst,
    /// Arrival order within a tenant, but lane occupancy is balanced
    /// across tenants: while `T` tenants have work outstanding, each
    /// tenant's groups may occupy at most `ceil(lanes / T)` lanes, so
    /// one tenant's burst cannot starve another's trickle.
    TenantFairShare,
}

impl SchedulerPolicy {
    /// Short name for experiment output (`fifo`, `priority`, `edf`,
    /// `fair-share`).
    pub fn label(self) -> &'static str {
        match self {
            SchedulerPolicy::Fifo => "fifo",
            SchedulerPolicy::Priority => "priority",
            SchedulerPolicy::EarliestDeadlineFirst => "edf",
            SchedulerPolicy::TenantFairShare => "fair-share",
        }
    }
}

impl Serialize for SchedulerPolicy {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label().to_string())
    }
}

/// Configuration for GMRES-IR (Algorithm 2).
#[derive(Clone, Copy, Debug)]
pub struct IrConfig {
    /// Inner restart length `m` (inner fp32 GMRES runs exactly `m`
    /// iterations per refinement cycle).
    pub m: usize,
    /// Outer relative residual tolerance, on the fp64 residual.
    pub rtol: f64,
    /// Cap on total inner iterations.
    pub max_iters: usize,
    /// Optional early-exit threshold for the inner solver's own implicit
    /// residual, relative to the inner cycle's starting residual. `None`
    /// reproduces the paper (always full m). `Some(tau)` is the ablation
    /// knob discussed in DESIGN.md §8.
    pub inner_early_exit: Option<f64>,
    /// Record residual history at refinement boundaries.
    pub record_history: bool,
    /// Storage path of the inner low-precision matrix operand.
    /// [`StorePath::Native`] (the default) reproduces the classic
    /// solver bit for bit.
    pub store: StorePath,
}

impl Serialize for IrConfig {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("m".into(), self.m.to_value()),
            ("rtol".into(), self.rtol.to_value()),
            ("max_iters".into(), self.max_iters.to_value()),
            ("inner_early_exit".into(), self.inner_early_exit.to_value()),
            ("record_history".into(), self.record_history.to_value()),
            ("store".into(), self.store.to_value()),
        ])
    }
}

impl Default for IrConfig {
    fn default() -> Self {
        IrConfig {
            m: 50,
            rtol: 1e-10,
            max_iters: 200_000,
            inner_early_exit: None,
            record_history: true,
            store: StorePath::Native,
        }
    }
}

impl IrConfig {
    /// Builder-style restart length.
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = m;
        self
    }

    /// Builder-style tolerance.
    pub fn with_rtol(mut self, rtol: f64) -> Self {
        self.rtol = rtol;
        self
    }

    /// Builder-style iteration cap.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Builder-style inner-operand storage path.
    pub fn with_store(mut self, store: StorePath) -> Self {
        self.store = store;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_protocol() {
        let c = GmresConfig::default();
        assert_eq!(c.m, 50);
        assert_eq!(c.rtol, 1e-10);
        assert!(c.monitor_implicit);
        let ir = IrConfig::default();
        assert_eq!(ir.m, 50);
        assert!(
            ir.inner_early_exit.is_none(),
            "paper runs inner cycles to full m"
        );
    }

    #[test]
    fn inner_cycle_never_exits_early() {
        let c = GmresConfig::inner_cycle(30);
        assert_eq!(c.m, 30);
        assert_eq!(c.max_iters, 30);
        assert!(!c.monitor_implicit);
        assert_eq!(c.rtol, 0.0);
    }

    #[test]
    fn store_path_labels_and_serialization() {
        assert_eq!(StorePath::Native.label(), "native");
        assert_eq!(StorePath::Shadow(Precision::Fp32).label(), "fp32");
        assert!(StorePath::Split(1e-3).label().starts_with("split@"));
        let ir = IrConfig::default().with_store(StorePath::Shadow(Precision::Fp16));
        let v = ir.to_value();
        match v {
            serde::Value::Object(fields) => {
                let store = fields
                    .iter()
                    .find(|(k, _)| k == "store")
                    .map(|(_, v)| v.clone());
                assert_eq!(store, Some(serde::Value::Str("fp16".into())));
            }
            other => panic!("IrConfig must serialize to an object, got {other:?}"),
        }
    }

    #[test]
    fn builders_compose() {
        let c = GmresConfig::default()
            .with_m(100)
            .with_rtol(1e-8)
            .with_max_iters(500);
        assert_eq!((c.m, c.rtol, c.max_iters), (100, 1e-8, 500));
    }
}
