//! Multiprecision GMRES solvers — the core of the reproduction of
//! *"Experimental Evaluation of Multiprecision Strategies for GMRES on
//! GPUs"* (Loe, Glusa, Yamazaki, Boman, Rajamanickam, IPDPS 2021).
//!
//! Three solver families (paper §III):
//! - [`Gmres`] — restarted GMRES(m) with CGS2, in any one working
//!   precision (`f64`, `f32`, or software `f16`).
//! - [`GmresIr`] — GMRES with iterative refinement: inner low-precision
//!   GMRES(m), outer high-precision residual correction at each restart.
//! - [`GmresFd`] — the float-then-double switching scheme the paper
//!   compares against (and finds inferior to) GMRES-IR.
//!
//! Plus the batched multi-RHS extension: [`BlockGmres`] solves
//! `A X = B` for an `n x k` block ([`MultiVec`]) of right-hand sides by
//! running `k` independent GMRES(m) state machines in lockstep (SpMM
//! instead of SpMV, blocked CGS2, per-column deflation); each column is
//! bit-identical to an independent [`Gmres`] solve.
//!
//! Preconditioners (paper §III-D): [`precond::poly::PolyPreconditioner`]
//! (GMRES polynomial with harmonic Ritz roots and modified Leja
//! ordering), [`precond::block_jacobi::BlockJacobi`], and the
//! mixed-precision wrapper [`precond::mixed::CastPreconditioner`].
//!
//! Execution goes through [`GpuContext`]: numerics run natively in IEEE
//! arithmetic on a pluggable kernel [`Backend`] (sequential reference or
//! std-thread parallel, selected via [`BackendKind`]); time is charged to
//! a calibrated V100 performance model (`mpgmres-gpusim`), giving the
//! paper's per-kernel timing breakdowns identically on every backend.
//!
//! # Example
//!
//! ```
//! use mpgmres::{GmresIr, GpuContext, GpuMatrix, IrConfig, precond::Identity};
//! use mpgmres_gpusim::DeviceModel;
//!
//! // 1D Laplacian, solved to fp64 accuracy with an fp32 inner solver.
//! let n = 64;
//! let mut coo = mpgmres_la::coo::Coo::new(n, n);
//! for i in 0..n {
//!     coo.push(i, i, 2.0f64);
//!     if i > 0 { coo.push(i, i - 1, -1.0); }
//!     if i + 1 < n { coo.push(i, i + 1, -1.0); }
//! }
//! let a = GpuMatrix::new(coo.into_csr());
//! let b = vec![1.0f64; n];
//! let mut x = vec![0.0f64; n];
//!
//! let mut ctx = GpuContext::new(DeviceModel::v100_belos());
//! let ir = GmresIr::<f32, f64>::new(&a, &Identity, IrConfig::default().with_m(20));
//! let result = ir.solve(&mut ctx, &b, &mut x);
//!
//! assert!(result.status.is_converged());
//! assert!(result.final_relative_residual <= 1e-10);
//! println!("simulated V100 solve time: {:.3} ms", ctx.elapsed() * 1e3);
//! ```

pub mod block_gmres;
pub mod config;
pub mod context;
pub mod fd;
pub mod gmres;
pub mod ir;
pub mod ir3;
pub mod precond;
pub mod prelude;
pub mod service;
pub mod status;
pub mod stream;

pub use block_gmres::BlockGmres;
pub use config::{BasisPolicy, GmresConfig, IrConfig, OrthoMethod, SchedulerPolicy, StorePath};
pub use context::{GpuContext, GpuMatrix, GpuStore};
pub use fd::{FdConfig, FdResult, GmresFd};
pub use gmres::Gmres;
pub use ir::GmresIr;
pub use ir3::{GmresIr3, Ir3Config};
pub use mpgmres_backend::{
    Backend, BackendKind, BackendScalar, ParallelBackend, PartitionStrategy, ReferenceBackend,
    ScalarBackend,
};
pub use mpgmres_la::multivec::MultiVec;
pub use mpgmres_la::store::MatrixStore;
pub use mpgmres_scalar::{Precision, PrecisionTag};
pub use service::{
    Degradation, Disposition, Operator, Qos, RequestId, ServiceConfig, ServiceStats, SolveError,
    SolveOutcome, SolveRequest, Solver, SolverService,
};
pub use status::{HistoryKind, HistoryPoint, SolveResult, SolveStatus};
pub use stream::{RegionKey, Stream, StreamStats};
