//! One-stop import surface for applications, examples, and binaries:
//! `use mpgmres::prelude::*;` brings in every public type a typical
//! program needs — the four drivers and the serving front end, the
//! request/outcome/error surface, configurations, operand wrappers,
//! preconditioner entry points, and the simulated-device handles —
//! without reaching into crate internals.
//!
//! ```
//! use mpgmres::prelude::*;
//!
//! let mut coo = mpgmres_la::coo::Coo::new(8, 8);
//! for i in 0..8 {
//!     coo.push(i, i, 2.0f64);
//! }
//! let a = GpuMatrix::new(coo.into_csr());
//! let b = vec![1.0f64; 8];
//! let mut ctx = GpuContext::new(DeviceModel::v100_belos());
//! let out = Gmres::serve(&mut ctx, &SolveRequest::new(Operator::Matrix(&a), &b)).unwrap();
//! assert!(out.result.unwrap().status.is_converged());
//! ```

pub use crate::config::{
    BasisPolicy, GmresConfig, IrConfig, OrthoMethod, SchedulerPolicy, StorePath,
};
pub use crate::context::{GpuContext, GpuMatrix, GpuStore};
pub use crate::fd::{FdConfig, FdResult, GmresFd};
pub use crate::precond::{Identity, Preconditioner};
pub use crate::service::{
    Degradation, Disposition, Operator, Qos, RequestId, ServiceConfig, ServiceStats, SolveError,
    SolveOutcome, SolveRequest, Solver, SolverService,
};
pub use crate::status::{HistoryKind, HistoryPoint, SolveResult, SolveStatus};
pub use crate::{BlockGmres, Gmres, GmresIr, GmresIr3, Ir3Config};
pub use mpgmres_backend::{BackendKind, BackendScalar};
pub use mpgmres_gpusim::DeviceModel;
pub use mpgmres_la::multivec::MultiVec;
pub use mpgmres_scalar::{Half, Precision};
