//! The instrumented execution context: pluggable kernels + simulated time.
//!
//! [`GpuContext`] is the workspace's Belos/Kokkos-Kernels layer, reduced
//! to an instrumentation shim over the backend abstraction: every linear
//! algebra operation a solver performs goes through it, the *cost* is
//! charged to a [`mpgmres_gpusim::Profiler`] using the V100 device
//! model, and the *computation* is delegated to an
//! [`mpgmres_backend::Backend`] trait object (sequential reference or
//! std-thread parallel; future GPU/batched backends slot in the same
//! way). Charging depends only on operand shapes and the device model,
//! so the simulated V100 timing of a solve is identical for every
//! backend; and because the backends are bit-compatible (see
//! `mpgmres-backend`'s determinism contract), so is the convergence
//! behaviour.

use std::collections::HashMap;
use std::sync::Arc;

use mpgmres_backend::stream::{BoundOp, OpGraph};
use mpgmres_backend::{contracts, Backend, BackendKind, BackendScalar};
use mpgmres_gpusim::{analytic, cost, DeviceModel, KernelClass, Profiler, TimingReport};
use mpgmres_la::basis::BasisStore;
use mpgmres_la::csr::Csr;
use mpgmres_la::multivec::MultiVec;
use mpgmres_la::multivector::MultiVector;
use mpgmres_la::raw::BufferArena;
use mpgmres_la::shard::{ShardPlan, ShardPlanCache};

/// Which matrix-op shape a sharded compute piece prices as (see
/// [`GpuContext::sharded_piece_spec`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ShardedMatOp {
    Spmv,
    Residual,
    Spmm,
}
use mpgmres_la::stats::MatrixStats;
use mpgmres_la::store::MatrixStore;
use mpgmres_la::vec_ops::ReductionOrder;
use mpgmres_scalar::{Precision, PrecisionTag, Scalar};

use crate::stream::{RegionKey, StreamStats};

/// A sparse matrix prepared for the simulated device: the CSR data plus
/// the structural statistics the cost model needs (bandwidth drives the
/// §V-D x-reuse rule).
#[derive(Clone, Debug)]
pub struct GpuMatrix<S> {
    csr: Csr<S>,
    stats: MatrixStats,
}

impl<S: Scalar> GpuMatrix<S> {
    /// Wrap a CSR matrix, computing its structural statistics once.
    pub fn new(csr: Csr<S>) -> Self {
        let stats = MatrixStats::of(&csr);
        GpuMatrix { csr, stats }
    }

    /// Dimension (square systems).
    pub fn n(&self) -> usize {
        self.csr.nrows()
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.csr.nnz()
    }

    /// Structural bandwidth in rows.
    pub fn bandwidth(&self) -> usize {
        self.stats.bandwidth
    }

    /// The underlying CSR matrix.
    pub fn csr(&self) -> &Csr<S> {
        &self.csr
    }

    /// Structural statistics.
    pub fn stats(&self) -> &MatrixStats {
        &self.stats
    }

    /// Precision-converted copy (the fp32 matrix GMRES-IR keeps alongside
    /// the fp64 one, §III-B). Not charged to the profiler: the paper's
    /// solve times exclude this one-time copy.
    pub fn convert<T: Scalar>(&self) -> GpuMatrix<T> {
        GpuMatrix {
            csr: self.csr.convert::<T>(),
            stats: self.stats,
        }
    }
}

/// A matrix in a (possibly low-precision) storage path, prepared for
/// the simulated device: the [`MatrixStore`] values plus the structural
/// statistics of the operator. The structure (and therefore the
/// bandwidth that drives the x-reuse rule) is shared with the matrix
/// the store was derived from, so the stats are copied, never
/// recomputed.
#[derive(Clone, Debug)]
pub struct GpuStore<S> {
    store: MatrixStore<S>,
    stats: MatrixStats,
}

impl<S: Scalar> GpuStore<S> {
    /// Working-precision store over `a`'s values (prices and computes
    /// bit-identically to `a` itself).
    pub fn plain_of(a: &GpuMatrix<S>) -> Self {
        GpuStore {
            store: MatrixStore::plain(a.csr().clone()),
            stats: a.stats,
        }
    }

    /// Downcast shadow store of `a` at value precision `p` (a plain
    /// clone when `p` is not narrower than `S`). Not charged to the
    /// profiler: like [`GpuMatrix::convert`], the one-time demotion is
    /// setup the paper's solve times exclude.
    pub fn shadow_of(a: &GpuMatrix<S>, p: Precision) -> Self {
        GpuStore {
            store: MatrixStore::shadow(a.csr(), p),
            stats: a.stats,
        }
    }

    /// Magnitude-split store of `a`: entries below `threshold` demote
    /// to fp32, the rest stay in `S`.
    pub fn split_of(a: &GpuMatrix<S>, threshold: f64) -> Self {
        GpuStore {
            store: MatrixStore::split_threshold(a.csr(), threshold),
            stats: a.stats,
        }
    }

    /// Dimension (square systems).
    pub fn n(&self) -> usize {
        self.store.nrows()
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.store.nnz()
    }

    /// Structural bandwidth in rows.
    pub fn bandwidth(&self) -> usize {
        self.stats.bandwidth
    }

    /// The storage-precision tag (keys recorded regions).
    pub fn tag(&self) -> PrecisionTag {
        self.store.tag()
    }

    /// Bytes of the value stream as stored.
    pub fn value_bytes(&self) -> usize {
        self.store.value_bytes()
    }

    /// The underlying store.
    pub fn store(&self) -> &MatrixStore<S> {
        &self.store
    }

    /// Structural statistics.
    pub fn stats(&self) -> &MatrixStats {
        &self.stats
    }
}

/// Reused per-region recording state: the buffer arena, the payload
/// bindings, and the per-op finish times of the overlap timeline. Lives
/// on the context (not the stream) so steady-state recording allocates
/// nothing once the capacities are warm.
#[derive(Debug, Default)]
pub(crate) struct StreamScratch {
    pub(crate) arena: BufferArena,
    pub(crate) bindings: Vec<BoundOp>,
    pub(crate) finish: Vec<f64>,
}

/// Instrumented kernel executor: charges the profiler, delegates
/// computation to the configured [`Backend`].
///
/// Kernels run in one of two modes:
///
/// - **eager** (each method below): validate, charge the profiler,
///   execute — semantically "record one op and sync immediately".
/// - **recorded**: [`GpuContext::stream`] (or
///   [`GpuContext::stream_for`], which additionally caches and replays
///   the derived graph for shape-stable regions) opens a
///   [`Stream`](crate::Stream) that registers buffers into an arena and
///   enqueues ops carrying read/write handle spans; the dependency DAG
///   executes in ready batches at sync. Recorded execution is
///   bit-identical to eager (the DAG only relaxes ordering between ops
///   that cannot observe each other) and lets the simulated timeline
///   overlap independent ops (the critical-path figure of
///   [`TimingReport`]).
///
/// [`GpuContext::set_streaming`] turns recording off globally (every
/// stream then degenerates to eager per-op execution) — the switch the
/// recorded-vs-eager parity suite flips.
#[derive(Debug)]
pub struct GpuContext {
    device: DeviceModel,
    profiler: Profiler,
    reduction: ReductionOrder,
    backend: Arc<dyn Backend>,
    streaming: bool,
    /// Cached payload-free op graphs, keyed by recording region shape.
    stream_cache: HashMap<RegionKey, Arc<OpGraph>>,
    scratch: StreamScratch,
    stream_stats: StreamStats,
    /// Shard plans of matrices run under a sharded backend (structure
    /// keyed, never evicted — recorded ops hold raw plan pointers for a
    /// region's lifetime).
    shard_plans: ShardPlanCache,
    /// Reusable halo-exchange scratch buffers (u64-aligned so one pool
    /// serves every precision). Boxes never move once handed out, and
    /// `halo_used` rewinds at every region start, so warm sharded
    /// regions allocate nothing.
    halo_pool: Vec<Box<[u64]>>,
    halo_used: usize,
}

impl GpuContext {
    /// New context on the given device, GPU-like reduction order, and
    /// the default (sequential reference) backend.
    pub fn new(device: DeviceModel) -> Self {
        Self::with_backend(
            device,
            ReductionOrder::GPU_LIKE,
            BackendKind::default().create(),
        )
    }

    /// New context with an explicit reduction order (tests use
    /// [`ReductionOrder::Sequential`] for bit-determinism; the paper notes
    /// GPU reductions make convergence slightly nondeterministic).
    pub fn with_reduction(device: DeviceModel, reduction: ReductionOrder) -> Self {
        Self::with_backend(device, reduction, BackendKind::default().create())
    }

    /// New context with an explicit kernel backend.
    pub fn with_backend(
        device: DeviceModel,
        reduction: ReductionOrder,
        backend: Arc<dyn Backend>,
    ) -> Self {
        GpuContext {
            device,
            profiler: Profiler::new(),
            reduction,
            backend,
            streaming: true,
            stream_cache: HashMap::new(),
            scratch: StreamScratch::default(),
            stream_stats: StreamStats::default(),
            shard_plans: ShardPlanCache::new(),
            halo_pool: Vec::new(),
            halo_used: 0,
        }
    }

    /// New context selecting the backend by kind.
    pub fn with_backend_kind(
        device: DeviceModel,
        reduction: ReductionOrder,
        kind: BackendKind,
    ) -> Self {
        Self::with_backend(device, reduction, kind.create())
    }

    /// The device model in use.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// The kernel backend executing the computation.
    pub fn backend(&self) -> &dyn Backend {
        &*self.backend
    }

    /// Accumulated profile.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Rolled-up report in the paper's categories.
    pub fn report(&self) -> TimingReport {
        self.profiler.report()
    }

    /// Total simulated seconds so far.
    pub fn elapsed(&self) -> f64 {
        self.profiler.total_seconds()
    }

    /// Overlap-aware simulated makespan so far (`<=` [`GpuContext::elapsed`];
    /// the clock the serving latency percentiles are quoted on).
    pub fn critical_elapsed(&self) -> f64 {
        self.profiler.critical_seconds()
    }

    /// Mark an admission-epoch boundary on the profiler timeline (see
    /// [`mpgmres_gpusim::EpochMark`]); the serving engine calls this at
    /// every admission barrier so per-epoch cost attribution stays
    /// exact across epochs that share cycles.
    pub fn mark_epoch(&mut self) {
        self.profiler.mark_epoch();
    }

    /// Reset the profile (e.g. to exclude preconditioner setup, as the
    /// paper's solve times do).
    pub fn reset_profile(&mut self) {
        self.profiler.reset();
    }

    /// Whether streams record (default) or degenerate to eager per-op
    /// execution.
    pub fn streaming(&self) -> bool {
        self.streaming
    }

    /// Enable/disable stream recording. With recording off, every
    /// [`GpuContext::stream`] region executes its ops eagerly in record
    /// order — the reference behavior the parity suite compares against.
    pub fn set_streaming(&mut self, on: bool) {
        self.streaming = on;
    }

    /// Open an ad-hoc command recorder on this context (no graph
    /// caching; the DAG is derived for this region instance only). See
    /// [`Stream`](crate::Stream) for the recording model.
    pub fn stream(&mut self) -> crate::Stream<'_> {
        crate::Stream::begin(self, None)
    }

    /// Open a command recorder for a shape-stable region: the first
    /// recording under `key` derives and caches the payload-free op
    /// graph; later recordings replay it, verifying each op's shape and
    /// rebinding only the payload (no node allocation, no span scans).
    /// See [`Stream`](crate::Stream).
    pub fn stream_for(&mut self, key: RegionKey) -> crate::Stream<'_> {
        // Salt every keyed region with the backend's shard count: a
        // sharded backend expands SpMV/SpMM/residual into per-shard op
        // chains, so its graphs must never collide with single-backend
        // recordings of the same region shape.
        let key = key.with_shards(self.backend.shard_count());
        crate::Stream::begin(self, Some(key))
    }

    /// Graph-cache hit/miss/allocation counters (see [`StreamStats`]).
    pub fn stream_stats(&self) -> StreamStats {
        self.stream_stats
    }

    /// Number of cached region graphs.
    pub fn stream_cache_len(&self) -> usize {
        self.stream_cache.len()
    }

    /// Drop every cached region graph (counters are kept).
    pub fn clear_stream_cache(&mut self) {
        self.stream_cache.clear();
    }

    pub(crate) fn profiler_mut(&mut self) -> &mut Profiler {
        &mut self.profiler
    }

    pub(crate) fn reduction(&self) -> ReductionOrder {
        self.reduction
    }

    // ----- recorded-stream plumbing ----------------------------------

    pub(crate) fn scratch(&self) -> &StreamScratch {
        &self.scratch
    }

    pub(crate) fn scratch_mut(&mut self) -> &mut StreamScratch {
        &mut self.scratch
    }

    pub(crate) fn arena_mut(&mut self) -> &mut BufferArena {
        &mut self.scratch.arena
    }

    /// Reset the per-region recording state (keeps allocations).
    pub(crate) fn scratch_reset(&mut self) {
        self.scratch.arena.clear();
        self.scratch.bindings.clear();
        self.scratch.finish.clear();
        self.halo_used = 0;
    }

    pub(crate) fn cached_graph(&self, key: &RegionKey) -> Option<Arc<OpGraph>> {
        self.stream_cache.get(key).cloned()
    }

    pub(crate) fn store_graph(&mut self, key: RegionKey, graph: Arc<OpGraph>) {
        self.stream_cache.insert(key, graph);
    }

    pub(crate) fn bump_hits(&mut self) {
        self.stream_stats.hits += 1;
    }

    pub(crate) fn bump_misses(&mut self) {
        self.stream_stats.misses += 1;
    }

    pub(crate) fn bump_nodes_allocated(&mut self, n: u64) {
        self.stream_stats.nodes_allocated += n;
    }

    /// Submit a finalized recorded graph against the current scratch
    /// bindings and arena.
    pub(crate) fn submit_recorded(&self, graph: &OpGraph) {
        mpgmres_backend::stream::submit(
            graph,
            &self.scratch.bindings,
            &self.scratch.arena,
            &*self.backend,
        );
    }

    // ----- cost specs -------------------------------------------------
    //
    // One function per kernel shape computing (simulated seconds, modeled
    // bytes). Both the eager methods below and the recorded Stream path
    // go through these, so the two modes charge bit-identical costs by
    // construction.

    pub(crate) fn spmv_spec<S: Scalar>(&self, a: &GpuMatrix<S>) -> (f64, usize) {
        let t = cost::spmv_time(&self.device, a.n(), a.nnz(), a.bandwidth(), S::PRECISION);
        let bytes = mpgmres_gpusim::analytic::spmv_traffic_bytes(
            &self.device,
            a.n(),
            a.nnz(),
            a.bandwidth(),
            S::PRECISION,
        );
        (t, bytes)
    }

    pub(crate) fn residual_spec<S: Scalar>(&self, a: &GpuMatrix<S>) -> (f64, usize) {
        let t = cost::residual_time(&self.device, a.n(), a.nnz(), a.bandwidth(), S::PRECISION);
        let bytes = mpgmres_gpusim::analytic::spmv_traffic_bytes(
            &self.device,
            a.n(),
            a.nnz(),
            a.bandwidth(),
            S::PRECISION,
        ) + a.n() * S::BYTES;
        (t, bytes)
    }

    pub(crate) fn spmm_spec<S: Scalar>(&self, a: &GpuMatrix<S>, k: usize) -> (f64, usize) {
        let t = cost::spmm_time(&self.device, a.n(), a.nnz(), a.bandwidth(), k, S::PRECISION);
        let bytes = mpgmres_gpusim::analytic::spmv_traffic_bytes(
            &self.device,
            a.n(),
            a.nnz(),
            a.bandwidth(),
            S::PRECISION,
        ) + (k - 1) * 2 * a.n() * S::BYTES;
        (t, bytes)
    }

    pub(crate) fn store_spmv_spec<S: Scalar>(&self, a: &GpuStore<S>) -> (f64, usize) {
        let t = cost::store_spmv_time(
            &self.device,
            a.n(),
            a.nnz(),
            a.value_bytes(),
            a.bandwidth(),
            a.tag().dominant(),
            S::PRECISION,
        );
        let bytes = mpgmres_gpusim::analytic::store_spmv_traffic_bytes(
            &self.device,
            a.n(),
            a.nnz(),
            a.value_bytes(),
            a.bandwidth(),
            S::PRECISION,
        );
        (t, bytes)
    }

    pub(crate) fn store_residual_spec<S: Scalar>(&self, a: &GpuStore<S>) -> (f64, usize) {
        let t = cost::store_residual_time(
            &self.device,
            a.n(),
            a.nnz(),
            a.value_bytes(),
            a.bandwidth(),
            a.tag().dominant(),
            S::PRECISION,
        );
        let bytes = mpgmres_gpusim::analytic::store_spmv_traffic_bytes(
            &self.device,
            a.n(),
            a.nnz(),
            a.value_bytes(),
            a.bandwidth(),
            S::PRECISION,
        ) + a.n() * S::BYTES;
        (t, bytes)
    }

    pub(crate) fn store_spmm_spec<S: Scalar>(&self, a: &GpuStore<S>, k: usize) -> (f64, usize) {
        let t = cost::store_spmm_time(
            &self.device,
            a.n(),
            a.nnz(),
            a.value_bytes(),
            a.bandwidth(),
            k,
            a.tag().dominant(),
            S::PRECISION,
        );
        let bytes = mpgmres_gpusim::analytic::store_spmv_traffic_bytes(
            &self.device,
            a.n(),
            a.nnz(),
            a.value_bytes(),
            a.bandwidth(),
            S::PRECISION,
        ) + (k - 1) * 2 * a.n() * S::BYTES;
        (t, bytes)
    }

    // ----- sharded matrix-op plumbing --------------------------------
    //
    // Under a sharded backend every matrix op decomposes into per-shard
    // pieces: a halo exchange (remote x-entries the shard's boundary
    // rows read), an interior kernel over rows touching only owned
    // columns, and a boundary kernel gated on the exchange. Eager and
    // recorded modes both walk the SAME piece sequence through the SAME
    // spec functions, preserving the bitwise charge-parity invariant.

    /// The shard plan for `a` under the current backend, or `None` when
    /// the backend is unsharded (every op then takes the plain path).
    pub(crate) fn shard_plan_for<S: Scalar>(&self, a: &GpuMatrix<S>) -> Option<Arc<ShardPlan>> {
        let shards = self.backend.shard_count();
        if shards <= 1 {
            return None;
        }
        Some(self.shard_plans.get(a.csr(), shards))
    }

    /// Register a halo scratch buffer of `elems` elements of `S` in the
    /// recording arena, backed by the context's reusable pool (warm
    /// regions allocate nothing; `scratch_reset` rewinds the cursor).
    pub(crate) fn register_halo<S: Scalar>(&mut self, elems: usize) -> u32 {
        let words = (elems * core::mem::size_of::<S>()).div_ceil(8).max(1);
        if self.halo_used == self.halo_pool.len() {
            self.halo_pool.push(vec![0u64; words].into_boxed_slice());
        } else if self.halo_pool[self.halo_used].len() < words {
            self.halo_pool[self.halo_used] = vec![0u64; words].into_boxed_slice();
        }
        let ptr = self.halo_pool[self.halo_used].as_mut_ptr().cast::<S>();
        self.halo_used += 1;
        // SAFETY: the pool box outlives the region (boxes are only
        // replaced when too small, before registration), is u64-aligned
        // (covers every scalar), and holds >= `elems` elements of `S`.
        unsafe { self.scratch.arena.register_slice_mut(ptr, elems) }
    }

    /// Halo exchange piece: `(time, bytes)` for shipping `halo_elems`
    /// owned x-entries times `k` right-hand-side columns.
    pub(crate) fn halo_spec<S: Scalar>(&self, halo_elems: usize, k: usize) -> (f64, usize) {
        let bytes = mpgmres_gpusim::analytic::halo_bytes(halo_elems, k, S::BYTES);
        (cost::halo_time(&self.device, bytes), bytes)
    }

    /// Compute piece of a sharded matrix op: a row-range of `a` with
    /// `rows` rows and `nnz` nonzeros, priced with the same model as the
    /// whole-matrix specs (full-matrix bandwidth; the row block inherits
    /// the parent's banded/scattered classification per-piece).
    pub(crate) fn sharded_piece_spec<S: Scalar>(
        &self,
        a: &GpuMatrix<S>,
        rows: usize,
        nnz: usize,
        k: usize,
        op: ShardedMatOp,
    ) -> (f64, usize) {
        let bw = a.bandwidth();
        let base =
            mpgmres_gpusim::analytic::spmv_traffic_bytes(&self.device, rows, nnz, bw, S::PRECISION);
        match op {
            ShardedMatOp::Spmv => (
                cost::spmv_time(&self.device, rows, nnz, bw, S::PRECISION),
                base,
            ),
            ShardedMatOp::Residual => (
                cost::residual_time(&self.device, rows, nnz, bw, S::PRECISION),
                base + rows * S::BYTES,
            ),
            ShardedMatOp::Spmm => (
                cost::spmm_time(&self.device, rows, nnz, bw, k, S::PRECISION),
                base + (k - 1) * 2 * rows * S::BYTES,
            ),
        }
    }

    /// Eager-mode decomposed charging for a sharded matrix op: walks the
    /// identical piece sequence (halo, interior, boundary per shard,
    /// same skip rules) the recorded path emits as stream nodes, so
    /// eager and recorded totals stay bit-identical.
    pub(crate) fn charge_sharded<S: Scalar>(
        &mut self,
        class: KernelClass,
        a: &GpuMatrix<S>,
        plan: &ShardPlan,
        k: usize,
        op: ShardedMatOp,
    ) {
        let row_ptr = a.csr().row_ptr();
        for region in &plan.regions {
            if region.rows() == 0 {
                continue;
            }
            if region.halo_len() > 0 {
                let (t, bytes) = self.halo_spec::<S>(region.halo_len(), k);
                self.profiler.charge(KernelClass::Halo, t, bytes);
            }
            if region.ihi > region.ilo {
                let nnz = row_ptr[region.ihi] - row_ptr[region.ilo];
                let (t, bytes) =
                    self.sharded_piece_spec::<S>(a, region.ihi - region.ilo, nnz, k, op);
                self.profiler.charge(class, t, bytes);
            }
            let brows = (region.ilo - region.lo) + (region.hi - region.ihi);
            if brows > 0 {
                let bnnz = (row_ptr[region.ilo] - row_ptr[region.lo])
                    + (row_ptr[region.hi] - row_ptr[region.ihi]);
                let (t, bytes) = self.sharded_piece_spec::<S>(a, brows, bnnz, k, op);
                self.profiler.charge(class, t, bytes);
            }
        }
    }

    pub(crate) fn gemv_t_spec<S: Scalar>(&self, n: usize, ncols: usize) -> (f64, usize) {
        let t = cost::gemv_t_time(&self.device, n, ncols, S::PRECISION);
        (t, (ncols + 1) * n * S::BYTES)
    }

    pub(crate) fn gemv_n_spec<S: Scalar>(&self, n: usize, ncols: usize) -> (f64, usize) {
        let t = cost::gemv_n_time(&self.device, n, ncols, S::PRECISION);
        (t, (ncols + 2) * n * S::BYTES)
    }

    pub(crate) fn gemm_t_spec<S: Scalar>(&self, n: usize, ncols: usize, k: usize) -> (f64, usize) {
        let t = cost::gemm_t_time(&self.device, n, ncols, k, S::PRECISION);
        (t, k * (ncols + 1) * n * S::BYTES)
    }

    pub(crate) fn gemm_n_spec<S: Scalar>(&self, n: usize, ncols: usize, k: usize) -> (f64, usize) {
        let t = cost::gemm_n_time(&self.device, n, ncols, k, S::PRECISION);
        (t, k * (ncols + 2) * n * S::BYTES)
    }

    pub(crate) fn norm_spec<S: Scalar>(&self, n: usize) -> (f64, usize) {
        (cost::norm_time(&self.device, n, S::PRECISION), n * S::BYTES)
    }

    pub(crate) fn dot_spec<S: Scalar>(&self, n: usize) -> (f64, usize) {
        (
            cost::dot_time(&self.device, n, S::PRECISION),
            2 * n * S::BYTES,
        )
    }

    pub(crate) fn axpy_spec<S: Scalar>(&self, n: usize) -> (f64, usize) {
        (
            cost::axpy_time(&self.device, n, S::PRECISION),
            3 * n * S::BYTES,
        )
    }

    pub(crate) fn scal_spec<S: Scalar>(&self, n: usize) -> (f64, usize) {
        (
            cost::scal_time(&self.device, n, S::PRECISION),
            2 * n * S::BYTES,
        )
    }

    pub(crate) fn block_norm_spec<S: Scalar>(&self, n: usize, k: usize) -> (f64, usize) {
        (
            cost::block_norm_time(&self.device, n, k, S::PRECISION),
            k * n * S::BYTES,
        )
    }

    pub(crate) fn block_scal_spec<S: Scalar>(&self, n: usize, k: usize) -> (f64, usize) {
        (
            cost::block_scal_time(&self.device, n, k, S::PRECISION),
            2 * k * n * S::BYTES,
        )
    }

    // Basis-store specs: priced with the store's own element width `e`
    // (bytes per stored basis element). Every one reduces bit-for-bit
    // to its uniform counterpart at `e == S::BYTES`, so the native
    // `BasisStore` path charges exactly what the pre-refactor
    // `MultiVector` path did.

    pub(crate) fn basis_gemv_t_spec<S: Scalar>(
        &self,
        n: usize,
        ncols: usize,
        e: usize,
    ) -> (f64, usize) {
        (
            cost::basis_gemv_t_time(&self.device, n, ncols, e, S::PRECISION),
            analytic::basis_gemv_traffic_bytes(n, ncols, e, 1, S::PRECISION),
        )
    }

    pub(crate) fn basis_gemv_n_spec<S: Scalar>(
        &self,
        n: usize,
        ncols: usize,
        e: usize,
    ) -> (f64, usize) {
        (
            cost::basis_gemv_n_time(&self.device, n, ncols, e, S::PRECISION),
            analytic::basis_gemv_traffic_bytes(n, ncols, e, 2, S::PRECISION),
        )
    }

    pub(crate) fn basis_gemm_t_spec<S: Scalar>(
        &self,
        n: usize,
        ncols: usize,
        k: usize,
        e: usize,
    ) -> (f64, usize) {
        (
            cost::basis_gemm_t_time(&self.device, n, ncols, k, e, S::PRECISION),
            k * analytic::basis_gemv_traffic_bytes(n, ncols, e, 1, S::PRECISION),
        )
    }

    pub(crate) fn basis_gemm_n_spec<S: Scalar>(
        &self,
        n: usize,
        ncols: usize,
        k: usize,
        e: usize,
    ) -> (f64, usize) {
        (
            cost::basis_gemm_n_time(&self.device, n, ncols, k, e, S::PRECISION),
            k * analytic::basis_gemv_traffic_bytes(n, ncols, e, 2, S::PRECISION),
        )
    }

    pub(crate) fn basis_scal_copy_spec<S: Scalar>(
        &self,
        n: usize,
        k: usize,
        e: usize,
    ) -> (f64, usize) {
        (
            cost::basis_scal_copy_time(&self.device, n, k, e, S::PRECISION),
            k * n * (S::BYTES + e),
        )
    }

    // ----- instrumented kernels --------------------------------------

    /// `y = A x`, charged to the given class (solvers use
    /// [`KernelClass::SpMV`]; GMRES-IR's refinement residual uses
    /// [`KernelClass::ResidualHi`] so it lands in the paper's "Other").
    pub fn spmv_as<S: BackendScalar>(
        &mut self,
        class: KernelClass,
        a: &GpuMatrix<S>,
        x: &[S],
        y: &mut [S],
    ) {
        contracts::spmv(a.csr(), x, y);
        if let Some(plan) = self.shard_plan_for(a) {
            self.charge_sharded::<S>(class, a, &plan, 1, ShardedMatOp::Spmv);
        } else {
            let (t, bytes) = self.spmv_spec::<S>(a);
            self.profiler.charge(class, t, bytes);
        }
        S::view(&*self.backend).spmv(a.csr(), x, y);
    }

    /// `y = A x` charged as a solver SpMV.
    pub fn spmv<S: BackendScalar>(&mut self, a: &GpuMatrix<S>, x: &[S], y: &mut [S]) {
        self.spmv_as(KernelClass::SpMV, a, x, y);
    }

    /// Fused residual `r = b - A x`.
    pub fn residual_as<S: BackendScalar>(
        &mut self,
        class: KernelClass,
        a: &GpuMatrix<S>,
        b: &[S],
        x: &[S],
        r: &mut [S],
    ) {
        contracts::residual(a.csr(), b, x, r);
        if let Some(plan) = self.shard_plan_for(a) {
            self.charge_sharded::<S>(class, a, &plan, 1, ShardedMatOp::Residual);
        } else {
            let (t, bytes) = self.residual_spec::<S>(a);
            self.profiler.charge(class, t, bytes);
        }
        S::view(&*self.backend).residual(a.csr(), b, x, r);
    }

    // ----- storage-path (multiprecision) kernels ----------------------
    //
    // The matrix values live in a `MatrixStore` (fp32/fp16 shadow or
    // magnitude split) while the vectors stay in `S`; accumulation is in
    // `S` per the store's per-row kernels. Charged under the same
    // classes as the uniform kernels, priced with the store's own value
    // stream and the generalized x-reuse rule — a `Plain` store charges
    // and computes bit-identically to the `GpuMatrix` calls.

    /// Storage-path `y = A x`, charged to `class`.
    pub fn store_spmv_as<S: BackendScalar>(
        &mut self,
        class: KernelClass,
        a: &GpuStore<S>,
        x: &[S],
        y: &mut [S],
    ) {
        contracts::store_spmv(a.store(), x, y);
        let (t, bytes) = self.store_spmv_spec::<S>(a);
        self.profiler.charge(class, t, bytes);
        S::view(&*self.backend).store_spmv(a.store(), x, y);
    }

    /// Storage-path `y = A x` charged as a solver SpMV.
    pub fn store_spmv<S: BackendScalar>(&mut self, a: &GpuStore<S>, x: &[S], y: &mut [S]) {
        self.store_spmv_as(KernelClass::SpMV, a, x, y);
    }

    /// Storage-path fused residual `r = b - A x`, charged to `class`.
    pub fn store_residual_as<S: BackendScalar>(
        &mut self,
        class: KernelClass,
        a: &GpuStore<S>,
        b: &[S],
        x: &[S],
        r: &mut [S],
    ) {
        contracts::store_residual(a.store(), b, x, r);
        let (t, bytes) = self.store_residual_spec::<S>(a);
        self.profiler.charge(class, t, bytes);
        S::view(&*self.backend).store_residual(a.store(), b, x, r);
    }

    /// Storage-path batched SpMM `Y[:, ..k] = A X[:, ..k]`.
    pub fn store_spmm<S: BackendScalar>(
        &mut self,
        a: &GpuStore<S>,
        x: &MultiVec<S>,
        k: usize,
        y: &mut MultiVec<S>,
    ) {
        contracts::store_spmm(a.store(), x, k, y);
        let (t, bytes) = self.store_spmm_spec::<S>(a, k);
        self.profiler.charge(KernelClass::SpMV, t, bytes);
        S::view(&*self.backend).store_spmm(a.store(), x, k, y);
    }

    /// `h = V^T w` over the first `ncols` basis columns (GEMV Trans).
    pub fn gemv_t<S: BackendScalar>(
        &mut self,
        v: &MultiVector<S>,
        ncols: usize,
        w: &[S],
        h: &mut [S],
    ) {
        contracts::gemv(v, ncols, w, h);
        let (t, bytes) = self.gemv_t_spec::<S>(v.n(), ncols);
        self.profiler.charge(KernelClass::GemvT, t, bytes);
        S::view(&*self.backend).gemv_t(v, ncols, w, h, self.reduction);
    }

    /// `w -= V h` (GEMV No-Trans).
    pub fn gemv_n_sub<S: BackendScalar>(
        &mut self,
        v: &MultiVector<S>,
        ncols: usize,
        h: &[S],
        w: &mut [S],
    ) {
        contracts::gemv(v, ncols, w, h);
        let (t, bytes) = self.gemv_n_spec::<S>(v.n(), ncols);
        self.profiler.charge(KernelClass::GemvN, t, bytes);
        S::view(&*self.backend).gemv_n_sub(v, ncols, h, w);
    }

    /// `y += V h` (GEMV No-Trans; the solution update `x += V y`).
    pub fn gemv_n_add<S: BackendScalar>(
        &mut self,
        v: &MultiVector<S>,
        ncols: usize,
        h: &[S],
        y: &mut [S],
    ) {
        contracts::gemv(v, ncols, y, h);
        let (t, bytes) = self.gemv_n_spec::<S>(v.n(), ncols);
        self.profiler.charge(KernelClass::GemvN, t, bytes);
        S::view(&*self.backend).gemv_n_add(v, ncols, h, y);
    }

    /// Euclidean norm with device-to-host result transfer.
    pub fn norm2<S: BackendScalar>(&mut self, x: &[S]) -> S {
        self.norm2_as(KernelClass::Norm, x)
    }

    /// Euclidean norm charged to an explicit class (GMRES-IR charges its
    /// refinement-residual norms to [`KernelClass::ResidualHi`] so they
    /// land in the paper's "Other" bar, per the Fig. 4 caption).
    pub fn norm2_as<S: BackendScalar>(&mut self, class: KernelClass, x: &[S]) -> S {
        let (t, bytes) = self.norm_spec::<S>(x.len());
        self.profiler.charge(class, t, bytes);
        S::view(&*self.backend).norm2(x, self.reduction)
    }

    /// Inner product with device-to-host result transfer.
    pub fn dot<S: BackendScalar>(&mut self, x: &[S], y: &[S]) -> S {
        contracts::same_len("dot", x, y);
        let (t, bytes) = self.dot_spec::<S>(x.len());
        self.profiler.charge(KernelClass::Dot, t, bytes);
        S::view(&*self.backend).dot(x, y, self.reduction)
    }

    /// `y += alpha x`.
    pub fn axpy<S: BackendScalar>(&mut self, alpha: S, x: &[S], y: &mut [S]) {
        contracts::same_len("axpy", x, y);
        let (t, bytes) = self.axpy_spec::<S>(x.len());
        self.profiler.charge(KernelClass::Axpy, t, bytes);
        S::view(&*self.backend).axpy(alpha, x, y);
    }

    /// `x *= alpha`.
    pub fn scal<S: BackendScalar>(&mut self, alpha: S, x: &mut [S]) {
        let (t, bytes) = self.scal_spec::<S>(x.len());
        self.profiler.charge(KernelClass::Scal, t, bytes);
        S::view(&*self.backend).scal(alpha, x);
    }

    /// Device-resident vector copy (no profiler charge is attached to
    /// plain copies in the paper's accounting; provided for backends).
    pub fn copy<S: BackendScalar>(&mut self, src: &[S], dst: &mut [S]) {
        contracts::same_len("copy", src, dst);
        S::view(&*self.backend).copy(src, dst);
    }

    // ----- batched multi-RHS (block) kernels --------------------------
    //
    // The profiler is charged with SpMM/GEMM-shaped costs
    // (`mpgmres_gpusim::cost::{spmm_time, gemm_t_time, ...}`) under the
    // SAME kernel classes as the single-vector calls: at k = 1 every
    // block charge is bit-identical to its single-vector counterpart, so
    // a width-1 block solve reproduces a single-RHS solve's timing
    // report exactly, and the category rollup stays comparable across
    // block widths.

    /// Batched SpMM `Y[:, ..k] = A X[:, ..k]` — one matrix read serves
    /// all `k` right-hand sides.
    pub fn spmm<S: BackendScalar>(
        &mut self,
        a: &GpuMatrix<S>,
        x: &MultiVec<S>,
        k: usize,
        y: &mut MultiVec<S>,
    ) {
        contracts::spmm(a.csr(), x, k, y);
        if let Some(plan) = self.shard_plan_for(a) {
            self.charge_sharded::<S>(KernelClass::SpMV, a, &plan, k, ShardedMatOp::Spmm);
        } else {
            let (t, bytes) = self.spmm_spec::<S>(a, k);
            self.profiler.charge(KernelClass::SpMV, t, bytes);
        }
        S::view(&*self.backend).spmm(a.csr(), x, k, y);
    }

    /// Batched GEMV-Trans (GEMM shape): `h_c = V_c^T w_c` for each of
    /// the block's columns, one basis per column, coefficients packed
    /// with stride `ncols`.
    pub fn block_gemv_t<S: BackendScalar>(
        &mut self,
        vs: &[&MultiVector<S>],
        ncols: usize,
        w: &MultiVec<S>,
        h: &mut [S],
    ) {
        contracts::block_gemv(vs, ncols, w, h);
        let (t, bytes) = self.gemm_t_spec::<S>(w.n(), ncols, vs.len());
        self.profiler.charge(KernelClass::GemvT, t, bytes);
        S::view(&*self.backend).block_gemv_t(vs, ncols, w, h, self.reduction);
    }

    /// Batched GEMV-NoTrans (GEMM shape): `w_c -= V_c h_c`.
    pub fn block_gemv_n_sub<S: BackendScalar>(
        &mut self,
        vs: &[&MultiVector<S>],
        ncols: usize,
        h: &[S],
        w: &mut MultiVec<S>,
    ) {
        contracts::block_gemv(vs, ncols, w, h);
        let (t, bytes) = self.gemm_n_spec::<S>(w.n(), ncols, vs.len());
        self.profiler.charge(KernelClass::GemvN, t, bytes);
        S::view(&*self.backend).block_gemv_n_sub(vs, ncols, h, w);
    }

    /// Batched GEMV-NoTrans (GEMM shape): `y_c += V_c h_c`.
    pub fn block_gemv_n_add<S: BackendScalar>(
        &mut self,
        vs: &[&MultiVector<S>],
        ncols: usize,
        h: &[S],
        y: &mut MultiVec<S>,
    ) {
        contracts::block_gemv(vs, ncols, y, h);
        let (t, bytes) = self.gemm_n_spec::<S>(y.n(), ncols, vs.len());
        self.profiler.charge(KernelClass::GemvN, t, bytes);
        S::view(&*self.backend).block_gemv_n_add(vs, ncols, h, y);
    }

    /// Fused column norms with one device-to-host result transfer.
    pub fn block_norm2<S: BackendScalar>(&mut self, x: &MultiVec<S>, k: usize, out: &mut [S]) {
        contracts::block_scalars("block_norm2", x, k, out);
        let (t, bytes) = self.block_norm_spec::<S>(x.n(), k);
        self.profiler.charge(KernelClass::Norm, t, bytes);
        S::view(&*self.backend).block_norm2(x, k, out, self.reduction);
    }

    /// Fused column inner products with one result transfer.
    pub fn block_dot<S: BackendScalar>(
        &mut self,
        x: &MultiVec<S>,
        y: &MultiVec<S>,
        k: usize,
        out: &mut [S],
    ) {
        contracts::block_pair("block_dot", x, y, k);
        contracts::block_scalars("block_dot", x, k, out);
        let t = cost::block_dot_time(&self.device, x.n(), k, S::PRECISION);
        self.profiler
            .charge(KernelClass::Dot, t, 2 * k * x.n() * S::BYTES);
        S::view(&*self.backend).block_dot(x, y, k, out, self.reduction);
    }

    /// Fused column updates `y_c += alpha_c x_c`.
    pub fn block_axpy<S: BackendScalar>(
        &mut self,
        alpha: &[S],
        x: &MultiVec<S>,
        k: usize,
        y: &mut MultiVec<S>,
    ) {
        contracts::block_pair("block_axpy", x, y, k);
        contracts::block_scalars("block_axpy", x, k, alpha);
        let t = cost::block_axpy_time(&self.device, x.n(), k, S::PRECISION);
        self.profiler
            .charge(KernelClass::Axpy, t, 3 * k * x.n() * S::BYTES);
        S::view(&*self.backend).block_axpy(alpha, x, k, y);
    }

    /// Fused column scalings `x_c *= alpha_c`.
    pub fn block_scal<S: BackendScalar>(&mut self, alpha: &[S], x: &mut MultiVec<S>, k: usize) {
        contracts::block_scalars("block_scal", x, k, alpha);
        let (t, bytes) = self.block_scal_spec::<S>(x.n(), k);
        self.profiler.charge(KernelClass::Scal, t, bytes);
        S::view(&*self.backend).block_scal(alpha, x, k);
    }

    /// Block copy (uncharged, like [`GpuContext::copy`]).
    pub fn block_copy<S: BackendScalar>(
        &mut self,
        src: &MultiVec<S>,
        k: usize,
        dst: &mut MultiVec<S>,
    ) {
        contracts::block_pair("block_copy", src, dst, k);
        S::view(&*self.backend).block_copy(src, k, dst);
    }

    /// Fused per-lane copy `dsts[c] = srcs[c]` over a lane set (the
    /// batched form of `BlockGmres`'s per-lane direction gathers).
    /// Uncharged, like [`GpuContext::copy`].
    pub fn lane_copy<S: BackendScalar>(&mut self, srcs: &[&[S]], dsts: &mut [&mut [S]]) {
        contracts::lanes("lane_copy", None, srcs, dsts);
        S::view(&*self.backend).lane_copy(srcs, dsts);
    }

    /// Fused per-lane normalize-and-store `dsts[c] = alpha[c] * srcs[c]`
    /// (the batched form of the copy-then-scal pair that extends each
    /// lane's Krylov basis). Charged like a width-`k` block scaling —
    /// bit-identical to a single [`GpuContext::scal`] at `k = 1`.
    pub fn lane_scal_copy<S: BackendScalar>(
        &mut self,
        alpha: &[S],
        srcs: &[&[S]],
        dsts: &mut [&mut [S]],
    ) {
        contracts::lanes("lane_scal_copy", Some(alpha), srcs, dsts);
        if srcs.is_empty() {
            return;
        }
        let (t, bytes) = self.block_scal_spec::<S>(srcs[0].len(), srcs.len());
        self.profiler.charge(KernelClass::Scal, t, bytes);
        S::view(&*self.backend).lane_scal_copy(alpha, srcs, dsts);
    }

    // ----- basis-store kernels ----------------------------------------
    //
    // The Krylov basis lives in a `BasisStore` (native working-precision
    // columns or fp32/fp16-demoted ones) while every operand vector and
    // all accumulation stay in `S`. Charged under the same classes as
    // the uniform GEMV/scal kernels, priced with the store's element
    // width: a `Native` store charges and computes bit-identically to
    // the `MultiVector` calls above.

    /// `h = V^T w` over the first `ncols` stored basis columns.
    pub fn basis_gemv_t<S: BackendScalar>(
        &mut self,
        v: &BasisStore<S>,
        ncols: usize,
        w: &[S],
        h: &mut [S],
    ) {
        contracts::basis_gemv(v, ncols, w, h);
        let (t, bytes) = self.basis_gemv_t_spec::<S>(v.n(), ncols, v.elem_bytes());
        self.profiler.charge(KernelClass::GemvT, t, bytes);
        S::view(&*self.backend).basis_gemv_t(v, ncols, w, h, self.reduction);
    }

    /// `w -= widen(V[:, ..ncols]) h` over a stored basis.
    pub fn basis_gemv_n_sub<S: BackendScalar>(
        &mut self,
        v: &BasisStore<S>,
        ncols: usize,
        h: &[S],
        w: &mut [S],
    ) {
        contracts::basis_gemv(v, ncols, w, h);
        let (t, bytes) = self.basis_gemv_n_spec::<S>(v.n(), ncols, v.elem_bytes());
        self.profiler.charge(KernelClass::GemvN, t, bytes);
        S::view(&*self.backend).basis_gemv_n_sub(v, ncols, h, w);
    }

    /// `y += widen(V[:, ..ncols]) h` over a stored basis (the solution
    /// update `x += V y`).
    pub fn basis_gemv_n_add<S: BackendScalar>(
        &mut self,
        v: &BasisStore<S>,
        ncols: usize,
        h: &[S],
        y: &mut [S],
    ) {
        contracts::basis_gemv(v, ncols, y, h);
        let (t, bytes) = self.basis_gemv_n_spec::<S>(v.n(), ncols, v.elem_bytes());
        self.profiler.charge(KernelClass::GemvN, t, bytes);
        S::view(&*self.backend).basis_gemv_n_add(v, ncols, h, y);
    }

    /// Fused basis extension `col_j = alpha * src` (read the source,
    /// write the stored column, demotion fused into the store). Charged
    /// once under [`KernelClass::Scal`]; at native width the charge is
    /// bit-identical to the copy-then-[`GpuContext::scal`] pair it
    /// replaces (the copy was uncharged).
    pub fn basis_scal_copy<S: BackendScalar>(
        &mut self,
        v: &mut BasisStore<S>,
        j: usize,
        alpha: S,
        src: &[S],
    ) {
        assert_eq!(src.len(), v.n(), "basis_scal_copy: length mismatch");
        let (t, bytes) = self.basis_scal_copy_spec::<S>(v.n(), 1, v.elem_bytes());
        self.profiler.charge(KernelClass::Scal, t, bytes);
        S::view(&*self.backend).basis_scal_copy(v, j, alpha, src);
    }

    /// Fused per-lane basis extension `vs[c][:, j] = alpha[c] * srcs[c]`
    /// — the batched form of [`GpuContext::basis_scal_copy`] over a lane
    /// set with one storage precision. Bit-identical in charge and
    /// result to [`GpuContext::lane_scal_copy`] when every lane is
    /// native.
    pub fn basis_lane_scal_copy<S: BackendScalar>(
        &mut self,
        alpha: &[S],
        srcs: &[&[S]],
        vs: &mut [&mut BasisStore<S>],
        j: usize,
    ) {
        assert_eq!(
            srcs.len(),
            vs.len(),
            "basis_lane_scal_copy: {} sources for {} bases",
            srcs.len(),
            vs.len()
        );
        assert_eq!(
            alpha.len(),
            srcs.len(),
            "basis_lane_scal_copy: {} scalars for {} lanes",
            alpha.len(),
            srcs.len()
        );
        if vs.is_empty() {
            return;
        }
        for (c, (v, s)) in vs.iter().zip(srcs).enumerate() {
            assert_eq!(
                s.len(),
                v.n(),
                "basis_lane_scal_copy: lane {c} length mismatch"
            );
            assert_eq!(
                v.elem_bytes(),
                vs[0].elem_bytes(),
                "basis_lane_scal_copy: lane {c} storage width differs from lane 0"
            );
        }
        let (t, bytes) = self.basis_scal_copy_spec::<S>(vs[0].n(), vs.len(), vs[0].elem_bytes());
        self.profiler.charge(KernelClass::Scal, t, bytes);
        S::view(&*self.backend).basis_lane_scal_copy(vs, j, alpha, srcs);
    }

    /// Promote stored basis column `j` into a working-precision buffer.
    /// Native: a plain device copy, uncharged like [`GpuContext::copy`]
    /// (the pre-refactor direction gathers copied columns uncharged);
    /// compressed: a device-resident widening cast, charged like
    /// [`GpuContext::cast_device`] from the storage precision.
    pub fn basis_promote_col<S: BackendScalar>(
        &mut self,
        v: &BasisStore<S>,
        j: usize,
        out: &mut [S],
    ) {
        assert_eq!(out.len(), v.n(), "basis_promote_col: length mismatch");
        if !v.is_native() {
            let p = v.storage_precision();
            let t = cost::cast_device_time(&self.device, v.n(), p, S::PRECISION);
            self.profiler
                .charge(KernelClass::CastDevice, t, v.n() * (p.bytes() + S::BYTES));
        }
        S::view(&*self.backend).basis_promote_col(v, j, out);
    }

    /// Batched GEMV-Trans over one stored basis per block column.
    pub fn basis_block_gemv_t<S: BackendScalar>(
        &mut self,
        vs: &[&BasisStore<S>],
        ncols: usize,
        w: &MultiVec<S>,
        h: &mut [S],
    ) {
        contracts::basis_block_gemv(vs, ncols, w, h);
        let e = vs.first().map_or(S::BYTES, |v| v.elem_bytes());
        let (t, bytes) = self.basis_gemm_t_spec::<S>(w.n(), ncols, vs.len(), e);
        self.profiler.charge(KernelClass::GemvT, t, bytes);
        S::view(&*self.backend).basis_block_gemv_t(vs, ncols, w, h, self.reduction);
    }

    /// Batched GEMV-NoTrans over stored bases: `w_c -= V_c h_c`.
    pub fn basis_block_gemv_n_sub<S: BackendScalar>(
        &mut self,
        vs: &[&BasisStore<S>],
        ncols: usize,
        h: &[S],
        w: &mut MultiVec<S>,
    ) {
        contracts::basis_block_gemv(vs, ncols, w, h);
        let e = vs.first().map_or(S::BYTES, |v| v.elem_bytes());
        let (t, bytes) = self.basis_gemm_n_spec::<S>(w.n(), ncols, vs.len(), e);
        self.profiler.charge(KernelClass::GemvN, t, bytes);
        S::view(&*self.backend).basis_block_gemv_n_sub(vs, ncols, h, w);
    }

    /// Batched GEMV-NoTrans over stored bases: `y_c += V_c h_c`.
    pub fn basis_block_gemv_n_add<S: BackendScalar>(
        &mut self,
        vs: &[&BasisStore<S>],
        ncols: usize,
        h: &[S],
        y: &mut MultiVec<S>,
    ) {
        contracts::basis_block_gemv(vs, ncols, y, h);
        let e = vs.first().map_or(S::BYTES, |v| v.elem_bytes());
        let (t, bytes) = self.basis_gemm_n_spec::<S>(y.n(), ncols, vs.len(), e);
        self.profiler.charge(KernelClass::GemvN, t, bytes);
        S::view(&*self.backend).basis_block_gemv_n_add(vs, ncols, h, y);
    }

    /// Device-resident precision cast (fp32 preconditioner under an fp64
    /// solve, §III-D case a).
    pub fn cast_device<S: Scalar, T: Scalar>(&mut self, src: &[S], dst: &mut [T]) {
        let t = cost::cast_device_time(&self.device, src.len(), S::PRECISION, T::PRECISION);
        self.profiler.charge(
            KernelClass::CastDevice,
            t,
            src.len() * (S::BYTES + T::BYTES),
        );
        mpgmres_scalar::cast_into(src, dst);
    }

    /// Host-mediated precision cast (GMRES-IR refinement residuals cross
    /// the Belos interface on the host, §IV).
    pub fn cast_host<S: Scalar, T: Scalar>(&mut self, src: &[S], dst: &mut [T]) {
        let t = cost::cast_host_time(&self.device, src.len(), S::PRECISION, T::PRECISION);
        self.profiler
            .charge(KernelClass::CastHost, t, src.len() * (S::BYTES + T::BYTES));
        mpgmres_scalar::cast_into(src, dst);
    }

    /// Batched dense triangular solves of block Jacobi: `nblocks` blocks
    /// of size `bs`, streaming the factors and the vector.
    pub fn block_solve_charge<S: Scalar>(&mut self, n: usize, bs: usize) {
        let factor_bytes = n * bs * S::BYTES; // ~ n/bs blocks x bs^2 entries
        let bytes = factor_bytes + 2 * n * S::BYTES;
        let t = self.device.launch_overhead
            + bytes as f64 / (self.device.dram_bw * self.device.eff_spmv.get(S::PRECISION));
        self.profiler.charge(KernelClass::SpMV, t, bytes);
    }

    /// Simulated seconds of one iteration's host bookkeeping (Givens
    /// rotations, status tests). Shared by the eager charge below and
    /// the pipelined drivers' deferred host nodes, so the two modes
    /// charge bit-identical costs.
    pub(crate) fn host_iter_spec(&self, j: usize) -> f64 {
        self.device.iter_overhead + cost::host_dense_time(&self.device, 12 * (j + 1))
    }

    /// Simulated seconds of one restart's host bookkeeping
    /// (least-squares back-solve, allocations, manager overhead).
    pub(crate) fn host_restart_spec(&self, m: usize) -> f64 {
        self.device.restart_overhead + cost::host_dense_time(&self.device, m * m / 2)
    }

    /// Host-side per-iteration bookkeeping (Givens rotations, status
    /// tests through the Belos interface).
    pub fn charge_iteration_host(&mut self, j: usize) {
        let t = self.host_iter_spec(j);
        self.profiler.charge(KernelClass::HostDense, t, 0);
    }

    /// Host-side per-restart bookkeeping (least-squares back-solve,
    /// allocations, solver-manager overhead).
    pub fn charge_restart_host(&mut self, m: usize) {
        let t = self.host_restart_spec(m);
        self.profiler.charge(KernelClass::HostDense, t, 0);
    }

    /// Charge arbitrary host dense flops (polynomial setup eigensolve).
    pub fn charge_host_flops(&mut self, flops: usize) {
        let t = cost::host_dense_time(&self.device, flops);
        self.profiler.charge(KernelClass::HostDense, t, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpgmres_gpusim::PaperCategory;

    fn small_matrix() -> GpuMatrix<f64> {
        GpuMatrix::new(Csr::from_raw(
            3,
            3,
            vec![0, 2, 5, 7],
            vec![0, 1, 0, 1, 2, 1, 2],
            vec![2.0, -1.0, -1.0, 2.0, -1.0, -1.0, 2.0],
        ))
    }

    #[test]
    fn spmv_computes_and_charges() {
        let a = small_matrix();
        let mut ctx = GpuContext::new(DeviceModel::v100_belos());
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        ctx.spmv(&a, &x, &mut y);
        assert_eq!(y, [0.0, 0.0, 4.0]);
        assert!(ctx.elapsed() > 0.0);
        assert_eq!(ctx.report().categories[&PaperCategory::SpMV].calls, 1);
    }

    #[test]
    fn residual_hi_lands_in_other() {
        let a = small_matrix();
        let mut ctx = GpuContext::new(DeviceModel::v100_belos());
        let b = [1.0, 1.0, 1.0];
        let x = [0.0; 3];
        let mut r = [0.0; 3];
        ctx.residual_as(KernelClass::ResidualHi, &a, &b, &x, &mut r);
        assert_eq!(r, b);
        let rep = ctx.report();
        assert_eq!(rep.seconds(PaperCategory::SpMV), 0.0);
        assert!(rep.seconds(PaperCategory::Other) > 0.0);
    }

    #[test]
    fn norm_matches_sequential_for_small_vectors() {
        let mut ctx = GpuContext::with_reduction(DeviceModel::ideal(), ReductionOrder::Sequential);
        let x = vec![3.0f64, 4.0];
        assert_eq!(ctx.norm2(&x), 5.0);
    }

    #[test]
    fn casts_roundtrip_values() {
        let mut ctx = GpuContext::new(DeviceModel::v100_belos());
        let x = vec![0.1f64, -2.5, 7.0];
        let mut lo = vec![0.0f32; 3];
        ctx.cast_host(&x, &mut lo);
        assert_eq!(lo[1], -2.5f32);
        let mut back = vec![0.0f64; 3];
        ctx.cast_device(&lo, &mut back);
        assert_eq!(back[2], 7.0);
        // Host cast must be far more expensive than device cast.
        let rep = ctx.profiler();
        let host = rep.class_stats(KernelClass::CastHost).seconds;
        let dev = rep.class_stats(KernelClass::CastDevice).seconds;
        assert!(host > dev);
    }

    #[test]
    fn matrix_convert_keeps_stats() {
        let a = small_matrix();
        let a32 = a.convert::<f32>();
        assert_eq!(a32.bandwidth(), a.bandwidth());
        assert_eq!(a32.nnz(), a.nnz());
    }

    #[test]
    fn plain_store_prices_and_computes_like_the_matrix() {
        let a = small_matrix();
        let s = GpuStore::plain_of(&a);
        let mut ctx = GpuContext::new(DeviceModel::v100_belos());
        assert_eq!(ctx.store_spmv_spec::<f64>(&s), ctx.spmv_spec::<f64>(&a));
        assert_eq!(
            ctx.store_residual_spec::<f64>(&s),
            ctx.residual_spec::<f64>(&a)
        );
        assert_eq!(
            ctx.store_spmm_spec::<f64>(&s, 3),
            ctx.spmm_spec::<f64>(&a, 3)
        );
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        ctx.store_spmv(&s, &x, &mut y);
        assert_eq!(y, [0.0, 0.0, 4.0]);
        // A shadow store shrinks the value stream and changes the key tag.
        let sh = GpuStore::shadow_of(&a, Precision::Fp32);
        assert!(sh.value_bytes() < s.value_bytes());
        assert_ne!(sh.tag().code(), s.tag().code());
        assert!(ctx.store_spmv_spec::<f64>(&sh).0 < ctx.store_spmv_spec::<f64>(&s).0);
    }

    #[test]
    fn gemv_kernels_charge_the_right_categories() {
        let mut ctx = GpuContext::new(DeviceModel::v100_belos());
        let mut v = MultiVector::<f64>::zeros(4, 2);
        v.col_mut(0).copy_from_slice(&[1.0, 0.0, 0.0, 0.0]);
        v.col_mut(1).copy_from_slice(&[0.0, 1.0, 0.0, 0.0]);
        let w = [1.0, 2.0, 3.0, 4.0];
        let mut h = [0.0; 2];
        ctx.gemv_t(&v, 2, &w, &mut h);
        assert_eq!(h, [1.0, 2.0]);
        let mut w2 = w;
        ctx.gemv_n_sub(&v, 2, &h, &mut w2);
        assert_eq!(w2, [0.0, 0.0, 3.0, 4.0]);
        let rep = ctx.report();
        assert!(rep.seconds(PaperCategory::GemvTrans) > 0.0);
        assert!(rep.seconds(PaperCategory::GemvNoTrans) > 0.0);
    }
}
