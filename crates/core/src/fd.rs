//! GMRES-FD: the "float-double" precision-switching scheme (paper §III-C).
//!
//! Run restarted GMRES(m) entirely in low precision until a prescribed
//! global iteration count, then cast the current solution up and continue
//! in high precision using it as the initial guess. The paper evaluates
//! this as the "first inclination" alternative to GMRES-IR (Figures 1-2)
//! and finds it needs per-problem tuning of the switch point — and even
//! at the optimum it rarely beats untuned GMRES-IR.

use mpgmres_backend::BackendScalar;
use serde::Serialize;

use crate::config::GmresConfig;
use crate::context::{GpuContext, GpuMatrix};
use crate::gmres::Gmres;
use crate::precond::Preconditioner;
use crate::status::{HistoryKind, HistoryPoint, SolveResult, SolveStatus};

/// Configuration for GMRES-FD.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct FdConfig {
    /// Restart length for both phases (paper: 50).
    pub m: usize,
    /// Relative residual tolerance on the original system.
    pub rtol: f64,
    /// Global iteration at which to switch precisions. The paper switches
    /// at multiples of `m` (each restart boundary).
    pub switch_at: usize,
    /// Cap on total iterations across both phases.
    pub max_iters: usize,
    /// Record residual history.
    pub record_history: bool,
}

impl Default for FdConfig {
    fn default() -> Self {
        FdConfig {
            m: 50,
            rtol: 1e-10,
            switch_at: 500,
            max_iters: 200_000,
            record_history: true,
        }
    }
}

/// Result of a GMRES-FD solve, with the per-phase split.
#[derive(Clone, Debug, Serialize)]
pub struct FdResult {
    /// Combined result (status from the high-precision phase).
    pub result: SolveResult,
    /// Iterations spent in the low-precision phase.
    pub lo_iterations: usize,
    /// Iterations spent in the high-precision phase.
    pub hi_iterations: usize,
    /// Relative residual at the switch point.
    pub residual_at_switch: f64,
}

/// GMRES-FD with low precision `Lo` and high precision `Hi`.
pub struct GmresFd<'a, Lo: BackendScalar, Hi: BackendScalar> {
    a_hi: &'a GpuMatrix<Hi>,
    a_lo: GpuMatrix<Lo>,
    precond_lo: &'a dyn Preconditioner<Lo>,
    precond_hi: &'a dyn Preconditioner<Hi>,
    cfg: FdConfig,
}

impl<'a, Lo: BackendScalar, Hi: BackendScalar> GmresFd<'a, Lo, Hi> {
    /// Build the solver (the low-precision matrix copy is made here).
    pub fn new(
        a_hi: &'a GpuMatrix<Hi>,
        precond_lo: &'a dyn Preconditioner<Lo>,
        precond_hi: &'a dyn Preconditioner<Hi>,
        cfg: FdConfig,
    ) -> Self {
        GmresFd {
            a_hi,
            a_lo: a_hi.convert::<Lo>(),
            precond_lo,
            precond_hi,
            cfg,
        }
    }

    /// Solve `A x = b`; `x` carries the initial guess in and solution out.
    pub fn solve(&self, ctx: &mut GpuContext, b: &[Hi], x: &mut [Hi]) -> FdResult {
        let n = self.a_hi.n();
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);

        // Reference norm for the global relative residual.
        let mut r = vec![Hi::zero(); n];
        ctx.residual_as(mpgmres_gpusim::KernelClass::SpMV, self.a_hi, b, x, &mut r);
        let r0_norm = ctx.norm2(&r).to_f64();
        if r0_norm == 0.0 {
            return FdResult {
                result: SolveResult {
                    status: SolveStatus::Converged,
                    iterations: 0,
                    restarts: 0,
                    final_relative_residual: 0.0,
                    history: Vec::new(),
                },
                lo_iterations: 0,
                hi_iterations: 0,
                residual_at_switch: 0.0,
            };
        }

        // ---- Phase 1: low precision up to the switch point. ----
        let mut b_lo = vec![Lo::zero(); n];
        let mut x_lo = vec![Lo::zero(); n];
        ctx.cast_host(b, &mut b_lo);
        ctx.cast_host(x, &mut x_lo);
        let lo_cfg = GmresConfig {
            m: self.cfg.m,
            rtol: self.cfg.rtol,
            max_iters: self.cfg.switch_at,
            ortho: crate::config::OrthoMethod::Cgs2,
            monitor_implicit: true,
            loa_factor: f64::INFINITY, // fp32 phase is best-effort
            record_history: self.cfg.record_history,
            pipeline_depth: 0,
            basis: crate::config::BasisPolicy::Native,
        };
        let lo_res = if self.cfg.switch_at > 0 {
            Gmres::new(&self.a_lo, self.precond_lo, lo_cfg).solve(ctx, &b_lo, &mut x_lo)
        } else {
            SolveResult {
                status: SolveStatus::MaxIters,
                iterations: 0,
                restarts: 0,
                final_relative_residual: 1.0,
                history: Vec::new(),
            }
        };
        ctx.cast_host(&x_lo, x);

        // Residual at the switch, relative to the original ||r0||.
        ctx.residual_as(mpgmres_gpusim::KernelClass::SpMV, self.a_hi, b, x, &mut r);
        let switch_norm = ctx.norm2(&r).to_f64();
        let residual_at_switch = switch_norm / r0_norm;

        let mut history: Vec<HistoryPoint> = Vec::new();
        if self.cfg.record_history {
            // Low-phase residuals are relative to ||b||_lo ~ ||r0||;
            // reuse them directly.
            history.extend(lo_res.history.iter().copied());
            history.push(HistoryPoint {
                iteration: lo_res.iterations,
                relative_residual: residual_at_switch,
                kind: HistoryKind::Explicit,
            });
        }

        if residual_at_switch <= self.cfg.rtol {
            return FdResult {
                result: SolveResult {
                    status: SolveStatus::Converged,
                    iterations: lo_res.iterations,
                    restarts: lo_res.restarts,
                    final_relative_residual: residual_at_switch,
                    history,
                },
                lo_iterations: lo_res.iterations,
                hi_iterations: 0,
                residual_at_switch,
            };
        }

        // ---- Phase 2: high precision from the cast solution. ----
        // The hi solver's relative residual is measured against its own
        // r0 (= switch residual); rescale its tolerance so convergence is
        // judged against the ORIGINAL right-hand side.
        let hi_rtol = (self.cfg.rtol / residual_at_switch).min(1.0);
        let hi_cfg = GmresConfig {
            m: self.cfg.m,
            rtol: hi_rtol,
            max_iters: self.cfg.max_iters.saturating_sub(lo_res.iterations),
            ortho: crate::config::OrthoMethod::Cgs2,
            monitor_implicit: true,
            loa_factor: 10.0,
            record_history: self.cfg.record_history,
            pipeline_depth: 0,
            basis: crate::config::BasisPolicy::Native,
        };
        let hi_res = Gmres::new(self.a_hi, self.precond_hi, hi_cfg).solve(ctx, b, x);

        if self.cfg.record_history {
            for p in &hi_res.history {
                history.push(HistoryPoint {
                    iteration: lo_res.iterations + p.iteration,
                    relative_residual: p.relative_residual * residual_at_switch,
                    kind: p.kind,
                });
            }
        }

        FdResult {
            result: SolveResult {
                status: hi_res.status,
                iterations: lo_res.iterations + hi_res.iterations,
                restarts: lo_res.restarts + hi_res.restarts,
                final_relative_residual: hi_res.final_relative_residual * residual_at_switch,
                history,
            },
            lo_iterations: lo_res.iterations,
            hi_iterations: hi_res.iterations,
            residual_at_switch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::Identity;
    use mpgmres_gpusim::DeviceModel;
    use mpgmres_la::coo::Coo;
    use mpgmres_la::vec_ops::ReductionOrder;

    fn ctx() -> GpuContext {
        GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential)
    }

    fn laplace1d(n: usize) -> GpuMatrix<f64> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        GpuMatrix::new(coo.into_csr())
    }

    fn true_rel(a: &GpuMatrix<f64>, b: &[f64], x: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        a.csr().residual(b, x, &mut r);
        mpgmres_la::vec_ops::norm2(&r) / mpgmres_la::vec_ops::norm2(b)
    }

    #[test]
    fn converges_to_double_accuracy() {
        let n = 96;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let cfg = FdConfig {
            m: 20,
            switch_at: 60,
            max_iters: 20_000,
            ..FdConfig::default()
        };
        let fd = GmresFd::<f32, f64>::new(&a, &Identity, &Identity, cfg);
        let res = fd.solve(&mut ctx(), &b, &mut x);
        assert_eq!(res.result.status, SolveStatus::Converged);
        assert!(true_rel(&a, &b, &x) <= 1.2e-10);
        assert!(res.lo_iterations <= 60);
        assert!(res.hi_iterations > 0);
        assert!(res.residual_at_switch < 1.0);
    }

    #[test]
    fn switch_at_zero_is_pure_double() {
        let n = 48;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let cfg = FdConfig {
            m: 15,
            switch_at: 0,
            max_iters: 5_000,
            ..FdConfig::default()
        };
        let res =
            GmresFd::<f32, f64>::new(&a, &Identity, &Identity, cfg).solve(&mut ctx(), &b, &mut x);
        assert_eq!(res.lo_iterations, 0);
        assert_eq!(res.result.status, SolveStatus::Converged);
        assert!(true_rel(&a, &b, &x) <= 1.2e-10);
    }

    #[test]
    fn late_switch_wastes_low_iterations() {
        // Once fp32 stalls, extra fp32 iterations add count but no
        // progress: the total iteration count grows with switch_at.
        let n = 64;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        let run = |switch_at: usize| {
            let mut x = vec![0.0; n];
            let cfg = FdConfig {
                m: 16,
                switch_at,
                max_iters: 50_000,
                ..FdConfig::default()
            };
            GmresFd::<f32, f64>::new(&a, &Identity, &Identity, cfg).solve(&mut ctx(), &b, &mut x)
        };
        let early = run(64);
        let late = run(2_000);
        assert_eq!(early.result.status, SolveStatus::Converged);
        assert_eq!(late.result.status, SolveStatus::Converged);
        assert!(
            late.result.iterations > early.result.iterations,
            "late switch must cost more total iterations: {} vs {}",
            late.result.iterations,
            early.result.iterations
        );
    }

    #[test]
    fn history_is_globally_scaled() {
        let n = 48;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let cfg = FdConfig {
            m: 12,
            switch_at: 24,
            max_iters: 5_000,
            ..FdConfig::default()
        };
        let res =
            GmresFd::<f32, f64>::new(&a, &Identity, &Identity, cfg).solve(&mut ctx(), &b, &mut x);
        // Final explicit history point must match the final residual.
        let last = res
            .result
            .history
            .iter()
            .rev()
            .find(|p| p.kind == HistoryKind::Explicit)
            .unwrap();
        let rel = res.result.final_relative_residual;
        assert!(
            (last.relative_residual - rel).abs() <= 1e-12 + rel * 0.5,
            "history tail {} vs final {}",
            last.relative_residual,
            rel
        );
        // Iterations increase monotonically through the merged history.
        let mut prev = 0;
        for p in &res.result.history {
            assert!(p.iteration >= prev);
            prev = p.iteration;
        }
    }
}
