//! Solve outcomes and convergence histories.

use serde::Serialize;

/// Terminal status of a solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum SolveStatus {
    /// Explicit relative residual cleared the tolerance.
    Converged,
    /// Iteration cap reached first.
    MaxIters,
    /// The implicit (Givens) residual claimed convergence but the
    /// explicit residual `||b - A x||` disagrees — Belos's "loss of
    /// accuracy", the fp32-preconditioner failure mode of §V-F.
    LossOfAccuracy,
    /// Arnoldi breakdown that was not "lucky" (degenerate least-squares
    /// pivot or non-finite values).
    Breakdown,
}

impl SolveStatus {
    /// `true` only for [`SolveStatus::Converged`].
    pub fn is_converged(self) -> bool {
        matches!(self, SolveStatus::Converged)
    }
}

/// Which arithmetic produced a history sample (interesting for GMRES-FD
/// and GMRES-IR curves).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum HistoryKind {
    /// Implicit residual from the Givens recurrence (free, every
    /// iteration).
    Implicit,
    /// Explicitly computed `||b - A x|| / ||r0||` (restarts and final).
    Explicit,
}

/// One convergence-history sample.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct HistoryPoint {
    /// Global iteration index (cumulative across restarts and solvers).
    pub iteration: usize,
    /// Relative residual at this point.
    pub relative_residual: f64,
    /// Implicit or explicit.
    pub kind: HistoryKind,
}

/// Result of a solve: status, counts, timings live in the context's
/// profiler; the solution is written into the caller's `x`.
#[derive(Clone, Debug, Serialize)]
pub struct SolveResult {
    /// Terminal status.
    pub status: SolveStatus,
    /// Total iterations performed (inner iterations for IR/FD).
    pub iterations: usize,
    /// Number of completed restart cycles.
    pub restarts: usize,
    /// Final explicit relative residual (f64, computed at exit).
    pub final_relative_residual: f64,
    /// Residual history (implicit samples each iteration when enabled,
    /// explicit samples at restarts).
    pub history: Vec<HistoryPoint>,
}

impl SolveResult {
    /// Explicit-residual samples only.
    pub fn explicit_history(&self) -> impl Iterator<Item = &HistoryPoint> {
        self.history
            .iter()
            .filter(|h| h.kind == HistoryKind::Explicit)
    }

    /// Smallest relative residual ever recorded.
    pub fn best_residual(&self) -> f64 {
        self.history
            .iter()
            .map(|h| h.relative_residual)
            .fold(self.final_relative_residual, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converged_only_for_converged() {
        assert!(SolveStatus::Converged.is_converged());
        assert!(!SolveStatus::MaxIters.is_converged());
        assert!(!SolveStatus::LossOfAccuracy.is_converged());
        assert!(!SolveStatus::Breakdown.is_converged());
    }

    #[test]
    fn history_filters() {
        let r = SolveResult {
            status: SolveStatus::Converged,
            iterations: 2,
            restarts: 1,
            final_relative_residual: 1e-11,
            history: vec![
                HistoryPoint {
                    iteration: 1,
                    relative_residual: 0.5,
                    kind: HistoryKind::Implicit,
                },
                HistoryPoint {
                    iteration: 2,
                    relative_residual: 1e-11,
                    kind: HistoryKind::Explicit,
                },
            ],
        };
        assert_eq!(r.explicit_history().count(), 1);
        assert_eq!(r.best_residual(), 1e-11);
    }
}
