//! The unified request surface: one [`SolveRequest`] type accepted by
//! every driver ([`crate::Gmres`], [`crate::BlockGmres`],
//! [`crate::GmresIr`], [`crate::GmresIr3`]) and by the continuous
//! [`crate::service::SolverService`], one [`SolveOutcome`] coming back,
//! and one typed [`SolveError`] for everything the boundary used to
//! reject with a panic.

use mpgmres_backend::BackendScalar;

use crate::config::{GmresConfig, StorePath};
use crate::context::{GpuMatrix, GpuStore};
use crate::precond::{Identity, Preconditioner};
use crate::status::SolveResult;

/// The operand of a solve: either the plain matrix in the working
/// precision, or a packed low-precision storage path prepared with
/// [`GpuStore`]. Copy-cheap — both variants borrow.
#[derive(Clone, Copy)]
pub enum Operator<'a, S> {
    /// Plain CSR matrix in the working precision.
    Matrix(&'a GpuMatrix<S>),
    /// A (possibly low-precision) packed storage path.
    Store(&'a GpuStore<S>),
}

impl<'a, S: BackendScalar> Operator<'a, S> {
    /// Dimension (square systems).
    pub fn n(&self) -> usize {
        match self {
            Operator::Matrix(a) => a.n(),
            Operator::Store(a) => a.n(),
        }
    }

    /// Storage-precision tag code (0 for the plain matrix), matching
    /// the byte the recorded-region keys carry.
    pub(crate) fn tag_code(&self) -> u8 {
        match self {
            Operator::Matrix(_) => 0,
            Operator::Store(a) => a.tag().code(),
        }
    }

    /// Stable identity of the borrowed operand (groups service requests
    /// that share a matrix).
    pub(crate) fn addr(&self) -> usize {
        match self {
            Operator::Matrix(a) => *a as *const GpuMatrix<S> as usize,
            Operator::Store(a) => *a as *const GpuStore<S> as usize,
        }
    }
}

/// One linear solve, fully described: operand, right-hand side,
/// optional initial guess, solver configuration, storage path, right
/// preconditioner, and the tenant the request belongs to.
///
/// Two lifetimes: `'a` is the long-lived solver state (operand and
/// preconditioner — what a [`crate::service::SolverService`] keeps
/// borrowing between requests), `'r` the per-request payload (`rhs`,
/// `x0` — copied at submission, so it may be as short-lived as one
/// loop iteration).
///
/// ```
/// use mpgmres::prelude::*;
/// # let mut coo = mpgmres_la::coo::Coo::new(4, 4);
/// # for i in 0..4 { coo.push(i, i, 2.0f64); }
/// # let a = GpuMatrix::new(coo.into_csr());
/// let b = vec![1.0f64; 4];
/// let req = SolveRequest::new(Operator::Matrix(&a), &b)
///     .with_config(GmresConfig::default().with_m(10));
/// let mut ctx = GpuContext::new(DeviceModel::v100_belos());
/// let out = Gmres::serve(&mut ctx, &req).unwrap();
/// assert!(out.result.unwrap().status.is_converged());
/// ```
#[derive(Clone, Copy)]
pub struct SolveRequest<'a, 'r, S> {
    /// The operand `A`.
    pub operator: Operator<'a, S>,
    /// Right-hand side `b` (length `n`).
    pub rhs: &'r [S],
    /// Initial guess (length `n`); zero when absent.
    pub x0: Option<&'r [S]>,
    /// Solver configuration (restart length, tolerance, caps, ...).
    pub config: GmresConfig,
    /// Storage path for drivers that build their own low-precision
    /// operand copies (the IR drivers, or the direct drivers when the
    /// operand is a plain matrix). [`StorePath::Native`] means "as
    /// given".
    pub store: StorePath,
    /// Right preconditioner (identity by default).
    pub precond: &'a dyn Preconditioner<S>,
    /// Tenant tag: requests from different tenants never share lane
    /// groups or cached op graphs in the service.
    pub tenant: u32,
}

impl<'a, 'r, S: BackendScalar> SolveRequest<'a, 'r, S> {
    /// A request with the default configuration, identity
    /// preconditioner, native storage, zero initial guess, tenant 0.
    pub fn new(operator: Operator<'a, S>, rhs: &'r [S]) -> Self {
        SolveRequest {
            operator,
            rhs,
            x0: None,
            config: GmresConfig::default(),
            store: StorePath::Native,
            precond: &Identity,
            tenant: 0,
        }
    }

    /// Builder-style initial guess.
    pub fn with_x0(mut self, x0: &'r [S]) -> Self {
        self.x0 = Some(x0);
        self
    }

    /// Builder-style solver configuration.
    pub fn with_config(mut self, config: GmresConfig) -> Self {
        self.config = config;
        self
    }

    /// Builder-style storage path.
    pub fn with_store(mut self, store: StorePath) -> Self {
        self.store = store;
        self
    }

    /// Builder-style right preconditioner.
    pub fn with_precond(mut self, precond: &'a dyn Preconditioner<S>) -> Self {
        self.precond = precond;
        self
    }

    /// Builder-style tenant tag.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Check everything the drivers used to `assert!` at the boundary:
    /// dimensions, configuration, and operand/preconditioner
    /// compatibility.
    pub fn validate(&self) -> Result<(), SolveError> {
        self.config.validate()?;
        let n = self.operator.n();
        if self.rhs.len() != n {
            return Err(SolveError::DimensionMismatch {
                what: "rhs length",
                expected: n,
                got: self.rhs.len(),
            });
        }
        if let Some(x0) = self.x0 {
            if x0.len() != n {
                return Err(SolveError::DimensionMismatch {
                    what: "initial guess length",
                    expected: n,
                    got: x0.len(),
                });
            }
        }
        let packed =
            matches!(self.operator, Operator::Store(_)) || !matches!(self.store, StorePath::Native);
        if packed && self.precond.needs_matrix() {
            return Err(SolveError::UnsupportedCombination(format!(
                "preconditioner '{}' needs the plain matrix, which a packed \
                 storage path does not carry; use a matrix-free preconditioner \
                 (identity, block Jacobi, or a cast wrapper owning its own copy)",
                self.precond.describe()
            )));
        }
        Ok(())
    }
}

/// Identifier handed back by [`crate::service::SolverService::submit`];
/// one-shot driver serves always report id 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl core::fmt::Display for RequestId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// How a request left the system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Ran to a terminal solver status (converged or not — inspect
    /// [`SolveOutcome::result`]).
    Completed,
    /// Cancelled before reaching a terminal status (in queue, or at a
    /// cycle barrier mid-solve).
    Cancelled,
}

/// The answer to one [`SolveRequest`].
#[derive(Clone, Debug)]
pub struct SolveOutcome<S> {
    /// The id echoed from submission (0 for one-shot serves).
    pub id: RequestId,
    /// The solution (or, for cancelled requests, the iterate as of the
    /// last completed cycle barrier).
    pub x: Vec<S>,
    /// Terminal solver result; `None` exactly when the request was
    /// cancelled before resolving.
    pub result: Option<SolveResult>,
    /// Completed or cancelled.
    pub disposition: Disposition,
    /// Simulated seconds spent queued before lane admission.
    pub queued_seconds: f64,
    /// Simulated seconds from lane admission to the terminal barrier.
    pub solve_seconds: f64,
}

/// Typed rejection at the request surface. Everything here used to be
/// an `assert!` inside the drivers; the internal invariants those
/// asserts also guarded remain as `debug_assert!`s.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// A buffer length does not match the operand dimension.
    DimensionMismatch {
        /// Which buffer.
        what: &'static str,
        /// The operand dimension it must match.
        expected: usize,
        /// What was handed in.
        got: usize,
    },
    /// The [`GmresConfig`] is out of range (restart length 0, pipeline
    /// depth > 1, non-finite tolerance, ...).
    InvalidConfig(String),
    /// The request combines features that cannot run together (e.g. a
    /// matrix-needing preconditioner over a packed storage path).
    UnsupportedCombination(String),
    /// A [`RequestId`] the service has no record of (already drained,
    /// or never submitted).
    UnknownRequest {
        /// The offending id.
        id: RequestId,
    },
}

impl core::fmt::Display for SolveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SolveError::DimensionMismatch {
                what,
                expected,
                got,
            } => {
                write!(f, "{what} mismatch: expected {expected}, got {got}")
            }
            SolveError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            SolveError::UnsupportedCombination(msg) => {
                write!(f, "unsupported combination: {msg}")
            }
            SolveError::UnknownRequest { id } => write!(f, "unknown request {id}"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::block_jacobi::BlockJacobi;
    use mpgmres_la::coo::Coo;
    use mpgmres_scalar::Precision;

    fn laplace1d(n: usize) -> GpuMatrix<f64> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        GpuMatrix::new(coo.into_csr())
    }

    #[test]
    fn validate_catches_dimension_mismatches() {
        let a = laplace1d(8);
        let b = vec![1.0f64; 7];
        let err = SolveRequest::new(Operator::Matrix(&a), &b)
            .validate()
            .unwrap_err();
        assert_eq!(
            err,
            SolveError::DimensionMismatch {
                what: "rhs length",
                expected: 8,
                got: 7
            }
        );
        let b = vec![1.0f64; 8];
        let x0 = vec![0.0f64; 9];
        let err = SolveRequest::new(Operator::Matrix(&a), &b)
            .with_x0(&x0)
            .validate()
            .unwrap_err();
        assert!(matches!(err, SolveError::DimensionMismatch { .. }));
    }

    #[test]
    fn validate_catches_bad_config() {
        let a = laplace1d(8);
        let b = vec![1.0f64; 8];
        let cfg = GmresConfig {
            m: 0,
            ..GmresConfig::default()
        };
        let err = SolveRequest::new(Operator::Matrix(&a), &b)
            .with_config(cfg)
            .validate()
            .unwrap_err();
        assert!(matches!(err, SolveError::InvalidConfig(_)));
        let cfg = GmresConfig {
            pipeline_depth: 2,
            ..GmresConfig::default()
        };
        let err = SolveRequest::new(Operator::Matrix(&a), &b)
            .with_config(cfg)
            .validate()
            .unwrap_err();
        assert!(matches!(err, SolveError::InvalidConfig(_)));
    }

    #[test]
    fn matrix_needing_preconditioner_rejected_on_packed_paths() {
        let a = laplace1d(8);
        let bj = BlockJacobi::build(&a, 2);
        let cheb =
            crate::precond::chebyshev::ChebyshevPreconditioner::with_bounds(4, 0.1, 4.0).unwrap();
        let b = vec![1.0f64; 8];
        // Block Jacobi never touches A at apply time: fine on a shadow path.
        assert!(SolveRequest::new(Operator::Matrix(&a), &b)
            .with_store(StorePath::Shadow(Precision::Fp32))
            .with_precond(&bj)
            .validate()
            .is_ok());
        // Chebyshev streams SpMVs against the plain matrix: rejected.
        let err = SolveRequest::new(Operator::Matrix(&a), &b)
            .with_store(StorePath::Shadow(Precision::Fp32))
            .with_precond(&cheb)
            .validate()
            .unwrap_err();
        assert!(matches!(err, SolveError::UnsupportedCombination(_)));
    }

    #[test]
    fn errors_display() {
        let msgs = [
            SolveError::DimensionMismatch {
                what: "rhs length",
                expected: 4,
                got: 3,
            }
            .to_string(),
            SolveError::InvalidConfig("m = 0".into()).to_string(),
            SolveError::UnsupportedCombination("x".into()).to_string(),
            SolveError::UnknownRequest { id: RequestId(7) }.to_string(),
        ];
        assert!(msgs[0].contains("expected 4"));
        assert!(msgs[3].contains("req#7"));
    }
}
