//! The unified request surface: one [`SolveRequest`] type accepted by
//! every driver ([`crate::Gmres`], [`crate::BlockGmres`],
//! [`crate::GmresIr`], [`crate::GmresIr3`]) and by the continuous
//! [`crate::service::SolverService`], one [`SolveOutcome`] coming back,
//! and one typed [`SolveError`] for everything the boundary used to
//! reject with a panic.

use mpgmres_backend::BackendScalar;

use crate::config::{GmresConfig, StorePath};
use crate::context::{GpuMatrix, GpuStore};
use crate::precond::{Identity, Preconditioner};
use crate::status::SolveResult;

/// The operand of a solve: either the plain matrix in the working
/// precision, or a packed low-precision storage path prepared with
/// [`GpuStore`]. Copy-cheap — both variants borrow.
#[derive(Clone, Copy)]
pub enum Operator<'a, S> {
    /// Plain CSR matrix in the working precision.
    Matrix(&'a GpuMatrix<S>),
    /// A (possibly low-precision) packed storage path.
    Store(&'a GpuStore<S>),
}

impl<'a, S: BackendScalar> Operator<'a, S> {
    /// Dimension (square systems).
    pub fn n(&self) -> usize {
        match self {
            Operator::Matrix(a) => a.n(),
            Operator::Store(a) => a.n(),
        }
    }

    /// Storage-precision tag code (0 for the plain matrix), matching
    /// the byte the recorded-region keys carry.
    pub(crate) fn tag_code(&self) -> u8 {
        match self {
            Operator::Matrix(_) => 0,
            Operator::Store(a) => a.tag().code(),
        }
    }

    /// Stable identity of the borrowed operand (groups service requests
    /// that share a matrix).
    pub(crate) fn addr(&self) -> usize {
        match self {
            Operator::Matrix(a) => *a as *const GpuMatrix<S> as usize,
            Operator::Store(a) => *a as *const GpuStore<S> as usize,
        }
    }
}

/// Per-request quality-of-service contract, carried on
/// [`SolveRequest`] and interpreted by the service scheduler only —
/// QoS steers *ordering and lane assignment*, never arithmetic, so a
/// request completes bit-identical to an independent solve at its
/// final configuration no matter what QoS it carried.
///
/// `Qos::default()` reproduces the pre-QoS service exactly: priority
/// 0, no deadline, not degradable.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Qos {
    /// Scheduling weight under [`SchedulerPolicy::Priority`]: higher
    /// values admit first (ties break by submission order).
    ///
    /// [`SchedulerPolicy::Priority`]: crate::config::SchedulerPolicy::Priority
    pub priority: i32,
    /// Relative deadline in simulated seconds from submission. Expiry
    /// resolves at cycle barriers exactly like cancellation: the
    /// request leaves as [`Disposition::DeadlineExceeded`] with the
    /// iterate of the last completed barrier (the initial guess if it
    /// never got a lane). `None` means no deadline.
    pub deadline: Option<f64>,
    /// Whether the service may re-route this request down the
    /// precision ladder (native → fp32 store → fp32 basis) when its
    /// queue wait exceeds [`ServiceConfig::degrade_after_cycles`] —
    /// the degraded configuration still converges to the request's
    /// fp64 `rtol`, a few restarts late.
    ///
    /// [`ServiceConfig::degrade_after_cycles`]: crate::service::ServiceConfig::degrade_after_cycles
    pub degradable: bool,
}

/// Which rung of the precision ladder a degraded request landed on,
/// reported on [`SolveOutcome::degraded`] so callers (and the parity
/// tests) can reconstruct the *final* configuration the solve ran at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Degradation {
    /// Matrix values re-routed to a registered fp32 [`GpuStore`]
    /// operand (same basis, same config).
    Fp32Store,
    /// Krylov basis re-routed to fp32 compressed storage (config's
    /// basis policy swapped, loss-of-accuracy factor raised).
    Fp32Basis,
    /// Both rungs taken: fp32 store operand and fp32 compressed basis.
    Fp32StoreAndBasis,
}

impl Degradation {
    /// The loss-of-accuracy factor floor a compressed-basis rung
    /// raises the config to: the fp32 basis pins the implicit/explicit
    /// residual gap near storage precision, and the restart loop
    /// refines through it (the PR 9 contract), so the LoA monitor must
    /// not abort the refinement.
    const BASIS_LOA_FLOOR: f64 = 1e8;

    /// The configuration a request degraded by `self` actually ran
    /// at, given the configuration it was submitted with. The store
    /// rung changes the operand, not the config; the basis rungs swap
    /// the basis policy and raise the LoA floor.
    pub fn apply(self, cfg: GmresConfig) -> GmresConfig {
        match self {
            Degradation::Fp32Store => cfg,
            Degradation::Fp32Basis | Degradation::Fp32StoreAndBasis => {
                let loa = cfg.loa_factor.max(Self::BASIS_LOA_FLOOR);
                cfg.with_basis(crate::config::BasisPolicy::Compressed(
                    mpgmres_scalar::Precision::Fp32,
                ))
                .with_loa_factor(loa)
            }
        }
    }

    /// The rung a request lands on when it degrades again: a store
    /// rung followed by a basis rung is both; the ladder never revisits
    /// a rung, so every other combination is just the newer rung.
    pub(crate) fn combined_with(self, next: Degradation) -> Degradation {
        match (self, next) {
            (Degradation::Fp32Store, Degradation::Fp32Basis) => Degradation::Fp32StoreAndBasis,
            (_, next) => next,
        }
    }

    /// Short label for stats tables and logs.
    pub fn label(&self) -> &'static str {
        match self {
            Degradation::Fp32Store => "fp32-store",
            Degradation::Fp32Basis => "fp32-basis",
            Degradation::Fp32StoreAndBasis => "fp32-store+basis",
        }
    }
}

/// One linear solve, fully described: operand, right-hand side,
/// optional initial guess, solver configuration, storage path, right
/// preconditioner, and the tenant the request belongs to.
///
/// Two lifetimes: `'a` is the long-lived solver state (operand and
/// preconditioner — what a [`crate::service::SolverService`] keeps
/// borrowing between requests), `'r` the per-request payload (`rhs`,
/// `x0` — copied at submission, so it may be as short-lived as one
/// loop iteration).
///
/// ```
/// use mpgmres::prelude::*;
/// # let mut coo = mpgmres_la::coo::Coo::new(4, 4);
/// # for i in 0..4 { coo.push(i, i, 2.0f64); }
/// # let a = GpuMatrix::new(coo.into_csr());
/// let b = vec![1.0f64; 4];
/// let req = SolveRequest::new(Operator::Matrix(&a), &b)
///     .with_config(GmresConfig::default().with_m(10));
/// let mut ctx = GpuContext::new(DeviceModel::v100_belos());
/// let out = Gmres::serve(&mut ctx, &req).unwrap();
/// assert!(out.result.unwrap().status.is_converged());
/// ```
#[derive(Clone, Copy)]
pub struct SolveRequest<'a, 'r, S> {
    /// The operand `A`.
    pub operator: Operator<'a, S>,
    /// Right-hand side `b` (length `n`).
    pub rhs: &'r [S],
    /// Initial guess (length `n`); zero when absent.
    pub x0: Option<&'r [S]>,
    /// Solver configuration (restart length, tolerance, caps, ...).
    pub config: GmresConfig,
    /// Storage path for drivers that build their own low-precision
    /// operand copies (the IR drivers, or the direct drivers when the
    /// operand is a plain matrix). [`StorePath::Native`] means "as
    /// given".
    pub store: StorePath,
    /// Right preconditioner (identity by default).
    pub precond: &'a dyn Preconditioner<S>,
    /// Tenant tag: requests from different tenants never share lane
    /// groups or cached op graphs in the service.
    pub tenant: u32,
    /// Quality-of-service contract (priority, deadline, degradability)
    /// — scheduling only, never arithmetic.
    pub qos: Qos,
}

impl<'a, 'r, S: BackendScalar> SolveRequest<'a, 'r, S> {
    /// A request with the default configuration, identity
    /// preconditioner, native storage, zero initial guess, tenant 0.
    pub fn new(operator: Operator<'a, S>, rhs: &'r [S]) -> Self {
        SolveRequest {
            operator,
            rhs,
            x0: None,
            config: GmresConfig::default(),
            store: StorePath::Native,
            precond: &Identity,
            tenant: 0,
            qos: Qos::default(),
        }
    }

    /// Builder-style initial guess.
    pub fn with_x0(mut self, x0: &'r [S]) -> Self {
        self.x0 = Some(x0);
        self
    }

    /// Builder-style solver configuration.
    pub fn with_config(mut self, config: GmresConfig) -> Self {
        self.config = config;
        self
    }

    /// Builder-style storage path.
    pub fn with_store(mut self, store: StorePath) -> Self {
        self.store = store;
        self
    }

    /// Builder-style right preconditioner.
    pub fn with_precond(mut self, precond: &'a dyn Preconditioner<S>) -> Self {
        self.precond = precond;
        self
    }

    /// Builder-style tenant tag.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Builder-style scheduling priority (see [`Qos::priority`]).
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.qos.priority = priority;
        self
    }

    /// Builder-style relative deadline in simulated seconds (see
    /// [`Qos::deadline`]). Must be positive and finite — `validate()`
    /// rejects a deadline of zero rather than expiring the request at
    /// its own submission barrier.
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.qos.deadline = Some(deadline);
        self
    }

    /// Builder-style degradability flag (see [`Qos::degradable`]).
    pub fn with_degradable(mut self, degradable: bool) -> Self {
        self.qos.degradable = degradable;
        self
    }

    /// Builder-style whole-QoS override.
    pub fn with_qos(mut self, qos: Qos) -> Self {
        self.qos = qos;
        self
    }

    /// Check everything the drivers used to `assert!` at the boundary:
    /// dimensions, configuration, and operand/preconditioner
    /// compatibility.
    pub fn validate(&self) -> Result<(), SolveError> {
        self.config.validate()?;
        let n = self.operator.n();
        if self.rhs.len() != n {
            return Err(SolveError::DimensionMismatch {
                what: "rhs length",
                expected: n,
                got: self.rhs.len(),
            });
        }
        if let Some(x0) = self.x0 {
            if x0.len() != n {
                return Err(SolveError::DimensionMismatch {
                    what: "initial guess length",
                    expected: n,
                    got: x0.len(),
                });
            }
        }
        let packed =
            matches!(self.operator, Operator::Store(_)) || !matches!(self.store, StorePath::Native);
        if packed && self.precond.needs_matrix() {
            return Err(SolveError::UnsupportedCombination(format!(
                "preconditioner '{}' needs the plain matrix, which a packed \
                 storage path does not carry; use a matrix-free preconditioner \
                 (identity, block Jacobi, or a cast wrapper owning its own copy)",
                self.precond.describe()
            )));
        }
        if let Some(d) = self.qos.deadline {
            if !(d > 0.0) || !d.is_finite() {
                return Err(SolveError::InvalidConfig(format!(
                    "deadline must be a positive, finite number of simulated \
                     seconds; got {d}"
                )));
            }
        }
        if self.qos.degradable && self.precond.needs_matrix() {
            return Err(SolveError::UnsupportedCombination(format!(
                "preconditioner '{}' needs the plain matrix, so the request \
                 cannot ride the precision-degradation ladder (its fp32 store \
                 rung packs the matrix away); drop `degradable` or use a \
                 matrix-free preconditioner",
                self.precond.describe()
            )));
        }
        Ok(())
    }
}

/// The unified driver entry point: every solver in the crate serves a
/// [`SolveRequest`] through this one trait, so call sites pick a
/// driver by *type* and keep a single signature.
///
/// Implemented by [`crate::Gmres`] (single-RHS, routes packed paths
/// through the one-lane block driver), [`crate::BlockGmres`] (k = 1
/// block serve), [`crate::GmresIr`] (two-precision iterative
/// refinement), and [`crate::GmresIr3`] (the three-precision ladder).
/// Exported from `mpgmres::prelude`, so `Driver::serve(&mut ctx, &req)`
/// resolves wherever the prelude is in scope.
///
/// ```
/// use mpgmres::prelude::*;
/// # let mut coo = mpgmres_la::coo::Coo::new(4, 4);
/// # for i in 0..4 { coo.push(i, i, 2.0f64); }
/// # let a = GpuMatrix::new(coo.into_csr());
/// let b = vec![1.0f64; 4];
/// let req = SolveRequest::new(Operator::Matrix(&a), &b);
/// let mut ctx = GpuContext::new(DeviceModel::v100_belos());
/// // Same request, two drivers, one signature.
/// let direct = Gmres::serve(&mut ctx, &req).unwrap();
/// let refined = GmresIr::<f32, f64>::serve(&mut ctx, &req).unwrap();
/// assert!(direct.result.unwrap().status.is_converged());
/// assert!(refined.result.unwrap().status.is_converged());
/// ```
pub trait Solver<'a, S: BackendScalar> {
    /// Serve one request end to end: validate, solve, and wrap the
    /// solution, terminal result, and simulated timings in a
    /// [`SolveOutcome`].
    fn serve(
        ctx: &mut crate::context::GpuContext,
        req: &SolveRequest<'a, '_, S>,
    ) -> Result<SolveOutcome<S>, SolveError>;
}

/// Identifier handed back by [`crate::service::SolverService::submit`];
/// one-shot driver serves always report id 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl core::fmt::Display for RequestId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// How a request left the system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Ran to a terminal solver status (converged or not — inspect
    /// [`SolveOutcome::result`]).
    Completed,
    /// Cancelled before reaching a terminal status (in queue, or at a
    /// cycle barrier mid-solve).
    Cancelled,
    /// The request's [`Qos::deadline`] passed before a terminal status.
    /// Resolved at cycle barriers exactly like cancellation: the
    /// outcome carries the iterate of the last completed barrier and
    /// maps to [`SolveError::DeadlineExceeded`] via
    /// [`SolveOutcome::error`].
    DeadlineExceeded,
}

/// The answer to one [`SolveRequest`].
#[derive(Clone, Debug)]
pub struct SolveOutcome<S> {
    /// The id echoed from submission (0 for one-shot serves).
    pub id: RequestId,
    /// The solution (or, for cancelled requests, the iterate as of the
    /// last completed cycle barrier).
    pub x: Vec<S>,
    /// Terminal solver result; `None` exactly when the request was
    /// cancelled before resolving.
    pub result: Option<SolveResult>,
    /// Completed, cancelled, or expired.
    pub disposition: Disposition,
    /// The precision-ladder rung the service degraded this request to
    /// (`None` when it ran at its submitted configuration). The final
    /// configuration is `degraded.apply(submitted_config)` — and for
    /// the store rungs, the registered fp32 store operand.
    pub degraded: Option<Degradation>,
    /// Simulated seconds spent queued before lane admission.
    pub queued_seconds: f64,
    /// Simulated seconds from lane admission to the terminal barrier.
    pub solve_seconds: f64,
}

impl<S> SolveOutcome<S> {
    /// The typed error a non-completed disposition corresponds to —
    /// `Some(SolveError::DeadlineExceeded)` for an expired request,
    /// `None` for completed and cancelled outcomes (cancellation was
    /// the caller's own doing, not an error).
    pub fn error(&self) -> Option<SolveError> {
        match self.disposition {
            Disposition::DeadlineExceeded => Some(SolveError::DeadlineExceeded { id: self.id }),
            Disposition::Completed | Disposition::Cancelled => None,
        }
    }
}

/// Typed rejection at the request surface. Everything here used to be
/// an `assert!` inside the drivers; the internal invariants those
/// asserts also guarded remain as `debug_assert!`s.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// A buffer length does not match the operand dimension.
    DimensionMismatch {
        /// Which buffer.
        what: &'static str,
        /// The operand dimension it must match.
        expected: usize,
        /// What was handed in.
        got: usize,
    },
    /// The [`GmresConfig`] is out of range (restart length 0, pipeline
    /// depth > 1, non-finite tolerance, ...).
    InvalidConfig(String),
    /// The request combines features that cannot run together (e.g. a
    /// matrix-needing preconditioner over a packed storage path).
    UnsupportedCombination(String),
    /// A [`RequestId`] the service has no record of (already drained,
    /// or never submitted).
    UnknownRequest {
        /// The offending id.
        id: RequestId,
    },
    /// Backpressure: the target group's queue is at
    /// [`ServiceConfig::queue_cap`]. Carries a retry hint derived from
    /// the group's occupancy history — roughly how many service cycles
    /// until the queue has drained a lane's worth of work.
    ///
    /// [`ServiceConfig::queue_cap`]: crate::service::ServiceConfig::queue_cap
    QueueFull {
        /// Requests already waiting in the target group's queue.
        pending: usize,
        /// Estimated [`crate::service::SolverService::step`] calls
        /// until a queue slot frees (always at least 1).
        retry_after_cycles: usize,
    },
    /// The request's [`Qos::deadline`] passed before it reached a
    /// terminal status; the outcome left as
    /// [`Disposition::DeadlineExceeded`] with the last-barrier iterate.
    DeadlineExceeded {
        /// The expired request.
        id: RequestId,
    },
}

impl core::fmt::Display for SolveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SolveError::DimensionMismatch {
                what,
                expected,
                got,
            } => {
                write!(f, "{what} mismatch: expected {expected}, got {got}")
            }
            SolveError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            SolveError::UnsupportedCombination(msg) => {
                write!(f, "unsupported combination: {msg}")
            }
            SolveError::UnknownRequest { id } => write!(f, "unknown request {id}"),
            SolveError::QueueFull {
                pending,
                retry_after_cycles,
            } => write!(
                f,
                "queue full ({pending} pending); retry after ~{retry_after_cycles} cycles"
            ),
            SolveError::DeadlineExceeded { id } => {
                write!(f, "request {id} exceeded its deadline")
            }
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::block_jacobi::BlockJacobi;
    use mpgmres_la::coo::Coo;
    use mpgmres_scalar::Precision;

    fn laplace1d(n: usize) -> GpuMatrix<f64> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        GpuMatrix::new(coo.into_csr())
    }

    #[test]
    fn validate_catches_dimension_mismatches() {
        let a = laplace1d(8);
        let b = vec![1.0f64; 7];
        let err = SolveRequest::new(Operator::Matrix(&a), &b)
            .validate()
            .unwrap_err();
        assert_eq!(
            err,
            SolveError::DimensionMismatch {
                what: "rhs length",
                expected: 8,
                got: 7
            }
        );
        let b = vec![1.0f64; 8];
        let x0 = vec![0.0f64; 9];
        let err = SolveRequest::new(Operator::Matrix(&a), &b)
            .with_x0(&x0)
            .validate()
            .unwrap_err();
        assert!(matches!(err, SolveError::DimensionMismatch { .. }));
    }

    #[test]
    fn validate_catches_bad_config() {
        let a = laplace1d(8);
        let b = vec![1.0f64; 8];
        let cfg = GmresConfig {
            m: 0,
            ..GmresConfig::default()
        };
        let err = SolveRequest::new(Operator::Matrix(&a), &b)
            .with_config(cfg)
            .validate()
            .unwrap_err();
        assert!(matches!(err, SolveError::InvalidConfig(_)));
        let cfg = GmresConfig {
            pipeline_depth: 2,
            ..GmresConfig::default()
        };
        let err = SolveRequest::new(Operator::Matrix(&a), &b)
            .with_config(cfg)
            .validate()
            .unwrap_err();
        assert!(matches!(err, SolveError::InvalidConfig(_)));
    }

    #[test]
    fn matrix_needing_preconditioner_rejected_on_packed_paths() {
        let a = laplace1d(8);
        let bj = BlockJacobi::build(&a, 2);
        let cheb =
            crate::precond::chebyshev::ChebyshevPreconditioner::with_bounds(4, 0.1, 4.0).unwrap();
        let b = vec![1.0f64; 8];
        // Block Jacobi never touches A at apply time: fine on a shadow path.
        assert!(SolveRequest::new(Operator::Matrix(&a), &b)
            .with_store(StorePath::Shadow(Precision::Fp32))
            .with_precond(&bj)
            .validate()
            .is_ok());
        // Chebyshev streams SpMVs against the plain matrix: rejected.
        let err = SolveRequest::new(Operator::Matrix(&a), &b)
            .with_store(StorePath::Shadow(Precision::Fp32))
            .with_precond(&cheb)
            .validate()
            .unwrap_err();
        assert!(matches!(err, SolveError::UnsupportedCombination(_)));
    }

    #[test]
    fn errors_display() {
        let msgs = [
            SolveError::DimensionMismatch {
                what: "rhs length",
                expected: 4,
                got: 3,
            }
            .to_string(),
            SolveError::InvalidConfig("m = 0".into()).to_string(),
            SolveError::UnsupportedCombination("x".into()).to_string(),
            SolveError::UnknownRequest { id: RequestId(7) }.to_string(),
            SolveError::QueueFull {
                pending: 9,
                retry_after_cycles: 3,
            }
            .to_string(),
            SolveError::DeadlineExceeded { id: RequestId(8) }.to_string(),
        ];
        assert!(msgs[0].contains("expected 4"));
        assert!(msgs[3].contains("req#7"));
        assert!(msgs[4].contains("9 pending") && msgs[4].contains('3'));
        assert!(msgs[5].contains("req#8") && msgs[5].contains("deadline"));
    }

    #[test]
    fn default_qos_is_backward_compatible() {
        let q = Qos::default();
        assert_eq!(q.priority, 0);
        assert_eq!(q.deadline, None);
        assert!(!q.degradable);
        let a = laplace1d(8);
        let b = vec![1.0f64; 8];
        let req = SolveRequest::new(Operator::Matrix(&a), &b);
        assert_eq!(req.qos, Qos::default());
        assert!(req.validate().is_ok());
    }

    #[test]
    fn qos_builders_compose() {
        let a = laplace1d(8);
        let b = vec![1.0f64; 8];
        let req = SolveRequest::new(Operator::Matrix(&a), &b)
            .with_priority(7)
            .with_deadline(0.25)
            .with_degradable(true);
        assert_eq!(req.qos.priority, 7);
        assert_eq!(req.qos.deadline, Some(0.25));
        assert!(req.qos.degradable);
        assert!(req.validate().is_ok());
    }

    #[test]
    fn validate_rejects_nonpositive_or_nonfinite_deadlines() {
        let a = laplace1d(8);
        let b = vec![1.0f64; 8];
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = SolveRequest::new(Operator::Matrix(&a), &b)
                .with_deadline(bad)
                .validate()
                .unwrap_err();
            assert!(matches!(err, SolveError::InvalidConfig(_)), "{bad}");
        }
    }

    #[test]
    fn validate_rejects_degradable_with_matrix_bound_preconditioner() {
        let a = laplace1d(8);
        let b = vec![1.0f64; 8];
        let cheb =
            crate::precond::chebyshev::ChebyshevPreconditioner::with_bounds(4, 0.1, 4.0).unwrap();
        let err = SolveRequest::new(Operator::Matrix(&a), &b)
            .with_precond(&cheb)
            .with_degradable(true)
            .validate()
            .unwrap_err();
        assert!(matches!(err, SolveError::UnsupportedCombination(_)));
        // Matrix-free preconditioners stay degradable.
        let bj = BlockJacobi::build(&a, 2);
        assert!(SolveRequest::new(Operator::Matrix(&a), &b)
            .with_precond(&bj)
            .with_degradable(true)
            .validate()
            .is_ok());
    }

    #[test]
    fn degradation_rungs_compose_and_apply() {
        use crate::config::BasisPolicy;
        let cfg = GmresConfig::default().with_rtol(1e-8);
        let store_cfg = Degradation::Fp32Store.apply(cfg);
        assert_eq!(store_cfg.basis, BasisPolicy::Native);
        let basis_cfg = Degradation::Fp32Basis.apply(cfg);
        assert_eq!(basis_cfg.basis, BasisPolicy::Compressed(Precision::Fp32));
        assert!(basis_cfg.loa_factor >= 1e8);
        assert_eq!(
            Degradation::Fp32Store.combined_with(Degradation::Fp32Basis),
            Degradation::Fp32StoreAndBasis
        );
        assert_eq!(Degradation::Fp32StoreAndBasis.label(), "fp32-store+basis");
    }
}
