//! The long-running lane engine: a [`BlockGmres`] whose `k` lane slots
//! are re-seeded mid-flight. Batch solves run init → cycle → ... →
//! done over a fixed set of right-hand sides; the engine instead keeps
//! the lockstep cycle machinery alive indefinitely, admitting pending
//! requests into slots vacated by deflation at cycle barriers.
//!
//! Parity: an admitted lane runs exactly the arithmetic of the same
//! column in a batch [`BlockGmres::solve`] — admission records the same
//! residual + norm ops as batch init (its own [`region`] so replay keys
//! never collide), re-seeding swaps in a fresh lane state, and cycles
//! run through the very same [`BlockGmres::run_cycle`] the batch driver
//! uses. Since every batch column is bit-identical to an independent
//! [`crate::Gmres`] solve, so is every served request.
//!
//! [`region`]: crate::stream::region::BLOCK_ADMIT

use mpgmres_backend::BackendScalar;
use mpgmres_la::multivec::MultiVec;

use crate::block_gmres::{pipe_disc, BlockGmres, Lane, LockstepWs};
use crate::config::SchedulerPolicy;
use crate::context::GpuContext;
use crate::service::request::{Degradation, Disposition, RequestId, SolveOutcome};
use crate::service::{wait_bucket, BufferPool};
use crate::status::SolveResult;

/// One queued request: payload copied out of the caller's borrow at
/// submission, plus the stopping parameters that stay per-lane.
pub(crate) struct Queued<S> {
    pub(crate) id: RequestId,
    pub(crate) rhs: Vec<S>,
    pub(crate) x0: Vec<S>,
    pub(crate) rtol: f64,
    pub(crate) max_iters: usize,
    /// Simulated seconds at submission.
    pub(crate) submitted: f64,
    /// Scheduling weight; larger admits sooner under `Priority`.
    pub(crate) priority: i32,
    /// Absolute simulated-seconds deadline (`INFINITY` when none).
    pub(crate) deadline_at: f64,
    /// May this request be re-routed down the precision ladder?
    pub(crate) degradable: bool,
    /// Cycle barriers spent waiting in the current group's queue.
    pub(crate) waited: usize,
    /// Ladder rung applied so far, if the request was re-routed.
    pub(crate) degraded: Option<Degradation>,
}

/// Book-keeping for one occupied lane slot.
struct Slot {
    id: RequestId,
    submitted: f64,
    admitted: f64,
    cancelled: bool,
    deadline_at: f64,
    degraded: Option<Degradation>,
}

/// A continuously running [`BlockGmres`] lane group serving one
/// compatible family of requests (same operand, preconditioner,
/// restart/orthogonalization configuration, and tenant; tolerances and
/// iteration caps vary per lane).
pub(crate) struct LaneEngine<'a, S: BackendScalar> {
    solver: BlockGmres<'a, S>,
    tenant: u32,
    b: MultiVec<S>,
    x: MultiVec<S>,
    ws: LockstepWs<S>,
    lanes: Vec<Lane<S>>,
    results: Vec<Option<SolveResult>>,
    slots: Vec<Option<Slot>>,
    cycles: usize,
    lane_cycles: usize,
    admissions: usize,
}

impl<'a, S: BackendScalar> LaneEngine<'a, S> {
    /// An idle engine with `k` vacant lane slots.
    pub(crate) fn new(solver: BlockGmres<'a, S>, k: usize, tenant: u32) -> Self {
        let n = solver.n();
        let m = solver.config().m;
        let lanes: Vec<Lane<S>> = (0..k).map(|_| solver.free_lane()).collect();
        LaneEngine {
            b: MultiVec::zeros(n, k),
            x: MultiVec::zeros(n, k),
            ws: LockstepWs::new(n, k, m),
            lanes,
            results: (0..k).map(|_| None).collect(),
            slots: (0..k).map(|_| None).collect(),
            solver,
            tenant,
            cycles: 0,
            lane_cycles: 0,
            admissions: 0,
        }
    }

    /// Currently occupied lane slots.
    pub(crate) fn occupied(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// No lanes in flight.
    pub(crate) fn is_idle(&self) -> bool {
        self.occupied() == 0
    }

    /// Cycles run / occupied-lane-cycle pairs / admission barriers.
    pub(crate) fn counters(&self) -> (usize, usize, usize) {
        (self.cycles, self.lane_cycles, self.admissions)
    }

    /// Flag an in-flight request for cancellation; takes effect at the
    /// next cycle barrier. Returns whether the id occupies a slot.
    pub(crate) fn cancel(&mut self, id: RequestId) -> bool {
        for slot in self.slots.iter_mut().flatten() {
            if slot.id == id {
                slot.cancelled = true;
                return true;
            }
        }
        false
    }

    /// Admit as many queued requests as there are vacant slots (capped
    /// by `max_admit` under fair-share budgeting): one recorded
    /// admission region for the whole batch, then per-slot lane
    /// re-seeding. Requests that resolve at the admission barrier
    /// itself (zero right-hand side, non-finite data, `rtol >= 1`)
    /// produce their outcome immediately.
    ///
    /// The `policy` decides *which* queued requests fill the vacancies;
    /// it never touches the arithmetic. The selected batch keeps queue
    /// order, and the replay discriminator depends only on the lane
    /// count and tenant, so every policy records the same region keys
    /// and warm admissions replay with zero new graph nodes.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn admit_from(
        &mut self,
        ctx: &mut GpuContext,
        queue: &mut Vec<Queued<S>>,
        outcomes: &mut Vec<SolveOutcome<S>>,
        pool: &mut BufferPool<S>,
        policy: SchedulerPolicy,
        max_admit: usize,
        wait_hist: &mut [usize; 8],
    ) {
        let free: Vec<usize> = (0..self.slots.len())
            .filter(|&l| self.slots[l].is_none())
            .collect();
        let take = free.len().min(queue.len()).min(max_admit);
        if take == 0 {
            return;
        }
        let admit = &free[..take];
        let batch: Vec<Queued<S>> = Self::pick(queue, policy, take);
        for (&slot, q) in admit.iter().zip(&batch) {
            self.b.col_mut(slot).copy_from_slice(&q.rhs);
            self.x.col_mut(slot).copy_from_slice(&q.x0);
        }
        // Epoch boundary: everything charged before this mark belongs
        // to earlier admissions.
        ctx.mark_epoch();
        let disc = pipe_disc(self.slots.len(), [self.tenant as u64, 0]);
        self.solver
            .admit_lanes(ctx, &self.b, &self.x, &mut self.ws, admit, disc);
        let now = ctx.elapsed();
        for (&slot, q) in admit.iter().zip(batch) {
            let terminal = self.solver.reseed_lane(
                &mut self.lanes[slot],
                self.ws.norms[slot],
                q.rtol,
                q.max_iters,
            );
            wait_hist[wait_bucket(q.waited)] += 1;
            self.results[slot] = None;
            self.slots[slot] = Some(Slot {
                id: q.id,
                submitted: q.submitted,
                admitted: now,
                cancelled: false,
                deadline_at: q.deadline_at,
                degraded: q.degraded,
            });
            // The payload lives in the lane columns now; the carrier
            // buffers go back to the pool for the next submission.
            pool.give(q.rhs);
            pool.give(q.x0);
            if let Some(res) = terminal {
                self.results[slot] = Some(res);
                self.finish(slot, outcomes, Disposition::Completed, now, pool);
            }
        }
        self.admissions += 1;
    }

    /// Remove the top `take` requests under `policy` from `queue`,
    /// preserving arrival order within the selected batch (selection
    /// decides *membership*, not slot mapping — ties fall back to
    /// arrival order via the stable sort).
    fn pick(queue: &mut Vec<Queued<S>>, policy: SchedulerPolicy, take: usize) -> Vec<Queued<S>> {
        if take >= queue.len() {
            return core::mem::take(queue);
        }
        let mut order: Vec<usize> = (0..queue.len()).collect();
        match policy {
            // FIFO semantics: fair-share shapes *how many* admit per
            // tenant, not their order.
            SchedulerPolicy::Fifo | SchedulerPolicy::TenantFairShare => {}
            SchedulerPolicy::Priority => {
                order.sort_by_key(|&i| core::cmp::Reverse(queue[i].priority));
            }
            SchedulerPolicy::EarliestDeadlineFirst => {
                order.sort_by(|&i, &j| queue[i].deadline_at.total_cmp(&queue[j].deadline_at));
            }
        }
        let mut selected = vec![false; queue.len()];
        for &i in &order[..take] {
            selected[i] = true;
        }
        let mut batch = Vec::with_capacity(take);
        let mut rest = Vec::with_capacity(queue.len() - take);
        for (i, q) in queue.drain(..).enumerate() {
            if selected[i] {
                batch.push(q);
            } else {
                rest.push(q);
            }
        }
        *queue = rest;
        batch
    }

    /// Run one lockstep cycle over the occupied slots. Cancellations
    /// and deadline expiries take effect first (the request leaves with
    /// the iterate of the last completed barrier); newly terminal lanes
    /// produce outcomes and vacate their slots.
    pub(crate) fn step(
        &mut self,
        ctx: &mut GpuContext,
        outcomes: &mut Vec<SolveOutcome<S>>,
        pool: &mut BufferPool<S>,
    ) {
        let now = ctx.elapsed();
        for l in 0..self.slots.len() {
            let Some(s) = self.slots[l].as_ref() else {
                continue;
            };
            if s.cancelled {
                self.finish(l, outcomes, Disposition::Cancelled, now, pool);
            } else if s.deadline_at <= now {
                self.finish(l, outcomes, Disposition::DeadlineExceeded, now, pool);
            }
        }
        let slots = &self.slots;
        let cycle = self
            .solver
            .collect_cycle_eligible(&mut self.lanes, &mut self.results, |l| slots[l].is_some());
        // Collection can resolve lanes terminal at the barrier (caps,
        // lucky breakdowns) without running another cycle.
        for l in 0..self.slots.len() {
            if self.slots[l].is_some() && self.results[l].is_some() {
                self.finish(l, outcomes, Disposition::Completed, now, pool);
            }
        }
        if cycle.is_empty() {
            return;
        }
        self.solver.run_cycle(
            ctx,
            &mut self.lanes,
            &mut self.results,
            &mut self.ws,
            &self.b,
            &mut self.x,
            &cycle,
        );
        self.cycles += 1;
        self.lane_cycles += cycle.len();
        let now = ctx.elapsed();
        for &l in &cycle {
            if self.slots[l].is_some() && self.results[l].is_some() {
                self.finish(l, outcomes, Disposition::Completed, now, pool);
            }
        }
    }

    /// Vacate `slot` into an outcome. The lane keeps its basis
    /// allocation — `reseed_lane` swaps it into the next occupant, so
    /// warm slots admit without reallocating — and the outcome's
    /// solution rides a pooled buffer, so warm serving allocates
    /// nothing per request.
    fn finish(
        &mut self,
        slot: usize,
        outcomes: &mut Vec<SolveOutcome<S>>,
        disposition: Disposition,
        now: f64,
        pool: &mut BufferPool<S>,
    ) {
        let s = self.slots[slot].take().expect("slot occupied");
        let result = self.results[slot].take();
        debug_assert!(result.is_some() || disposition != Disposition::Completed);
        let col = self.x.col(slot);
        let mut x = pool.take(col.len());
        x.extend_from_slice(col);
        outcomes.push(SolveOutcome {
            id: s.id,
            x,
            result,
            disposition,
            degraded: s.degraded,
            queued_seconds: s.admitted - s.submitted,
            solve_seconds: now - s.admitted,
        });
    }
}
