//! Solve-as-a-service: continuous lane admission behind the unified
//! [`SolveRequest`] API.
//!
//! ```text
//!   submit() ──► per-group request queue
//!                      │  admission (at cycle barriers, into
//!                      ▼   lanes vacated by deflation)
//!                ┌───────────────────────────────┐
//!                │ LaneEngine: BlockGmres lanes  │──► SolveOutcome
//!                │ cycle ► barrier ► admit ► ... │    (drain_outcomes)
//!                └───────────────────────────────┘
//! ```
//!
//! A [`SolverService`] keeps one lane engine per *group* of
//! compatible requests — same operand, preconditioner, tenant, and
//! cycle-shaping configuration (restart length, orthogonalization,
//! pipeline depth, monitoring flags). Within a group, per-request
//! tolerances and iteration caps ride the individual lanes: stopping
//! parameters steer decisions, never arithmetic, so mixed-tolerance
//! lanes keep the bit-parity contract. Requests from different tenants
//! never share a group, and the admission regions fold the tenant into
//! their replay keys, so cached op graphs stay per-tenant.
//!
//! Every completed request is bit-identical to an independent
//! [`crate::Gmres`] solve with the same configuration — the service
//! adds scheduling, not arithmetic. Cancellations take effect at cycle
//! barriers and return the iterate of the last completed barrier.

pub(crate) mod engine;
mod request;

pub use request::{
    Degradation, Disposition, Operator, Qos, RequestId, SolveError, SolveOutcome, SolveRequest,
    Solver,
};

use mpgmres_backend::BackendScalar;

use crate::block_gmres::BlockGmres;
use crate::config::{BasisPolicy, GmresConfig, OrthoMethod, SchedulerPolicy, StorePath};
use crate::context::{GpuContext, GpuMatrix, GpuStore};
use crate::precond::Preconditioner;
use engine::{LaneEngine, Queued};

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Lane slots per engine group — the `k` of the underlying
    /// [`BlockGmres`]. Offered load beyond this queues until deflation
    /// vacates a lane. Under [`SchedulerPolicy::TenantFairShare`] the
    /// same number doubles as the shared lane budget split across
    /// tenants with outstanding work.
    pub lanes: usize,
    /// Evict an engine group after this many consecutive
    /// [`SolverService::step`] calls with an empty queue and no lane in
    /// flight (`0` = never evict). Evicted groups free their lane
    /// workspaces; a later submission with the same key transparently
    /// rebuilds the group (cold admission, identical arithmetic).
    pub idle_evict_cycles: usize,
    /// How the pending queue is ordered and which requests fill
    /// deflation-vacated lanes at cycle barriers. Scheduling only:
    /// every policy records identical admission regions and leaves the
    /// per-request arithmetic untouched.
    pub scheduler: SchedulerPolicy,
    /// Per-group queue depth bound (`0` = unbounded). A submission to a
    /// full queue is shed with [`SolveError::QueueFull`] carrying a
    /// retry-after-cycles hint derived from the group's occupancy.
    pub queue_cap: usize,
    /// Degrade horizon: once a [`Qos::degradable`] request has waited
    /// this many cycle barriers in its group's queue, it re-routes to
    /// the next cheaper group on the precision ladder (`0` = never
    /// degrade). See [`SolverService::register_degraded_store`].
    pub degrade_after_cycles: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            lanes: 8,
            idle_evict_cycles: 64,
            scheduler: SchedulerPolicy::Fifo,
            queue_cap: 0,
            degrade_after_cycles: 0,
        }
    }
}

impl ServiceConfig {
    /// Builder-style lane count.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(lanes >= 1, "a lane group needs at least one lane");
        self.lanes = lanes;
        self
    }

    /// Builder-style idle-eviction horizon (`0` disables eviction).
    pub fn with_idle_evict_cycles(mut self, cycles: usize) -> Self {
        self.idle_evict_cycles = cycles;
        self
    }

    /// Builder-style admission scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Builder-style queue depth bound (`0` = unbounded).
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Builder-style degrade horizon (`0` disables degradation).
    pub fn with_degrade_after_cycles(mut self, cycles: usize) -> Self {
        self.degrade_after_cycles = cycles;
        self
    }
}

/// Power-of-two wait-histogram bucket for `waited` queue barriers:
/// `[0, 1, 2–3, 4–7, 8–15, 16–31, 32–63, 64+]`.
pub(crate) fn wait_bucket(waited: usize) -> usize {
    ((usize::BITS - waited.leading_zeros()) as usize).min(7)
}

/// Free-list of payload carriers. `submit` fills a pooled buffer
/// instead of `to_vec`-ing the caller's slices, lane admission returns
/// the carrier once the payload lives in the lane columns, and outcome
/// solutions ride pooled buffers that [`SolverService::recycle`] puts
/// back. After warm-up (steady request size), serving allocates
/// nothing per request — pinned by [`ServiceStats::payload_allocs`].
pub(crate) struct BufferPool<S> {
    free: Vec<Vec<S>>,
    allocs: usize,
}

impl<S> BufferPool<S> {
    fn new() -> Self {
        BufferPool {
            free: Vec::new(),
            allocs: 0,
        }
    }

    /// An empty buffer with capacity for `n` elements. Counts an
    /// allocation whenever the free list cannot supply the capacity.
    pub(crate) fn take(&mut self, n: usize) -> Vec<S> {
        let mut v = self.free.pop().unwrap_or_default();
        v.clear();
        if v.capacity() < n {
            self.allocs += 1;
            v.reserve(n);
        }
        v
    }

    /// Return a buffer to the free list (contents discarded).
    pub(crate) fn give(&mut self, mut v: Vec<S>) {
        v.clear();
        self.free.push(v);
    }
}

/// Groups requests that can share one lane engine: operand and
/// preconditioner identity, tenant, and every configuration field that
/// shapes the lockstep cycle. Tolerances and iteration caps are
/// per-lane and deliberately absent.
#[derive(Clone, Copy, PartialEq, Eq)]
struct GroupKey {
    op_addr: usize,
    op_tag: u8,
    precond_addr: usize,
    tenant: u32,
    m: usize,
    ortho: OrthoMethod,
    monitor_implicit: bool,
    loa_bits: u64,
    record_history: bool,
    pipeline_depth: usize,
    /// Basis storage policy: lanes of one engine share their cycle's
    /// recorded regions (and reseeded slots inherit the previous
    /// occupant's basis allocation), so requests over different basis
    /// paths must land in different groups.
    basis: crate::config::BasisPolicy,
}

struct Group<'a, S: BackendScalar> {
    key: GroupKey,
    queue: Vec<Queued<S>>,
    engine: LaneEngine<'a, S>,
    /// Consecutive `step` calls this group spent with an empty queue
    /// and no lane in flight; reset by any submission or activity.
    idle_steps: usize,
    /// The operand this group solves over — kept so degradable
    /// requests can be re-keyed onto a cheaper group.
    op: Operator<'a, S>,
    precond: &'a dyn Preconditioner<S>,
    /// Cycle-shaping configuration of the request that created the
    /// group (per-request `rtol`/`max_iters` ride the lanes instead).
    cfg: GmresConfig,
    /// Requests this group ran to completion (feeds the
    /// [`SolveError::QueueFull`] retry hint).
    served: usize,
}

/// Aggregate service counters; see [`SolverService::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted by [`SolverService::submit`].
    pub submitted: usize,
    /// Requests that ran to a terminal solver status.
    pub completed: usize,
    /// Requests cancelled (queued or mid-flight).
    pub cancelled: usize,
    /// Lockstep cycles run across all engine groups.
    pub cycles: usize,
    /// Occupied-lane ⨯ cycle pairs (the occupancy numerator).
    pub lane_cycles: usize,
    /// Admission barriers taken.
    pub admissions: usize,
    /// Engine groups currently live.
    pub groups: usize,
    /// Idle engine groups evicted over the service lifetime.
    pub evicted_groups: usize,
    /// Payload buffers freshly allocated (pool misses). Flat across
    /// warm serving rounds of steady request size.
    pub payload_allocs: usize,
    /// Lane slots per group.
    pub lanes_per_group: usize,
    /// Requests that ran past their deadline (queued or in flight);
    /// resolved at cycle barriers like cancellations.
    pub deadline_misses: usize,
    /// Requests re-routed down the precision ladder.
    pub degradations: usize,
    /// Submissions shed with [`SolveError::QueueFull`].
    pub sheds: usize,
    /// Queue-wait histogram over power-of-two barrier buckets
    /// `[0, 1, 2–3, 4–7, 8–15, 16–31, 32–63, 64+]`, recorded whenever
    /// a request leaves a queue (admission, cancellation, expiry).
    pub wait_hist: [usize; 8],
}

impl ServiceStats {
    /// Mean fraction of lane slots doing work per cycle, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        let denom = self.cycles * self.lanes_per_group;
        if denom == 0 {
            0.0
        } else {
            self.lane_cycles as f64 / denom as f64
        }
    }
}

/// A long-running multi-tenant solver front end over continuously
/// re-seeded [`BlockGmres`] lane engines.
///
/// Lifecycle: [`submit`](SolverService::submit) requests (payload is
/// copied; operand and preconditioner borrows must outlive the
/// service), drive with [`step`](SolverService::step) or
/// [`run_until_idle`](SolverService::run_until_idle), collect with
/// [`drain_outcomes`](SolverService::drain_outcomes).
pub struct SolverService<'a, S: BackendScalar> {
    cfg: ServiceConfig,
    groups: Vec<Group<'a, S>>,
    next_id: u64,
    outcomes: Vec<SolveOutcome<S>>,
    pool: BufferPool<S>,
    submitted: usize,
    completed: usize,
    cancelled: usize,
    evicted_groups: usize,
    /// Counters carried over from evicted groups so `stats` stays
    /// monotone across evictions.
    retired: (usize, usize, usize),
    /// Per-tenant lane-cycles retired with evicted groups, so
    /// [`tenant_occupancy`](SolverService::tenant_occupancy) stays
    /// monotone too.
    tenant_retired: Vec<(u32, usize)>,
    deadline_misses: usize,
    degradations: usize,
    sheds: usize,
    wait_hist: [usize; 8],
    /// Precision-ladder registry: matrix identity → the cheaper packed
    /// store degradable requests re-route onto.
    ladder: Vec<(usize, &'a GpuStore<S>)>,
}

impl<'a, S: BackendScalar> SolverService<'a, S> {
    /// An empty service.
    pub fn new(cfg: ServiceConfig) -> Self {
        SolverService {
            cfg,
            groups: Vec::new(),
            next_id: 0,
            outcomes: Vec::new(),
            pool: BufferPool::new(),
            submitted: 0,
            completed: 0,
            cancelled: 0,
            evicted_groups: 0,
            retired: (0, 0, 0),
            tenant_retired: Vec::new(),
            deadline_misses: 0,
            degradations: 0,
            sheds: 0,
            wait_hist: [0; 8],
            ladder: Vec::new(),
        }
    }

    /// Register a cheaper packed store (typically
    /// [`GpuStore::shadow_of`] at fp32) as the precision-ladder target
    /// for `a`: [`Qos::degradable`] requests over `a` whose queue wait
    /// exceeds [`ServiceConfig::degrade_after_cycles`] re-route to a
    /// group solving over `store` instead. Registering again for the
    /// same matrix replaces the entry.
    pub fn register_degraded_store(&mut self, a: &'a GpuMatrix<S>, store: &'a GpuStore<S>) {
        assert_eq!(
            a.n(),
            store.n(),
            "ladder store must match the operand dimension"
        );
        let addr = a as *const GpuMatrix<S> as usize;
        match self.ladder.iter_mut().find(|(m, _)| *m == addr) {
            Some(e) => e.1 = store,
            None => self.ladder.push((addr, store)),
        }
    }

    /// Enqueue a request. Validation happens here — a rejected request
    /// never enters a queue. The context is only read (for the
    /// submission timestamp).
    pub fn submit(
        &mut self,
        ctx: &GpuContext,
        req: &SolveRequest<'a, '_, S>,
    ) -> Result<RequestId, SolveError> {
        req.validate()?;
        if !matches!(req.store, StorePath::Native) {
            return Err(SolveError::UnsupportedCombination(
                "the service keeps operands alive across requests: build a \
                 GpuStore up front and submit it as Operator::Store instead \
                 of asking for a StorePath conversion"
                    .into(),
            ));
        }
        let gi = self.group_for(req.operator, req.precond, req.tenant, req.config)?;
        if self.cfg.queue_cap > 0 && self.groups[gi].queue.len() >= self.cfg.queue_cap {
            self.sheds += 1;
            let g = &self.groups[gi];
            // Retry hint: pending depth times the observed cycles per
            // completed solve, spread over the group's lanes.
            let (_, lane_cycles, _) = g.engine.counters();
            let per_solve = lane_cycles
                .checked_div(g.served)
                .map_or(1, |c| c.max(1));
            let retry_after_cycles = (g.queue.len() * per_solve)
                .div_ceil(self.cfg.lanes.max(1))
                .max(1);
            return Err(SolveError::QueueFull {
                pending: g.queue.len(),
                retry_after_cycles,
            });
        }
        self.next_id += 1;
        let id = RequestId(self.next_id);
        let n = req.operator.n();
        // Payloads ride pooled carriers: no fresh allocation once the
        // pool is warm at this request size.
        let mut rhs = self.pool.take(n);
        rhs.extend_from_slice(req.rhs);
        let mut x0 = self.pool.take(n);
        match req.x0 {
            Some(x) => x0.extend_from_slice(x),
            None => x0.resize(n, S::zero()),
        }
        let deadline_at = match req.qos.deadline {
            Some(d) => ctx.elapsed() + d,
            None => f64::INFINITY,
        };
        self.groups[gi].idle_steps = 0;
        self.groups[gi].queue.push(Queued {
            id,
            rhs,
            x0,
            rtol: req.config.rtol,
            max_iters: req.config.max_iters,
            submitted: ctx.elapsed(),
            priority: req.qos.priority,
            deadline_at,
            degradable: req.qos.degradable,
            waited: 0,
            degraded: None,
        });
        self.submitted += 1;
        Ok(id)
    }

    /// Find or create the lane-engine group for `(operator, precond,
    /// tenant, cfg)`. Engine construction errors surface here, before
    /// any request is queued.
    fn group_for(
        &mut self,
        operator: Operator<'a, S>,
        precond: &'a dyn Preconditioner<S>,
        tenant: u32,
        cfg: GmresConfig,
    ) -> Result<usize, SolveError> {
        let key = GroupKey {
            op_addr: operator.addr(),
            op_tag: operator.tag_code(),
            precond_addr: precond as *const _ as *const () as usize,
            tenant,
            m: cfg.m,
            ortho: cfg.ortho,
            monitor_implicit: cfg.monitor_implicit,
            loa_bits: cfg.loa_factor.to_bits(),
            record_history: cfg.record_history,
            pipeline_depth: cfg.pipeline_depth,
            basis: cfg.basis,
        };
        if let Some(i) = self.groups.iter().position(|g| g.key == key) {
            return Ok(i);
        }
        let solver = match operator {
            Operator::Matrix(a) => BlockGmres::try_new(a, precond, cfg)?,
            Operator::Store(s) => BlockGmres::try_over_store(s, precond, cfg)?,
        };
        self.groups.push(Group {
            key,
            queue: Vec::new(),
            engine: LaneEngine::new(solver, self.cfg.lanes, tenant),
            idle_steps: 0,
            op: operator,
            precond,
            cfg,
            served: 0,
        });
        Ok(self.groups.len() - 1)
    }

    /// Cancel a request. Queued requests leave immediately (outcome
    /// carries the untouched initial guess); in-flight requests leave
    /// at the next cycle barrier with the iterate of the last completed
    /// barrier. [`SolveError::UnknownRequest`] if the id is neither
    /// queued nor in flight (e.g. already completed).
    pub fn cancel(&mut self, ctx: &GpuContext, id: RequestId) -> Result<(), SolveError> {
        for g in &mut self.groups {
            if let Some(pos) = g.queue.iter().position(|q| q.id == id) {
                let q = g.queue.remove(pos);
                self.wait_hist[wait_bucket(q.waited)] += 1;
                // Both pooled carriers return immediately; the outcome
                // rides a pooled buffer carrying the initial guess.
                // The rhs carrier goes back first so the outcome can
                // reuse it — a submit-then-cancel wave is allocation-
                // free once the pool is warm.
                self.pool.give(q.rhs);
                let mut x = self.pool.take(q.x0.len());
                x.extend_from_slice(&q.x0);
                self.pool.give(q.x0);
                self.outcomes.push(SolveOutcome {
                    id,
                    x,
                    result: None,
                    disposition: Disposition::Cancelled,
                    degraded: q.degraded,
                    queued_seconds: ctx.elapsed() - q.submitted,
                    solve_seconds: 0.0,
                });
                self.cancelled += 1;
                return Ok(());
            }
            if g.engine.cancel(id) {
                return Ok(());
            }
        }
        Err(SolveError::UnknownRequest { id })
    }

    /// One scheduling round: resolve queued deadline expiries, re-route
    /// over-waited degradable requests down the precision ladder, then
    /// per group admit pending requests into vacant lanes (ordered by
    /// [`ServiceConfig::scheduler`]) and run one lockstep cycle. Groups
    /// that stay idle for [`ServiceConfig::idle_evict_cycles`]
    /// consecutive steps are evicted (their lane workspaces freed); a
    /// later submission with the same key rebuilds them. Returns how
    /// many outcomes this step produced.
    pub fn step(&mut self, ctx: &mut GpuContext) -> usize {
        let before = self.outcomes.len();
        self.expire_queued(ctx);
        self.degrade_overwaited();
        let fair_cap = self.fair_share_cap();
        for gi in 0..self.groups.len() {
            let max_admit = match fair_cap {
                None => usize::MAX,
                Some(cap) => {
                    let t = self.groups[gi].key.tenant;
                    let occupied: usize = self
                        .groups
                        .iter()
                        .filter(|g| g.key.tenant == t)
                        .map(|g| g.engine.occupied())
                        .sum();
                    cap.saturating_sub(occupied)
                }
            };
            let done_before = self.outcomes.len();
            let g = &mut self.groups[gi];
            g.engine.admit_from(
                ctx,
                &mut g.queue,
                &mut self.outcomes,
                &mut self.pool,
                self.cfg.scheduler,
                max_admit,
                &mut self.wait_hist,
            );
            if !g.engine.is_idle() {
                g.engine.step(ctx, &mut self.outcomes, &mut self.pool);
            }
            g.served += self.outcomes[done_before..]
                .iter()
                .filter(|o| o.disposition == Disposition::Completed)
                .count();
            // Requests still queued have waited one more barrier.
            for q in &mut g.queue {
                q.waited += 1;
            }
            if g.queue.is_empty() && g.engine.is_idle() {
                g.idle_steps += 1;
            } else {
                g.idle_steps = 0;
            }
        }
        let horizon = self.cfg.idle_evict_cycles;
        if horizon > 0 {
            let retired = &mut self.retired;
            let tenant_retired = &mut self.tenant_retired;
            let evicted = &mut self.evicted_groups;
            self.groups.retain(|g| {
                if g.idle_steps < horizon {
                    return true;
                }
                let (cycles, lane_cycles, admissions) = g.engine.counters();
                retired.0 += cycles;
                retired.1 += lane_cycles;
                retired.2 += admissions;
                match tenant_retired.iter_mut().find(|(t, _)| *t == g.key.tenant) {
                    Some(e) => e.1 += lane_cycles,
                    None => tenant_retired.push((g.key.tenant, lane_cycles)),
                }
                *evicted += 1;
                false
            });
        }
        for o in &self.outcomes[before..] {
            match o.disposition {
                Disposition::Completed => self.completed += 1,
                Disposition::Cancelled => self.cancelled += 1,
                Disposition::DeadlineExceeded => self.deadline_misses += 1,
            }
        }
        self.outcomes.len() - before
    }

    /// Resolve queued requests whose deadline has passed: like a
    /// cancellation, the outcome carries the untouched initial guess
    /// and both payload carriers return to the pool.
    fn expire_queued(&mut self, ctx: &GpuContext) {
        let now = ctx.elapsed();
        for g in &mut self.groups {
            let mut i = 0;
            while i < g.queue.len() {
                if g.queue[i].deadline_at > now {
                    i += 1;
                    continue;
                }
                let q = g.queue.remove(i);
                self.wait_hist[wait_bucket(q.waited)] += 1;
                self.pool.give(q.rhs);
                let mut x = self.pool.take(q.x0.len());
                x.extend_from_slice(&q.x0);
                self.pool.give(q.x0);
                self.outcomes.push(SolveOutcome {
                    id: q.id,
                    x,
                    result: None,
                    disposition: Disposition::DeadlineExceeded,
                    degraded: q.degraded,
                    queued_seconds: now - q.submitted,
                    solve_seconds: 0.0,
                });
            }
        }
    }

    /// The next rung down the precision ladder for group `gi`, if any:
    /// a plain-matrix group with a registered store re-routes to that
    /// store (same config); otherwise a group whose basis is native —
    /// and whose configuration supports compressed storage — swaps to
    /// an fp32 compressed basis via [`Degradation::apply`].
    fn next_rung(&self, gi: usize) -> Option<(Operator<'a, S>, GmresConfig, Degradation)> {
        let g = &self.groups[gi];
        if let Operator::Matrix(a) = g.op {
            let addr = a as *const GpuMatrix<S> as usize;
            if let Some(&(_, store)) = self.ladder.iter().find(|(m, _)| *m == addr) {
                return Some((Operator::Store(store), g.cfg, Degradation::Fp32Store));
            }
        }
        if g.cfg.basis == BasisPolicy::Native
            && g.cfg.ortho != OrthoMethod::Mgs
            && g.cfg.pipeline_depth == 0
        {
            let rung = Degradation::Fp32Basis;
            return Some((g.op, rung.apply(g.cfg), rung));
        }
        None
    }

    /// Re-route degradable requests that have waited past the horizon
    /// onto the next cheaper group. The move preserves submission time
    /// and deadline (latency is end-to-end) but resets the wait
    /// counter, so a request descends at most one rung per horizon.
    fn degrade_overwaited(&mut self) {
        let horizon = self.cfg.degrade_after_cycles;
        if horizon == 0 {
            return;
        }
        let mut moves = Vec::new();
        for gi in 0..self.groups.len() {
            if !self.groups[gi]
                .queue
                .iter()
                .any(|q| q.degradable && q.waited >= horizon)
            {
                continue;
            }
            let Some((op, cfg, rung)) = self.next_rung(gi) else {
                continue;
            };
            let g = &mut self.groups[gi];
            let mut i = 0;
            while i < g.queue.len() {
                if g.queue[i].degradable && g.queue[i].waited >= horizon {
                    let mut q = g.queue.remove(i);
                    q.waited = 0;
                    q.degraded = Some(match q.degraded {
                        None => rung,
                        Some(prev) => prev.combined_with(rung),
                    });
                    moves.push((gi, q, op, cfg));
                } else {
                    i += 1;
                }
            }
        }
        for (gi, q, op, cfg) in moves {
            let tenant = self.groups[gi].key.tenant;
            let precond = self.groups[gi].precond;
            match self.group_for(op, precond, tenant, cfg) {
                Ok(ti) => {
                    self.degradations += 1;
                    self.groups[ti].idle_steps = 0;
                    self.groups[ti].queue.push(q);
                }
                // Target engine construction failed: leave the request
                // where it was rather than lose it.
                Err(_) => self.groups[gi].queue.push(q),
            }
        }
    }

    /// Under [`SchedulerPolicy::TenantFairShare`], the per-tenant cap
    /// on concurrently occupied lanes: the shared budget
    /// ([`ServiceConfig::lanes`]) split evenly (floor, minimum 1)
    /// across tenants with outstanding work. `None` when the policy is
    /// different or at most one tenant is active — a lone tenant gets
    /// the whole budget.
    fn fair_share_cap(&self) -> Option<usize> {
        if self.cfg.scheduler != SchedulerPolicy::TenantFairShare {
            return None;
        }
        let mut tenants: Vec<u32> = self
            .groups
            .iter()
            .filter(|g| !g.queue.is_empty() || g.engine.occupied() > 0)
            .map(|g| g.key.tenant)
            .collect();
        tenants.sort_unstable();
        tenants.dedup();
        if tenants.len() <= 1 {
            return None;
        }
        Some((self.cfg.lanes / tenants.len()).max(1))
    }

    /// Step until every queue is empty and every engine idle.
    pub fn run_until_idle(&mut self, ctx: &mut GpuContext) {
        while self.pending() > 0 || self.in_flight() > 0 {
            self.step(ctx);
        }
    }

    /// Requests waiting in queues.
    pub fn pending(&self) -> usize {
        self.groups.iter().map(|g| g.queue.len()).sum()
    }

    /// Requests occupying lanes.
    pub fn in_flight(&self) -> usize {
        self.groups.iter().map(|g| g.engine.occupied()).sum()
    }

    /// Take every outcome produced since the last drain, in completion
    /// order.
    pub fn drain_outcomes(&mut self) -> Vec<SolveOutcome<S>> {
        std::mem::take(&mut self.outcomes)
    }

    /// Drain outcomes into a caller-owned buffer (in completion order),
    /// keeping the service's internal outcome vector and its capacity.
    /// Pair with [`recycle`](SolverService::recycle) for allocation-free
    /// warm serving loops.
    pub fn drain_outcomes_into(&mut self, out: &mut Vec<SolveOutcome<S>>) {
        out.append(&mut self.outcomes);
    }

    /// Return a consumed outcome's solution buffer to the payload pool,
    /// so the next submission or completion reuses it instead of
    /// allocating.
    pub fn recycle(&mut self, outcome: SolveOutcome<S>) {
        self.pool.give(outcome.x);
    }

    /// Aggregate counters across all groups (including evicted ones).
    pub fn stats(&self) -> ServiceStats {
        let mut st = ServiceStats {
            submitted: self.submitted,
            completed: self.completed,
            cancelled: self.cancelled,
            cycles: self.retired.0,
            lane_cycles: self.retired.1,
            admissions: self.retired.2,
            groups: self.groups.len(),
            evicted_groups: self.evicted_groups,
            payload_allocs: self.pool.allocs,
            lanes_per_group: self.cfg.lanes,
            deadline_misses: self.deadline_misses,
            degradations: self.degradations,
            sheds: self.sheds,
            wait_hist: self.wait_hist,
        };
        for g in &self.groups {
            let (cycles, lane_cycles, admissions) = g.engine.counters();
            st.cycles += cycles;
            st.lane_cycles += lane_cycles;
            st.admissions += admissions;
        }
        st
    }

    /// Per-tenant shares of all lane-cycles run so far (live and
    /// evicted groups), sorted by tenant id; shares sum to 1. Empty
    /// before any lane work has run.
    pub fn tenant_occupancy(&self) -> Vec<(u32, f64)> {
        let mut acc: Vec<(u32, usize)> = self.tenant_retired.clone();
        for g in &self.groups {
            let (_, lane_cycles, _) = g.engine.counters();
            match acc.iter_mut().find(|(t, _)| *t == g.key.tenant) {
                Some(e) => e.1 += lane_cycles,
                None => acc.push((g.key.tenant, lane_cycles)),
            }
        }
        let total: usize = acc.iter().map(|(_, c)| c).sum();
        if total == 0 {
            return Vec::new();
        }
        acc.retain(|(_, c)| *c > 0);
        acc.sort_unstable_by_key(|(t, _)| *t);
        acc.into_iter()
            .map(|(t, c)| (t, c as f64 / total as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GmresConfig;
    use crate::context::{GpuContext, GpuMatrix};
    use crate::gmres::Gmres;
    use crate::precond::Identity;
    use mpgmres_gpusim::DeviceModel;
    use mpgmres_la::coo::Coo;
    use mpgmres_la::vec_ops::ReductionOrder;

    fn ctx() -> GpuContext {
        GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential)
    }

    fn laplace1d(n: usize) -> GpuMatrix<f64> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        GpuMatrix::new(coo.into_csr())
    }

    fn rhs(n: usize, seed: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 37 + seed * 101) % 23) as f64 / 11.0 - 1.0)
            .collect()
    }

    #[test]
    fn served_solves_match_independent_gmres_bitwise() {
        let n = 48;
        let a = laplace1d(n);
        let cfg = GmresConfig::default().with_m(12).with_rtol(1e-9);
        let mut c = ctx();
        let mut svc = SolverService::new(ServiceConfig::default().with_lanes(2));
        // 5 requests into 2 lanes: forces queueing and admission into
        // vacated slots.
        let payloads: Vec<Vec<f64>> = (0..5).map(|s| rhs(n, s)).collect();
        let ids: Vec<RequestId> = payloads
            .iter()
            .map(|b| {
                svc.submit(
                    &c,
                    &SolveRequest::new(Operator::Matrix(&a), b).with_config(cfg),
                )
                .unwrap()
            })
            .collect();
        svc.run_until_idle(&mut c);
        let outcomes = svc.drain_outcomes();
        assert_eq!(outcomes.len(), 5);
        for (id, b) in ids.iter().zip(&payloads) {
            let out = outcomes.iter().find(|o| o.id == *id).unwrap();
            assert_eq!(out.disposition, Disposition::Completed);
            let mut x_ref = vec![0.0f64; n];
            let r_ref = Gmres::new(&a, &Identity, cfg).solve(&mut ctx(), b, &mut x_ref);
            let res = out.result.as_ref().unwrap();
            assert_eq!(res.status, r_ref.status);
            assert_eq!(res.iterations, r_ref.iterations);
            for (sx, rx) in out.x.iter().zip(&x_ref) {
                assert_eq!(sx.to_bits(), rx.to_bits(), "served x diverged from Gmres");
            }
        }
        let st = svc.stats();
        assert_eq!(st.completed, 5);
        assert!(st.admissions >= 2, "5 requests through 2 lanes re-admit");
        assert!(st.occupancy() > 0.0 && st.occupancy() <= 1.0);
        assert!(!c.profiler().epochs().is_empty());
    }

    #[test]
    fn tenants_never_share_groups() {
        let n = 24;
        let a = laplace1d(n);
        let b = rhs(n, 1);
        let c = ctx();
        let mut svc = SolverService::<f64>::new(ServiceConfig::default());
        let req = SolveRequest::new(Operator::Matrix(&a), &b);
        svc.submit(&c, &req.with_tenant(1)).unwrap();
        svc.submit(&c, &req.with_tenant(2)).unwrap();
        svc.submit(&c, &req.with_tenant(1)).unwrap();
        assert_eq!(svc.stats().groups, 2);
    }

    #[test]
    fn queued_cancellation_returns_initial_guess() {
        let n = 24;
        let a = laplace1d(n);
        let b = rhs(n, 3);
        let mut c = ctx();
        let mut svc = SolverService::new(ServiceConfig::default().with_lanes(1));
        let keep = svc
            .submit(&c, &SolveRequest::new(Operator::Matrix(&a), &b))
            .unwrap();
        let x0 = vec![0.5f64; n];
        let dropped = svc
            .submit(
                &c,
                &SolveRequest::new(Operator::Matrix(&a), &b).with_x0(&x0),
            )
            .unwrap();
        svc.cancel(&c, dropped).unwrap();
        assert!(matches!(
            svc.cancel(&c, RequestId(999)),
            Err(SolveError::UnknownRequest { .. })
        ));
        svc.run_until_idle(&mut c);
        let outcomes = svc.drain_outcomes();
        let d = outcomes.iter().find(|o| o.id == dropped).unwrap();
        assert_eq!(d.disposition, Disposition::Cancelled);
        assert!(d.result.is_none());
        assert_eq!(d.x, x0);
        let k = outcomes.iter().find(|o| o.id == keep).unwrap();
        assert_eq!(k.disposition, Disposition::Completed);
    }

    #[test]
    fn idle_groups_are_evicted_and_rebuilt_on_demand() {
        let n = 32;
        let a = laplace1d(n);
        let b = rhs(n, 2);
        let mut c = ctx();
        let mut svc = SolverService::new(
            ServiceConfig::default()
                .with_lanes(2)
                .with_idle_evict_cycles(3),
        );
        svc.submit(&c, &SolveRequest::new(Operator::Matrix(&a), &b))
            .unwrap();
        svc.run_until_idle(&mut c);
        assert_eq!(svc.stats().groups, 1, "group stays live right after idle");
        let cycles_before = svc.stats().cycles;
        // Three idle steps cross the horizon; the group is evicted.
        for _ in 0..3 {
            svc.step(&mut c);
        }
        let st = svc.stats();
        assert_eq!(st.groups, 0, "idle group must be evicted");
        assert_eq!(st.evicted_groups, 1);
        assert_eq!(
            st.cycles, cycles_before,
            "eviction must not lose retired counters"
        );
        // Resubmission transparently rebuilds the group and solves.
        let id = svc
            .submit(&c, &SolveRequest::new(Operator::Matrix(&a), &b))
            .unwrap();
        assert_eq!(svc.stats().groups, 1);
        svc.run_until_idle(&mut c);
        let outcomes = svc.drain_outcomes();
        let o = outcomes.iter().find(|o| o.id == id).unwrap();
        assert_eq!(o.disposition, Disposition::Completed);
        assert!(st.cycles > 0);
    }

    #[test]
    fn eviction_disabled_with_zero_horizon() {
        let n = 16;
        let a = laplace1d(n);
        let b = rhs(n, 1);
        let mut c = ctx();
        let mut svc = SolverService::new(
            ServiceConfig::default()
                .with_lanes(1)
                .with_idle_evict_cycles(0),
        );
        svc.submit(&c, &SolveRequest::new(Operator::Matrix(&a), &b))
            .unwrap();
        svc.run_until_idle(&mut c);
        for _ in 0..200 {
            svc.step(&mut c);
        }
        assert_eq!(svc.stats().groups, 1, "horizon 0 must never evict");
        assert_eq!(svc.stats().evicted_groups, 0);
    }

    #[test]
    fn warm_serving_reuses_payload_buffers() {
        let n = 40;
        let a = laplace1d(n);
        let cfg = GmresConfig::default().with_m(10).with_rtol(1e-8);
        let mut c = ctx();
        let mut svc = SolverService::new(ServiceConfig::default().with_lanes(2));
        let mut sink = Vec::new();
        let mut warm = 0;
        for salt in 0..4 {
            for s in 0..3 {
                let b = rhs(n, salt * 10 + s);
                svc.submit(
                    &c,
                    &SolveRequest::new(Operator::Matrix(&a), &b).with_config(cfg),
                )
                .unwrap();
            }
            svc.run_until_idle(&mut c);
            svc.drain_outcomes_into(&mut sink);
            for o in sink.drain(..) {
                assert_eq!(o.disposition, Disposition::Completed);
                svc.recycle(o);
            }
            if salt == 0 {
                warm = svc.stats().payload_allocs;
                assert!(warm > 0, "cold round must have allocated carriers");
            }
        }
        assert_eq!(
            svc.stats().payload_allocs,
            warm,
            "warm serving rounds must allocate no payload buffers"
        );
    }

    #[test]
    fn priority_policy_admits_high_priority_first() {
        let n = 32;
        let a = laplace1d(n);
        let b = rhs(n, 4);
        let mut c = ctx();
        let mut svc = SolverService::new(
            ServiceConfig::default()
                .with_lanes(1)
                .with_scheduler(SchedulerPolicy::Priority),
        );
        let req = SolveRequest::new(Operator::Matrix(&a), &b);
        let low = svc.submit(&c, &req.with_priority(1)).unwrap();
        let mid = svc.submit(&c, &req.with_priority(5)).unwrap();
        let high = svc.submit(&c, &req.with_priority(9)).unwrap();
        svc.run_until_idle(&mut c);
        let order: Vec<RequestId> = svc.drain_outcomes().iter().map(|o| o.id).collect();
        assert_eq!(order, vec![high, mid, low]);
    }

    #[test]
    fn edf_policy_admits_nearest_deadline_first() {
        let n = 32;
        let a = laplace1d(n);
        let b = rhs(n, 4);
        let mut c = ctx();
        let mut svc = SolverService::new(
            ServiceConfig::default()
                .with_lanes(1)
                .with_scheduler(SchedulerPolicy::EarliestDeadlineFirst),
        );
        let req = SolveRequest::new(Operator::Matrix(&a), &b);
        // Generous deadlines: ordering is observable, nothing expires.
        let late = svc.submit(&c, &req.with_deadline(1e6)).unwrap();
        let soon = svc.submit(&c, &req.with_deadline(1e2)).unwrap();
        let mid = svc.submit(&c, &req.with_deadline(1e4)).unwrap();
        svc.run_until_idle(&mut c);
        let outcomes = svc.drain_outcomes();
        let order: Vec<RequestId> = outcomes.iter().map(|o| o.id).collect();
        assert_eq!(order, vec![soon, mid, late]);
        assert!(outcomes
            .iter()
            .all(|o| o.disposition == Disposition::Completed));
        assert_eq!(svc.stats().deadline_misses, 0);
        // Every departure landed in a wait-histogram bucket.
        assert_eq!(svc.stats().wait_hist.iter().sum::<usize>(), 3);
    }

    #[test]
    fn queued_requests_expire_at_barriers_with_initial_guess() {
        let n = 32;
        let a = laplace1d(n);
        let b = rhs(n, 5);
        let mut c = ctx();
        let mut svc = SolverService::new(ServiceConfig::default().with_lanes(1));
        let req = SolveRequest::new(Operator::Matrix(&a), &b);
        let keep = svc.submit(&c, &req).unwrap();
        let x0 = vec![0.25f64; n];
        // Far too tight to outlive even one cycle of the occupant.
        let doomed = svc
            .submit(&c, &req.with_x0(&x0).with_deadline(1e-9))
            .unwrap();
        svc.run_until_idle(&mut c);
        let outcomes = svc.drain_outcomes();
        let d = outcomes.iter().find(|o| o.id == doomed).unwrap();
        assert_eq!(d.disposition, Disposition::DeadlineExceeded);
        assert!(d.result.is_none());
        assert_eq!(d.x, x0, "expired-in-queue outcome carries the guess");
        assert_eq!(d.error(), Some(SolveError::DeadlineExceeded { id: doomed }));
        let k = outcomes.iter().find(|o| o.id == keep).unwrap();
        assert_eq!(k.disposition, Disposition::Completed);
        assert_eq!(svc.stats().deadline_misses, 1);
    }

    #[test]
    fn in_flight_requests_expire_at_barriers_with_last_iterate() {
        let n = 48;
        let a = laplace1d(n);
        let b = rhs(n, 6);
        let mut c = ctx();
        let mut svc = SolverService::new(ServiceConfig::default().with_lanes(1));
        // Tight tolerance so the solve needs many cycles; the deadline
        // passes mid-flight after the admission barrier advances the
        // clock.
        let cfg = GmresConfig::default().with_m(4).with_rtol(1e-12);
        let id = svc
            .submit(
                &c,
                &SolveRequest::new(Operator::Matrix(&a), &b)
                    .with_config(cfg)
                    .with_deadline(1e-7),
            )
            .unwrap();
        svc.run_until_idle(&mut c);
        let outcomes = svc.drain_outcomes();
        let o = outcomes.iter().find(|o| o.id == id).unwrap();
        assert_eq!(o.disposition, Disposition::DeadlineExceeded);
        assert!(o.x.iter().all(|v| v.is_finite()));
        assert!(o.solve_seconds >= 0.0, "expired after admission");
        assert_eq!(svc.stats().deadline_misses, 1);
    }

    #[test]
    fn fair_share_caps_concurrent_lanes_per_tenant() {
        let n = 32;
        let a = laplace1d(n);
        let b = rhs(n, 7);
        let mut c = ctx();
        let cfg = GmresConfig::default().with_m(6).with_rtol(1e-10);
        let mut svc = SolverService::new(
            ServiceConfig::default()
                .with_lanes(4)
                .with_scheduler(SchedulerPolicy::TenantFairShare),
        );
        let req = SolveRequest::new(Operator::Matrix(&a), &b).with_config(cfg);
        for _ in 0..6 {
            svc.submit(&c, &req.with_tenant(1)).unwrap();
        }
        for _ in 0..6 {
            svc.submit(&c, &req.with_tenant(2)).unwrap();
        }
        svc.step(&mut c);
        // Two active tenants share the 4-lane budget: 2 + 2, even
        // though each group alone has 4 slots.
        assert_eq!(svc.in_flight(), 4, "budget split across tenants");
        while svc.pending() > 0 || svc.in_flight() > 0 {
            svc.step(&mut c);
        }
        let shares = svc.tenant_occupancy();
        assert_eq!(shares.len(), 2);
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for &(t, s) in &shares {
            assert!(
                (s - 0.5).abs() < 0.2,
                "tenant {t} share {s} strays from even split"
            );
        }
        // A FIFO service with the same traffic runs both groups wide
        // open: 8 lanes in flight on the first step.
        let mut fifo = SolverService::new(ServiceConfig::default().with_lanes(4));
        for _ in 0..6 {
            fifo.submit(&c, &req.with_tenant(1)).unwrap();
            fifo.submit(&c, &req.with_tenant(2)).unwrap();
        }
        fifo.step(&mut c);
        assert_eq!(fifo.in_flight(), 8);
        fifo.run_until_idle(&mut c);
    }

    #[test]
    fn full_queues_shed_with_retry_hint() {
        let n = 24;
        let a = laplace1d(n);
        let b = rhs(n, 8);
        let c = ctx();
        let mut svc = SolverService::new(ServiceConfig::default().with_lanes(1).with_queue_cap(2));
        let req = SolveRequest::new(Operator::Matrix(&a), &b);
        svc.submit(&c, &req).unwrap();
        svc.submit(&c, &req).unwrap();
        let err = svc.submit(&c, &req).unwrap_err();
        match err {
            SolveError::QueueFull {
                pending,
                retry_after_cycles,
            } => {
                assert_eq!(pending, 2);
                assert!(retry_after_cycles >= 1);
            }
            other => panic!("expected QueueFull, got {other}"),
        }
        assert_eq!(svc.stats().sheds, 1);
        assert_eq!(svc.stats().submitted, 2, "shed submissions don't count");
    }

    #[test]
    fn degradable_requests_reroute_to_registered_store() {
        let n = 48;
        let a = laplace1d(n);
        let mut c = ctx();
        let store = crate::context::GpuStore::shadow_of(&a, mpgmres_scalar::Precision::Fp32);
        let cfg = GmresConfig::default().with_m(8).with_rtol(1e-8);
        let mut svc = SolverService::new(
            ServiceConfig::default()
                .with_lanes(1)
                .with_degrade_after_cycles(2),
        );
        svc.register_degraded_store(&a, &store);
        let hog = rhs(n, 0);
        svc.submit(
            &c,
            &SolveRequest::new(Operator::Matrix(&a), &hog).with_config(cfg),
        )
        .unwrap();
        let b = rhs(n, 9);
        let id = svc
            .submit(
                &c,
                &SolveRequest::new(Operator::Matrix(&a), &b)
                    .with_config(cfg)
                    .with_degradable(true),
            )
            .unwrap();
        svc.run_until_idle(&mut c);
        let outcomes = svc.drain_outcomes();
        let o = outcomes.iter().find(|o| o.id == id).unwrap();
        assert_eq!(o.disposition, Disposition::Completed);
        assert_eq!(o.degraded, Some(Degradation::Fp32Store));
        assert_eq!(svc.stats().degradations, 1);
        // Bit-identical to an independent solve at the final (store)
        // configuration.
        let solo = Gmres::serve(
            &mut ctx(),
            &SolveRequest::new(Operator::Store(&store), &b).with_config(cfg),
        )
        .unwrap();
        let res = o.result.as_ref().unwrap();
        assert_eq!(res.iterations, solo.result.as_ref().unwrap().iterations);
        for (sx, rx) in o.x.iter().zip(&solo.x) {
            assert_eq!(sx.to_bits(), rx.to_bits());
        }
        // The degraded solve still hit the fp64 tolerance it asked for.
        assert!(res.final_relative_residual <= cfg.rtol);
    }

    #[test]
    fn degradable_requests_fall_back_to_compressed_basis() {
        let n = 48;
        let a = laplace1d(n);
        let mut c = ctx();
        let cfg = GmresConfig::default().with_m(8).with_rtol(1e-8);
        let mut svc = SolverService::new(
            ServiceConfig::default()
                .with_lanes(1)
                .with_degrade_after_cycles(2),
        );
        // No registered store: the ladder's next rung is the fp32
        // compressed basis.
        let hog = rhs(n, 0);
        svc.submit(
            &c,
            &SolveRequest::new(Operator::Matrix(&a), &hog).with_config(cfg),
        )
        .unwrap();
        let b = rhs(n, 10);
        let id = svc
            .submit(
                &c,
                &SolveRequest::new(Operator::Matrix(&a), &b)
                    .with_config(cfg)
                    .with_degradable(true),
            )
            .unwrap();
        svc.run_until_idle(&mut c);
        let outcomes = svc.drain_outcomes();
        let o = outcomes.iter().find(|o| o.id == id).unwrap();
        assert_eq!(o.disposition, Disposition::Completed);
        assert_eq!(o.degraded, Some(Degradation::Fp32Basis));
        let final_cfg = Degradation::Fp32Basis.apply(cfg);
        let solo = Gmres::serve(
            &mut ctx(),
            &SolveRequest::new(Operator::Matrix(&a), &b).with_config(final_cfg),
        )
        .unwrap();
        let res = o.result.as_ref().unwrap();
        assert_eq!(res.iterations, solo.result.as_ref().unwrap().iterations);
        for (sx, rx) in o.x.iter().zip(&solo.x) {
            assert_eq!(sx.to_bits(), rx.to_bits());
        }
        assert!(
            res.final_relative_residual <= cfg.rtol,
            "fp64 rtol still met"
        );
    }

    #[test]
    fn submit_then_cancel_waves_return_carriers_to_pool() {
        let n = 40;
        let a = laplace1d(n);
        let mut c = ctx();
        let mut svc = SolverService::new(ServiceConfig::default().with_lanes(1));
        // Warm the pool: one served wave, recycled.
        let b = rhs(n, 11);
        svc.submit(&c, &SolveRequest::new(Operator::Matrix(&a), &b))
            .unwrap();
        svc.run_until_idle(&mut c);
        for o in svc.drain_outcomes() {
            svc.recycle(o);
        }
        let warm = svc.stats().payload_allocs;
        for wave in 0..3 {
            let b = rhs(n, 12 + wave);
            let id = svc
                .submit(&c, &SolveRequest::new(Operator::Matrix(&a), &b))
                .unwrap();
            svc.cancel(&c, id).unwrap();
            for o in svc.drain_outcomes() {
                svc.recycle(o);
            }
        }
        assert_eq!(
            svc.stats().payload_allocs,
            warm,
            "queued cancellation must return carriers to the pool"
        );
    }

    #[test]
    fn service_rejects_store_path_conversions() {
        let n = 16;
        let a = laplace1d(n);
        let b = rhs(n, 0);
        let c = ctx();
        let mut svc = SolverService::new(ServiceConfig::default());
        let err = svc
            .submit(
                &c,
                &SolveRequest::new(Operator::Matrix(&a), &b).with_store(
                    crate::config::StorePath::Shadow(mpgmres_scalar::Precision::Fp32),
                ),
            )
            .unwrap_err();
        assert!(matches!(err, SolveError::UnsupportedCombination(_)));
    }
}
