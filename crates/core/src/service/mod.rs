//! Solve-as-a-service: continuous lane admission behind the unified
//! [`SolveRequest`] API.
//!
//! ```text
//!   submit() ──► per-group request queue
//!                      │  admission (at cycle barriers, into
//!                      ▼   lanes vacated by deflation)
//!                ┌───────────────────────────────┐
//!                │ LaneEngine: BlockGmres lanes  │──► SolveOutcome
//!                │ cycle ► barrier ► admit ► ... │    (drain_outcomes)
//!                └───────────────────────────────┘
//! ```
//!
//! A [`SolverService`] keeps one lane engine per *group* of
//! compatible requests — same operand, preconditioner, tenant, and
//! cycle-shaping configuration (restart length, orthogonalization,
//! pipeline depth, monitoring flags). Within a group, per-request
//! tolerances and iteration caps ride the individual lanes: stopping
//! parameters steer decisions, never arithmetic, so mixed-tolerance
//! lanes keep the bit-parity contract. Requests from different tenants
//! never share a group, and the admission regions fold the tenant into
//! their replay keys, so cached op graphs stay per-tenant.
//!
//! Every completed request is bit-identical to an independent
//! [`crate::Gmres`] solve with the same configuration — the service
//! adds scheduling, not arithmetic. Cancellations take effect at cycle
//! barriers and return the iterate of the last completed barrier.

pub(crate) mod engine;
mod request;

pub use request::{Disposition, Operator, RequestId, SolveError, SolveOutcome, SolveRequest};

use mpgmres_backend::BackendScalar;

use crate::block_gmres::BlockGmres;
use crate::config::{OrthoMethod, StorePath};
use crate::context::GpuContext;
use engine::{LaneEngine, Queued};

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Lane slots per engine group — the `k` of the underlying
    /// [`BlockGmres`]. Offered load beyond this queues until deflation
    /// vacates a lane.
    pub lanes: usize,
    /// Evict an engine group after this many consecutive
    /// [`SolverService::step`] calls with an empty queue and no lane in
    /// flight (`0` = never evict). Evicted groups free their lane
    /// workspaces; a later submission with the same key transparently
    /// rebuilds the group (cold admission, identical arithmetic).
    pub idle_evict_cycles: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            lanes: 8,
            idle_evict_cycles: 64,
        }
    }
}

impl ServiceConfig {
    /// Builder-style lane count.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(lanes >= 1, "a lane group needs at least one lane");
        self.lanes = lanes;
        self
    }

    /// Builder-style idle-eviction horizon (`0` disables eviction).
    pub fn with_idle_evict_cycles(mut self, cycles: usize) -> Self {
        self.idle_evict_cycles = cycles;
        self
    }
}

/// Free-list of payload carriers. `submit` fills a pooled buffer
/// instead of `to_vec`-ing the caller's slices, lane admission returns
/// the carrier once the payload lives in the lane columns, and outcome
/// solutions ride pooled buffers that [`SolverService::recycle`] puts
/// back. After warm-up (steady request size), serving allocates
/// nothing per request — pinned by [`ServiceStats::payload_allocs`].
pub(crate) struct BufferPool<S> {
    free: Vec<Vec<S>>,
    allocs: usize,
}

impl<S> BufferPool<S> {
    fn new() -> Self {
        BufferPool {
            free: Vec::new(),
            allocs: 0,
        }
    }

    /// An empty buffer with capacity for `n` elements. Counts an
    /// allocation whenever the free list cannot supply the capacity.
    pub(crate) fn take(&mut self, n: usize) -> Vec<S> {
        let mut v = self.free.pop().unwrap_or_default();
        v.clear();
        if v.capacity() < n {
            self.allocs += 1;
            v.reserve(n);
        }
        v
    }

    /// Return a buffer to the free list (contents discarded).
    pub(crate) fn give(&mut self, mut v: Vec<S>) {
        v.clear();
        self.free.push(v);
    }
}

/// Groups requests that can share one lane engine: operand and
/// preconditioner identity, tenant, and every configuration field that
/// shapes the lockstep cycle. Tolerances and iteration caps are
/// per-lane and deliberately absent.
#[derive(Clone, Copy, PartialEq, Eq)]
struct GroupKey {
    op_addr: usize,
    op_tag: u8,
    precond_addr: usize,
    tenant: u32,
    m: usize,
    ortho: OrthoMethod,
    monitor_implicit: bool,
    loa_bits: u64,
    record_history: bool,
    pipeline_depth: usize,
    /// Basis storage policy: lanes of one engine share their cycle's
    /// recorded regions (and reseeded slots inherit the previous
    /// occupant's basis allocation), so requests over different basis
    /// paths must land in different groups.
    basis: crate::config::BasisPolicy,
}

struct Group<'a, S: BackendScalar> {
    key: GroupKey,
    queue: Vec<Queued<S>>,
    engine: LaneEngine<'a, S>,
    /// Consecutive `step` calls this group spent with an empty queue
    /// and no lane in flight; reset by any submission or activity.
    idle_steps: usize,
}

/// Aggregate service counters; see [`SolverService::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted by [`SolverService::submit`].
    pub submitted: usize,
    /// Requests that ran to a terminal solver status.
    pub completed: usize,
    /// Requests cancelled (queued or mid-flight).
    pub cancelled: usize,
    /// Lockstep cycles run across all engine groups.
    pub cycles: usize,
    /// Occupied-lane ⨯ cycle pairs (the occupancy numerator).
    pub lane_cycles: usize,
    /// Admission barriers taken.
    pub admissions: usize,
    /// Engine groups currently live.
    pub groups: usize,
    /// Idle engine groups evicted over the service lifetime.
    pub evicted_groups: usize,
    /// Payload buffers freshly allocated (pool misses). Flat across
    /// warm serving rounds of steady request size.
    pub payload_allocs: usize,
    /// Lane slots per group.
    pub lanes_per_group: usize,
}

impl ServiceStats {
    /// Mean fraction of lane slots doing work per cycle, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        let denom = self.cycles * self.lanes_per_group;
        if denom == 0 {
            0.0
        } else {
            self.lane_cycles as f64 / denom as f64
        }
    }
}

/// A long-running multi-tenant solver front end over continuously
/// re-seeded [`BlockGmres`] lane engines.
///
/// Lifecycle: [`submit`](SolverService::submit) requests (payload is
/// copied; operand and preconditioner borrows must outlive the
/// service), drive with [`step`](SolverService::step) or
/// [`run_until_idle`](SolverService::run_until_idle), collect with
/// [`drain_outcomes`](SolverService::drain_outcomes).
pub struct SolverService<'a, S: BackendScalar> {
    cfg: ServiceConfig,
    groups: Vec<Group<'a, S>>,
    next_id: u64,
    outcomes: Vec<SolveOutcome<S>>,
    pool: BufferPool<S>,
    submitted: usize,
    completed: usize,
    cancelled: usize,
    evicted_groups: usize,
    /// Counters carried over from evicted groups so `stats` stays
    /// monotone across evictions.
    retired: (usize, usize, usize),
}

impl<'a, S: BackendScalar> SolverService<'a, S> {
    /// An empty service.
    pub fn new(cfg: ServiceConfig) -> Self {
        SolverService {
            cfg,
            groups: Vec::new(),
            next_id: 0,
            outcomes: Vec::new(),
            pool: BufferPool::new(),
            submitted: 0,
            completed: 0,
            cancelled: 0,
            evicted_groups: 0,
            retired: (0, 0, 0),
        }
    }

    /// Enqueue a request. Validation happens here — a rejected request
    /// never enters a queue. The context is only read (for the
    /// submission timestamp).
    pub fn submit(
        &mut self,
        ctx: &GpuContext,
        req: &SolveRequest<'a, '_, S>,
    ) -> Result<RequestId, SolveError> {
        req.validate()?;
        if !matches!(req.store, StorePath::Native) {
            return Err(SolveError::UnsupportedCombination(
                "the service keeps operands alive across requests: build a \
                 GpuStore up front and submit it as Operator::Store instead \
                 of asking for a StorePath conversion"
                    .into(),
            ));
        }
        let key = GroupKey {
            op_addr: req.operator.addr(),
            op_tag: req.operator.tag_code(),
            precond_addr: req.precond as *const _ as *const () as usize,
            tenant: req.tenant,
            m: req.config.m,
            ortho: req.config.ortho,
            monitor_implicit: req.config.monitor_implicit,
            loa_bits: req.config.loa_factor.to_bits(),
            record_history: req.config.record_history,
            pipeline_depth: req.config.pipeline_depth,
            basis: req.config.basis,
        };
        let gi = match self.groups.iter().position(|g| g.key == key) {
            Some(i) => i,
            None => {
                let solver = match req.operator {
                    Operator::Matrix(a) => BlockGmres::try_new(a, req.precond, req.config)?,
                    Operator::Store(s) => BlockGmres::try_over_store(s, req.precond, req.config)?,
                };
                self.groups.push(Group {
                    key,
                    queue: Vec::new(),
                    engine: LaneEngine::new(solver, self.cfg.lanes, req.tenant),
                    idle_steps: 0,
                });
                self.groups.len() - 1
            }
        };
        self.next_id += 1;
        let id = RequestId(self.next_id);
        let n = req.operator.n();
        // Payloads ride pooled carriers: no fresh allocation once the
        // pool is warm at this request size.
        let mut rhs = self.pool.take(n);
        rhs.extend_from_slice(req.rhs);
        let mut x0 = self.pool.take(n);
        match req.x0 {
            Some(x) => x0.extend_from_slice(x),
            None => x0.resize(n, S::zero()),
        }
        self.groups[gi].idle_steps = 0;
        self.groups[gi].queue.push(Queued {
            id,
            rhs,
            x0,
            rtol: req.config.rtol,
            max_iters: req.config.max_iters,
            submitted: ctx.elapsed(),
        });
        self.submitted += 1;
        Ok(id)
    }

    /// Cancel a request. Queued requests leave immediately (outcome
    /// carries the untouched initial guess); in-flight requests leave
    /// at the next cycle barrier with the iterate of the last completed
    /// barrier. [`SolveError::UnknownRequest`] if the id is neither
    /// queued nor in flight (e.g. already completed).
    pub fn cancel(&mut self, ctx: &GpuContext, id: RequestId) -> Result<(), SolveError> {
        for g in &mut self.groups {
            if let Some(pos) = g.queue.iter().position(|q| q.id == id) {
                let q = g.queue.remove(pos);
                self.pool.give(q.rhs);
                self.outcomes.push(SolveOutcome {
                    id,
                    x: q.x0,
                    result: None,
                    disposition: Disposition::Cancelled,
                    queued_seconds: ctx.elapsed() - q.submitted,
                    solve_seconds: 0.0,
                });
                self.cancelled += 1;
                return Ok(());
            }
            if g.engine.cancel(id) {
                return Ok(());
            }
        }
        Err(SolveError::UnknownRequest { id })
    }

    /// One scheduling round per group: admit pending requests into
    /// vacant lanes, then run one lockstep cycle. Groups that stay idle
    /// for [`ServiceConfig::idle_evict_cycles`] consecutive steps are
    /// evicted (their lane workspaces freed); a later submission with
    /// the same key rebuilds them. Returns how many outcomes this step
    /// produced.
    pub fn step(&mut self, ctx: &mut GpuContext) -> usize {
        let before = self.outcomes.len();
        for g in &mut self.groups {
            g.engine
                .admit_from(ctx, &mut g.queue, &mut self.outcomes, &mut self.pool);
            if !g.engine.is_idle() {
                g.engine.step(ctx, &mut self.outcomes, &mut self.pool);
            }
            if g.queue.is_empty() && g.engine.is_idle() {
                g.idle_steps += 1;
            } else {
                g.idle_steps = 0;
            }
        }
        let horizon = self.cfg.idle_evict_cycles;
        if horizon > 0 {
            let retired = &mut self.retired;
            let evicted = &mut self.evicted_groups;
            self.groups.retain(|g| {
                if g.idle_steps < horizon {
                    return true;
                }
                let (cycles, lane_cycles, admissions) = g.engine.counters();
                retired.0 += cycles;
                retired.1 += lane_cycles;
                retired.2 += admissions;
                *evicted += 1;
                false
            });
        }
        for o in &self.outcomes[before..] {
            match o.disposition {
                Disposition::Completed => self.completed += 1,
                Disposition::Cancelled => self.cancelled += 1,
            }
        }
        self.outcomes.len() - before
    }

    /// Step until every queue is empty and every engine idle.
    pub fn run_until_idle(&mut self, ctx: &mut GpuContext) {
        while self.pending() > 0 || self.in_flight() > 0 {
            self.step(ctx);
        }
    }

    /// Requests waiting in queues.
    pub fn pending(&self) -> usize {
        self.groups.iter().map(|g| g.queue.len()).sum()
    }

    /// Requests occupying lanes.
    pub fn in_flight(&self) -> usize {
        self.groups.iter().map(|g| g.engine.occupied()).sum()
    }

    /// Take every outcome produced since the last drain, in completion
    /// order.
    pub fn drain_outcomes(&mut self) -> Vec<SolveOutcome<S>> {
        std::mem::take(&mut self.outcomes)
    }

    /// Drain outcomes into a caller-owned buffer (in completion order),
    /// keeping the service's internal outcome vector and its capacity.
    /// Pair with [`recycle`](SolverService::recycle) for allocation-free
    /// warm serving loops.
    pub fn drain_outcomes_into(&mut self, out: &mut Vec<SolveOutcome<S>>) {
        out.append(&mut self.outcomes);
    }

    /// Return a consumed outcome's solution buffer to the payload pool,
    /// so the next submission or completion reuses it instead of
    /// allocating.
    pub fn recycle(&mut self, outcome: SolveOutcome<S>) {
        self.pool.give(outcome.x);
    }

    /// Aggregate counters across all groups (including evicted ones).
    pub fn stats(&self) -> ServiceStats {
        let mut st = ServiceStats {
            submitted: self.submitted,
            completed: self.completed,
            cancelled: self.cancelled,
            cycles: self.retired.0,
            lane_cycles: self.retired.1,
            admissions: self.retired.2,
            groups: self.groups.len(),
            evicted_groups: self.evicted_groups,
            payload_allocs: self.pool.allocs,
            lanes_per_group: self.cfg.lanes,
        };
        for g in &self.groups {
            let (cycles, lane_cycles, admissions) = g.engine.counters();
            st.cycles += cycles;
            st.lane_cycles += lane_cycles;
            st.admissions += admissions;
        }
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GmresConfig;
    use crate::context::{GpuContext, GpuMatrix};
    use crate::gmres::Gmres;
    use crate::precond::Identity;
    use mpgmres_gpusim::DeviceModel;
    use mpgmres_la::coo::Coo;
    use mpgmres_la::vec_ops::ReductionOrder;

    fn ctx() -> GpuContext {
        GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential)
    }

    fn laplace1d(n: usize) -> GpuMatrix<f64> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        GpuMatrix::new(coo.into_csr())
    }

    fn rhs(n: usize, seed: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 37 + seed * 101) % 23) as f64 / 11.0 - 1.0)
            .collect()
    }

    #[test]
    fn served_solves_match_independent_gmres_bitwise() {
        let n = 48;
        let a = laplace1d(n);
        let cfg = GmresConfig::default().with_m(12).with_rtol(1e-9);
        let mut c = ctx();
        let mut svc = SolverService::new(ServiceConfig::default().with_lanes(2));
        // 5 requests into 2 lanes: forces queueing and admission into
        // vacated slots.
        let payloads: Vec<Vec<f64>> = (0..5).map(|s| rhs(n, s)).collect();
        let ids: Vec<RequestId> = payloads
            .iter()
            .map(|b| {
                svc.submit(
                    &c,
                    &SolveRequest::new(Operator::Matrix(&a), b).with_config(cfg),
                )
                .unwrap()
            })
            .collect();
        svc.run_until_idle(&mut c);
        let outcomes = svc.drain_outcomes();
        assert_eq!(outcomes.len(), 5);
        for (id, b) in ids.iter().zip(&payloads) {
            let out = outcomes.iter().find(|o| o.id == *id).unwrap();
            assert_eq!(out.disposition, Disposition::Completed);
            let mut x_ref = vec![0.0f64; n];
            let r_ref = Gmres::new(&a, &Identity, cfg).solve(&mut ctx(), b, &mut x_ref);
            let res = out.result.as_ref().unwrap();
            assert_eq!(res.status, r_ref.status);
            assert_eq!(res.iterations, r_ref.iterations);
            for (sx, rx) in out.x.iter().zip(&x_ref) {
                assert_eq!(sx.to_bits(), rx.to_bits(), "served x diverged from Gmres");
            }
        }
        let st = svc.stats();
        assert_eq!(st.completed, 5);
        assert!(st.admissions >= 2, "5 requests through 2 lanes re-admit");
        assert!(st.occupancy() > 0.0 && st.occupancy() <= 1.0);
        assert!(!c.profiler().epochs().is_empty());
    }

    #[test]
    fn tenants_never_share_groups() {
        let n = 24;
        let a = laplace1d(n);
        let b = rhs(n, 1);
        let c = ctx();
        let mut svc = SolverService::<f64>::new(ServiceConfig::default());
        let req = SolveRequest::new(Operator::Matrix(&a), &b);
        svc.submit(&c, &req.with_tenant(1)).unwrap();
        svc.submit(&c, &req.with_tenant(2)).unwrap();
        svc.submit(&c, &req.with_tenant(1)).unwrap();
        assert_eq!(svc.stats().groups, 2);
    }

    #[test]
    fn queued_cancellation_returns_initial_guess() {
        let n = 24;
        let a = laplace1d(n);
        let b = rhs(n, 3);
        let mut c = ctx();
        let mut svc = SolverService::new(ServiceConfig::default().with_lanes(1));
        let keep = svc
            .submit(&c, &SolveRequest::new(Operator::Matrix(&a), &b))
            .unwrap();
        let x0 = vec![0.5f64; n];
        let dropped = svc
            .submit(
                &c,
                &SolveRequest::new(Operator::Matrix(&a), &b).with_x0(&x0),
            )
            .unwrap();
        svc.cancel(&c, dropped).unwrap();
        assert!(matches!(
            svc.cancel(&c, RequestId(999)),
            Err(SolveError::UnknownRequest { .. })
        ));
        svc.run_until_idle(&mut c);
        let outcomes = svc.drain_outcomes();
        let d = outcomes.iter().find(|o| o.id == dropped).unwrap();
        assert_eq!(d.disposition, Disposition::Cancelled);
        assert!(d.result.is_none());
        assert_eq!(d.x, x0);
        let k = outcomes.iter().find(|o| o.id == keep).unwrap();
        assert_eq!(k.disposition, Disposition::Completed);
    }

    #[test]
    fn idle_groups_are_evicted_and_rebuilt_on_demand() {
        let n = 32;
        let a = laplace1d(n);
        let b = rhs(n, 2);
        let mut c = ctx();
        let mut svc = SolverService::new(
            ServiceConfig::default()
                .with_lanes(2)
                .with_idle_evict_cycles(3),
        );
        svc.submit(&c, &SolveRequest::new(Operator::Matrix(&a), &b))
            .unwrap();
        svc.run_until_idle(&mut c);
        assert_eq!(svc.stats().groups, 1, "group stays live right after idle");
        let cycles_before = svc.stats().cycles;
        // Three idle steps cross the horizon; the group is evicted.
        for _ in 0..3 {
            svc.step(&mut c);
        }
        let st = svc.stats();
        assert_eq!(st.groups, 0, "idle group must be evicted");
        assert_eq!(st.evicted_groups, 1);
        assert_eq!(
            st.cycles, cycles_before,
            "eviction must not lose retired counters"
        );
        // Resubmission transparently rebuilds the group and solves.
        let id = svc
            .submit(&c, &SolveRequest::new(Operator::Matrix(&a), &b))
            .unwrap();
        assert_eq!(svc.stats().groups, 1);
        svc.run_until_idle(&mut c);
        let outcomes = svc.drain_outcomes();
        let o = outcomes.iter().find(|o| o.id == id).unwrap();
        assert_eq!(o.disposition, Disposition::Completed);
        assert!(st.cycles > 0);
    }

    #[test]
    fn eviction_disabled_with_zero_horizon() {
        let n = 16;
        let a = laplace1d(n);
        let b = rhs(n, 1);
        let mut c = ctx();
        let mut svc = SolverService::new(
            ServiceConfig::default()
                .with_lanes(1)
                .with_idle_evict_cycles(0),
        );
        svc.submit(&c, &SolveRequest::new(Operator::Matrix(&a), &b))
            .unwrap();
        svc.run_until_idle(&mut c);
        for _ in 0..200 {
            svc.step(&mut c);
        }
        assert_eq!(svc.stats().groups, 1, "horizon 0 must never evict");
        assert_eq!(svc.stats().evicted_groups, 0);
    }

    #[test]
    fn warm_serving_reuses_payload_buffers() {
        let n = 40;
        let a = laplace1d(n);
        let cfg = GmresConfig::default().with_m(10).with_rtol(1e-8);
        let mut c = ctx();
        let mut svc = SolverService::new(ServiceConfig::default().with_lanes(2));
        let mut sink = Vec::new();
        let mut warm = 0;
        for salt in 0..4 {
            for s in 0..3 {
                let b = rhs(n, salt * 10 + s);
                svc.submit(
                    &c,
                    &SolveRequest::new(Operator::Matrix(&a), &b).with_config(cfg),
                )
                .unwrap();
            }
            svc.run_until_idle(&mut c);
            svc.drain_outcomes_into(&mut sink);
            for o in sink.drain(..) {
                assert_eq!(o.disposition, Disposition::Completed);
                svc.recycle(o);
            }
            if salt == 0 {
                warm = svc.stats().payload_allocs;
                assert!(warm > 0, "cold round must have allocated carriers");
            }
        }
        assert_eq!(
            svc.stats().payload_allocs,
            warm,
            "warm serving rounds must allocate no payload buffers"
        );
    }

    #[test]
    fn service_rejects_store_path_conversions() {
        let n = 16;
        let a = laplace1d(n);
        let b = rhs(n, 0);
        let c = ctx();
        let mut svc = SolverService::new(ServiceConfig::default());
        let err = svc
            .submit(
                &c,
                &SolveRequest::new(Operator::Matrix(&a), &b).with_store(
                    crate::config::StorePath::Shadow(mpgmres_scalar::Precision::Fp32),
                ),
            )
            .unwrap_err();
        assert!(matches!(err, SolveError::UnsupportedCombination(_)));
    }
}
