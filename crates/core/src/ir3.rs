//! Three-precision GMRES-IR — the paper's future work (§VI: "Since
//! Kokkos is enabling support for half precision, we will also study ways
//! to incorporate a third level of precision into the GMRES-IR solver
//! while maintaining high accuracy").
//!
//! Structure: a two-level refinement ladder.
//!
//! ```text
//! outer (fp64): r = b - A x            <- true residual
//!   middle (fp32): GMRES-IR solves A u = r to ~fp32 accuracy,
//!     inner (fp16): each middle refinement cycle runs GMRES(m)
//!                   entirely in half precision
//! ```
//!
//! Each level normalizes its residual before casting down (GMRES is scale
//! invariant), which keeps fp16's 5-bit exponent in range — without that,
//! residuals below 6.1e-5 underflow to zero and the ladder collapses.
//! The middle level is this crate's [`GmresIr`] with `Lo = Half`,
//! `Hi = f32`; the outer loop is the same Algorithm 2 shape in fp64.

use mpgmres_gpusim::KernelClass;
use mpgmres_scalar::Half;
use serde::Serialize;

use crate::config::{IrConfig, StorePath};
use crate::context::{GpuContext, GpuMatrix};
use crate::ir::GmresIr;
use crate::precond::{Identity, Preconditioner};
use crate::service::{
    Disposition, Operator, RequestId, SolveError, SolveOutcome, SolveRequest, Solver,
};
use crate::status::{HistoryKind, HistoryPoint, SolveResult, SolveStatus};
use crate::stream::{region, RegionKey};

/// Configuration for the three-precision ladder.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Ir3Config {
    /// Inner (fp16) restart length.
    pub m: usize,
    /// Relative tolerance each middle (fp32) solve aims for — should sit
    /// near fp32's attainable floor; the default 1e-5 matches the paper's
    /// observation that fp32 solvers reach ~1e-5..1e-6.
    pub mid_rtol: f64,
    /// Cap on inner iterations per middle solve.
    pub mid_max_iters: usize,
    /// Outer (fp64) relative residual tolerance.
    pub rtol: f64,
    /// Cap on total inner iterations across everything.
    pub max_iters: usize,
    /// Storage path of the innermost (fp16-working) matrix operand,
    /// forwarded to the middle [`GmresIr`]'s configuration.
    pub store: StorePath,
}

impl Default for Ir3Config {
    fn default() -> Self {
        Ir3Config {
            m: 50,
            mid_rtol: 1e-5,
            mid_max_iters: 2_000,
            rtol: 1e-10,
            max_iters: 200_000,
            store: StorePath::Native,
        }
    }
}

/// Three-precision iterative refinement: fp16 inner GMRES, fp32 middle
/// refinement, fp64 outer refinement.
pub struct GmresIr3<'a> {
    a_hi: &'a GpuMatrix<f64>,
    a_mid: GpuMatrix<f32>,
    precond_lo: &'a dyn Preconditioner<Half>,
    cfg: Ir3Config,
}

impl<'a> Solver<'a, f64> for GmresIr3<'a> {
    /// Serve one [`SolveRequest`] with the identity fp16
    /// preconditioner; see [`GmresIr3::serve_with`] for an explicit
    /// low-precision preconditioner.
    fn serve(
        ctx: &mut GpuContext,
        req: &SolveRequest<'a, '_, f64>,
    ) -> Result<SolveOutcome<f64>, SolveError> {
        Self::serve_with(ctx, req, &Identity)
    }
}

impl<'a> GmresIr3<'a> {
    /// Build the ladder; fp32 and fp16 matrix copies are made here (the
    /// fp16 copy lives inside the middle solver). Panics on an
    /// unsupported combination; see [`GmresIr3::try_new`].
    pub fn new(
        a_hi: &'a GpuMatrix<f64>,
        precond_lo: &'a dyn Preconditioner<Half>,
        cfg: Ir3Config,
    ) -> Self {
        Self::try_new(a_hi, precond_lo, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`GmresIr3::new`] with typed errors: a non-native innermost
    /// storage path supports exactly the matrix-free preconditioners
    /// ([`Preconditioner::needs_matrix`] is `false`), mirroring
    /// [`crate::GmresIr::try_new`].
    pub fn try_new(
        a_hi: &'a GpuMatrix<f64>,
        precond_lo: &'a dyn Preconditioner<Half>,
        cfg: Ir3Config,
    ) -> Result<Self, SolveError> {
        if !matches!(cfg.store, StorePath::Native) && precond_lo.needs_matrix() {
            return Err(SolveError::UnsupportedCombination(format!(
                "preconditioner '{}' needs the plain matrix at apply time, \
                 which the packed innermost operand of a non-native storage \
                 path does not carry",
                precond_lo.describe()
            )));
        }
        Ok(GmresIr3 {
            a_hi,
            a_mid: a_hi.convert::<f32>(),
            precond_lo,
            cfg,
        })
    }

    /// Serve one [`SolveRequest`] through the three-precision ladder
    /// with an explicit fp16 preconditioner. The request's own
    /// preconditioner field lives in fp64 and cannot run in fp16
    /// arithmetic, so it must be the identity.
    pub fn serve_with(
        ctx: &mut GpuContext,
        req: &SolveRequest<'a, '_, f64>,
        precond_lo: &'a dyn Preconditioner<Half>,
    ) -> Result<SolveOutcome<f64>, SolveError> {
        req.validate()?;
        if !req.precond.is_identity() {
            return Err(SolveError::UnsupportedCombination(
                "GMRES-IR3 applies its preconditioner in fp16; pass it as \
                 `precond_lo` and leave the request's own preconditioner at \
                 the identity"
                    .into(),
            ));
        }
        let a = match req.operator {
            Operator::Matrix(a) => a,
            Operator::Store(_) => {
                return Err(SolveError::UnsupportedCombination(
                    "GMRES-IR3 needs the plain fp64 matrix for its outer \
                     residual; select a storage path for the innermost \
                     operand via the request's `store` field instead"
                        .into(),
                ))
            }
        };
        let cfg = Ir3Config {
            m: req.config.m,
            rtol: req.config.rtol,
            max_iters: req.config.max_iters,
            store: req.store,
            ..Ir3Config::default()
        };
        let ladder = Self::try_new(a, precond_lo, cfg)?;
        let n = a.n();
        let mut x = req
            .x0
            .map(|x| x.to_vec())
            .unwrap_or_else(|| vec![0.0f64; n]);
        let start = ctx.elapsed();
        let result = ladder.solve(ctx, req.rhs, &mut x);
        Ok(SolveOutcome {
            id: RequestId(0),
            x,
            result: Some(result),
            disposition: Disposition::Completed,
            degraded: None,
            queued_seconds: 0.0,
            solve_seconds: ctx.elapsed() - start,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &Ir3Config {
        &self.cfg
    }

    /// Solve `A x = b`; `x` carries the initial guess in, solution out.
    pub fn solve(&self, ctx: &mut GpuContext, b: &[f64], x: &mut [f64]) -> SolveResult {
        let n = self.a_hi.n();
        // The request surface reports these as SolveError::DimensionMismatch;
        // callers reaching the raw driver keep the debug-build guard.
        debug_assert_eq!(b.len(), n);
        debug_assert_eq!(x.len(), n);

        let mid_cfg = IrConfig {
            m: self.cfg.m,
            rtol: self.cfg.mid_rtol,
            max_iters: self.cfg.mid_max_iters,
            inner_early_exit: None,
            record_history: false,
            store: self.cfg.store,
        };
        let middle = GmresIr::<Half, f32>::new(&self.a_mid, self.precond_lo, mid_cfg);
        // The fp64 refinement step records as its own region, keyed on
        // the innermost storage path so ladders over different stores
        // land on distinct cached graphs.
        let tag = middle.store_lo().map_or(0, |s| s.tag().code());
        let outer_residual = |ctx: &mut GpuContext, x: &[f64], r: &mut [f64], norm: &mut [f64]| {
            let mut st = ctx.stream_for(RegionKey::new(region::IR3_OUTER, n).with_tag(tag));
            let ah = st.matrix(self.a_hi);
            let bh = st.slice(b);
            let xh = st.slice(x);
            let rh = st.slice_mut(r);
            let nh = st.slice_mut(norm);
            st.residual_as(KernelClass::ResidualHi, ah, bh, xh, rh);
            st.norm2_into_as(KernelClass::ResidualHi, rh.read(), nh.at(0));
            st.sync();
        };

        let mut history: Vec<HistoryPoint> = Vec::new();
        let mut r = vec![0.0f64; n];
        let mut r_mid = vec![0.0f32; n];
        let mut u_mid = vec![0.0f32; n];
        let mut u_hi = vec![0.0f64; n];
        let mut nbuf = vec![0.0f64; 1];

        outer_residual(ctx, x, &mut r, &mut nbuf);
        let mut rnorm = nbuf[0];
        let r0 = rnorm;
        if r0 == 0.0 {
            return SolveResult {
                status: SolveStatus::Converged,
                iterations: 0,
                restarts: 0,
                final_relative_residual: 0.0,
                history,
            };
        }
        if !r0.is_finite() {
            return SolveResult {
                status: SolveStatus::Breakdown,
                iterations: 0,
                restarts: 0,
                final_relative_residual: f64::NAN,
                history,
            };
        }

        let mut total = 0usize;
        let mut outer = 0usize;
        let status;
        loop {
            let rel = rnorm / r0;
            history.push(HistoryPoint {
                iteration: total,
                relative_residual: rel,
                kind: HistoryKind::Explicit,
            });
            if rel <= self.cfg.rtol {
                status = SolveStatus::Converged;
                break;
            }
            if total >= self.cfg.max_iters {
                status = SolveStatus::MaxIters;
                break;
            }

            // Normalize, cast fp64 -> fp32, run the middle IR solver.
            ctx.scal(1.0 / rnorm, &mut r);
            ctx.cast_host(&r, &mut r_mid);
            for u in u_mid.iter_mut() {
                *u = 0.0;
            }
            let mid_res = middle.solve(ctx, &r_mid, &mut u_mid);
            if mid_res.iterations == 0 {
                status = SolveStatus::Breakdown;
                break;
            }
            total += mid_res.iterations;
            outer += 1;

            ctx.cast_host(&u_mid, &mut u_hi);
            ctx.axpy(rnorm, &u_hi, x);
            outer_residual(ctx, x, &mut r, &mut nbuf);
            let new_norm = nbuf[0];
            if !new_norm.is_finite() {
                status = SolveStatus::Breakdown;
                break;
            }
            if new_norm >= rnorm * 0.999 {
                // The middle+inner ladder can no longer reduce the true
                // residual (fp16 too weak for this operator): stop rather
                // than loop forever.
                rnorm = new_norm;
                status = SolveStatus::MaxIters;
                break;
            }
            rnorm = new_norm;
        }

        SolveResult {
            status,
            iterations: total,
            restarts: outer,
            final_relative_residual: rnorm / r0,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::Identity;
    use mpgmres_gpusim::DeviceModel;
    use mpgmres_la::coo::Coo;
    use mpgmres_la::vec_ops::ReductionOrder;

    fn ctx() -> GpuContext {
        GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential)
    }

    fn laplace1d(n: usize) -> GpuMatrix<f64> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        GpuMatrix::new(coo.into_csr())
    }

    #[test]
    fn three_precision_ladder_reaches_fp64_accuracy() {
        let n = 32;
        let a = laplace1d(n);
        let b = vec![1.0f64; n];
        let mut x = vec![0.0f64; n];
        let cfg = Ir3Config {
            m: 32,
            ..Ir3Config::default()
        };
        let res = GmresIr3::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x);
        assert_eq!(
            res.status,
            SolveStatus::Converged,
            "rel {}",
            res.final_relative_residual
        );
        let mut r = vec![0.0; n];
        a.csr().residual(&b, &x, &mut r);
        let rel = mpgmres_la::vec_ops::norm2(&r) / mpgmres_la::vec_ops::norm2(&b);
        assert!(rel <= 1.5e-10, "true residual {rel:e}");
    }

    #[test]
    fn ladder_uses_both_cast_levels() {
        let n = 24;
        let a = laplace1d(n);
        let b = vec![1.0f64; n];
        let mut x = vec![0.0f64; n];
        let mut c = ctx();
        let cfg = Ir3Config {
            m: 24,
            ..Ir3Config::default()
        };
        let res = GmresIr3::new(&a, &Identity, cfg).solve(&mut c, &b, &mut x);
        assert_eq!(res.status, SolveStatus::Converged);
        // Outer casts f64<->f32 and middle casts f32<->f16 both happen.
        let casts = c.profiler().class_stats(KernelClass::CastHost).calls;
        assert!(casts as usize >= 2 * res.restarts + 2, "casts {casts}");
        assert!(res.restarts >= 1);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = laplace1d(8);
        let b = vec![0.0f64; 8];
        let mut x = vec![0.0f64; 8];
        let res = GmresIr3::new(&a, &Identity, Ir3Config::default()).solve(&mut ctx(), &b, &mut x);
        assert_eq!(res.status, SolveStatus::Converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn stagnation_terminates_instead_of_spinning() {
        // An operator too hard for fp16 inner cycles: big dynamic range
        // swamps half precision. The ladder must stop with a non-converged
        // status, not loop forever.
        let n = 24;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            // widely varying diagonal, fp16-hostile
            coo.push(i, i, if i % 2 == 0 { 1.0 } else { 3000.0 });
            if i > 0 {
                coo.push(i, i - 1, -0.5);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -0.5);
            }
        }
        let a = GpuMatrix::new(coo.into_csr());
        let b = vec![1.0f64; n];
        let mut x = vec![0.0f64; n];
        let cfg = Ir3Config {
            m: 8,
            mid_max_iters: 64,
            max_iters: 4_000,
            ..Ir3Config::default()
        };
        let res = GmresIr3::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x);
        // Either it manages (fp16 can be surprisingly scrappy) or it
        // terminates cleanly; both are acceptable, spinning is not.
        assert!(res.iterations <= 4_000 + cfg.mid_max_iters);
    }
}
