//! Batched multi-RHS restarted GMRES(m): `k` independent solves in
//! lockstep, sharing kernel launches.
//!
//! [`BlockGmres`] solves `A X = B` for a block of `k` right-hand sides.
//! It is **not** a block-Krylov method: each column keeps its own Krylov
//! basis, Hessenberg recurrence, and convergence state, and the solver
//! runs the `k` state machines in lockstep so that every iteration's
//! SpMV becomes one SpMM (the matrix is read once per block instead of
//! once per column — the §V-D bandwidth argument, and the kernel shape
//! Aliaga et al.'s multi-RHS work targets on GPUs) and the CGS2
//! projections become batched GEMM-shaped calls.
//!
//! # Determinism contract
//!
//! Because every batched kernel preserves the per-column operation order
//! of its single-vector counterpart (see `mpgmres-backend`'s multi-RHS
//! contract), each column's solution, iteration history, and terminal
//! status are **bit-for-bit identical** to an independent [`Gmres`]
//! solve of that column, on every backend. With `k = 1` the simulated
//! timing report is also bit-identical to [`Gmres`] (every block cost
//! collapses to the single-vector cost at width 1).
//!
//! # Deflation
//!
//! Columns converge at different iterations. A column whose cycle ends
//! in a terminal state (converged, breakdown, iteration cap) is
//! *deflated*: it stops participating and subsequent batched kernels run
//! over the compacted block of still-active columns, so a nearly-done
//! block doesn't keep paying full-width kernels. Within a cycle, a
//! column that exits early (implicit convergence or breakdown) simply
//! idles until the cycle barrier — cycles stay globally synchronized,
//! which is what keeps the batched projections a uniform width.
//!
//! [`Gmres`]: crate::gmres::Gmres

use crate::config::{GmresConfig, OrthoMethod};
use crate::context::{GpuContext, GpuMatrix};
use crate::precond::Preconditioner;
use crate::status::{HistoryKind, HistoryPoint, SolveResult, SolveStatus};
use mpgmres_backend::BackendScalar;
use mpgmres_la::givens::GivensLsq;
use mpgmres_la::multivec::MultiVec;
use mpgmres_la::multivector::MultiVector;

/// Batched multi-RHS GMRES(m): `k` single-RHS solves in lockstep.
pub struct BlockGmres<'a, S: BackendScalar> {
    a: &'a GpuMatrix<S>,
    precond: &'a dyn Preconditioner<S>,
    cfg: GmresConfig,
}

/// Per-column solver state (one lane per right-hand side).
struct Lane<S> {
    /// This lane's own Krylov basis (n x (m+1)).
    v: MultiVector<S>,
    /// Current Hessenberg column assembly buffer (m+2).
    hcol: Vec<S>,
    lsq: Option<GivensLsq<S>>,
    gamma: S,
    scale: f64,
    total_iters: usize,
    restarts: usize,
    history: Vec<HistoryPoint>,
    final_rel: f64,
    /// Pending terminal status raised inside a cycle (breakdown paths).
    pending: Option<SolveStatus>,
    /// Still inside the current cycle's Arnoldi loop.
    in_cycle: bool,
    implicit_claims_convergence: bool,
    lucky: bool,
}

impl<'a, S: BackendScalar> BlockGmres<'a, S> {
    /// Build a solver for `A X = B` with a right preconditioner shared
    /// by all columns.
    pub fn new(a: &'a GpuMatrix<S>, precond: &'a dyn Preconditioner<S>, cfg: GmresConfig) -> Self {
        assert!(cfg.m >= 1, "restart length must be at least 1");
        BlockGmres { a, precond, cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GmresConfig {
        &self.cfg
    }

    /// Solve `A X = B` starting from the initial guesses in `x`; the
    /// solutions are written back into `x`. Returns one [`SolveResult`]
    /// per column, each bit-identical to an independent single-RHS
    /// solve of that column.
    pub fn solve(
        &self,
        ctx: &mut GpuContext,
        b: &MultiVec<S>,
        x: &mut MultiVec<S>,
    ) -> Vec<SolveResult> {
        let n = self.a.n();
        let k = b.k();
        assert_eq!(b.n(), n, "rhs row count mismatch");
        assert_eq!(x.n(), n, "solution row count mismatch");
        assert_eq!(x.k(), k, "solution column count mismatch");
        let m = self.cfg.m;

        // Shared workspaces. `z` holds the (preconditioned) directions
        // fed to SpMM, `w` the SpMM output being orthogonalized; both
        // are compacted over the active columns each step.
        let mut r = MultiVec::<S>::zeros(n, k);
        let mut z = MultiVec::<S>::zeros(n, k);
        let mut w = MultiVec::<S>::zeros(n, k);
        let mut u = vec![S::zero(); n];
        let mut zvec = vec![S::zero(); n];
        let mut h1 = vec![S::zero(); k * m.max(1)];
        let mut h2 = vec![S::zero(); k * m.max(1)];
        let mut norms = vec![S::zero(); k];

        // Initial residuals R = B - A X and reference norms.
        for l in 0..k {
            ctx.residual_as(
                mpgmres_gpusim::KernelClass::SpMV,
                self.a,
                b.col(l),
                x.col(l),
                r.col_mut(l),
            );
        }
        ctx.block_norm2(&r, k, &mut norms);

        let mut lanes: Vec<Lane<S>> = Vec::with_capacity(k);
        let mut results: Vec<Option<SolveResult>> = (0..k).map(|_| None).collect();

        for (l, result) in results.iter_mut().enumerate() {
            let gamma = norms[l];
            let r0_norm = gamma.to_f64();
            let mut history: Vec<HistoryPoint> = Vec::new();
            if !r0_norm.is_finite() {
                *result = Some(SolveResult {
                    status: SolveStatus::Breakdown,
                    iterations: 0,
                    restarts: 0,
                    final_relative_residual: f64::NAN,
                    history: Vec::new(),
                });
            } else if r0_norm == 0.0 {
                *result = Some(SolveResult {
                    status: SolveStatus::Converged,
                    iterations: 0,
                    restarts: 0,
                    final_relative_residual: 0.0,
                    history: Vec::new(),
                });
            } else {
                if self.cfg.record_history {
                    history.push(HistoryPoint {
                        iteration: 0,
                        relative_residual: 1.0,
                        kind: HistoryKind::Explicit,
                    });
                }
                if self.cfg.rtol >= 1.0 {
                    *result = Some(SolveResult {
                        status: SolveStatus::Converged,
                        iterations: 0,
                        restarts: 0,
                        final_relative_residual: 1.0,
                        history: std::mem::take(&mut history),
                    });
                }
            }
            lanes.push(Lane {
                v: MultiVector::zeros(if result.is_none() { n } else { 0 }, m + 1),
                hcol: vec![S::zero(); m + 2],
                lsq: None,
                gamma,
                scale: r0_norm,
                total_iters: 0,
                restarts: 0,
                history,
                final_rel: 1.0,
                pending: None,
                in_cycle: false,
                implicit_claims_convergence: false,
                lucky: false,
            });
        }

        loop {
            // Columns still solving, in lane order; columns whose lane
            // finished are deflated out of every batched kernel below.
            let mut cycle: Vec<usize> = Vec::with_capacity(k);
            for (l, result) in results.iter_mut().enumerate() {
                if result.is_some() {
                    continue;
                }
                let lane = &mut lanes[l];
                if lane.total_iters >= self.cfg.max_iters {
                    // Mirror of Gmres's outer-loop-top cap check.
                    *result = Some(SolveResult {
                        status: SolveStatus::MaxIters,
                        iterations: lane.total_iters,
                        restarts: lane.restarts,
                        final_relative_residual: lane.final_rel,
                        history: std::mem::take(&mut lane.history),
                    });
                    continue;
                }
                cycle.push(l);
            }
            if cycle.is_empty() {
                break;
            }

            // Start a cycle on every participating lane: v1 = r / gamma.
            for &l in &cycle {
                let lane = &mut lanes[l];
                lane.v.col_mut(0).copy_from_slice(r.col(l));
                let inv_gamma = S::from_f64(1.0 / lane.gamma.to_f64());
                ctx.scal(inv_gamma, lane.v.col_mut(0));
                lane.lsq = Some(GivensLsq::new(m, lane.gamma));
                lane.in_cycle = true;
                lane.implicit_claims_convergence = false;
                lane.lucky = false;
            }

            for j in 0..m {
                // Lanes still iterating this cycle (lockstep: all share j).
                let act: Vec<usize> = cycle
                    .iter()
                    .copied()
                    .filter(|&l| lanes[l].in_cycle && lanes[l].total_iters < self.cfg.max_iters)
                    .collect();
                if act.is_empty() {
                    break;
                }
                let kc = act.len();
                let ncols = j + 1;

                // Direction block: Z[:, c] = M^{-1} v_j^{(c)}.
                for (c, &l) in act.iter().enumerate() {
                    if self.precond.is_identity() {
                        z.col_mut(c).copy_from_slice(lanes[l].v.col(j));
                    } else {
                        self.precond
                            .apply(ctx, self.a, lanes[l].v.col(j), z.col_mut(c));
                    }
                }
                // W = A Z: one matrix read for all kc columns.
                ctx.spmm(self.a, &z, kc, &mut w);

                // Blocked orthogonalization against each lane's basis.
                match self.cfg.ortho {
                    OrthoMethod::Cgs2 => {
                        let vs: Vec<&MultiVector<S>> = act.iter().map(|&l| &lanes[l].v).collect();
                        ctx.block_gemv_t(&vs, ncols, &w, &mut h1[..kc * ncols]);
                        ctx.block_gemv_n_sub(&vs, ncols, &h1[..kc * ncols], &mut w);
                        ctx.block_gemv_t(&vs, ncols, &w, &mut h2[..kc * ncols]);
                        ctx.block_gemv_n_sub(&vs, ncols, &h2[..kc * ncols], &mut w);
                    }
                    OrthoMethod::Cgs1 => {
                        let vs: Vec<&MultiVector<S>> = act.iter().map(|&l| &lanes[l].v).collect();
                        ctx.block_gemv_t(&vs, ncols, &w, &mut h1[..kc * ncols]);
                        ctx.block_gemv_n_sub(&vs, ncols, &h1[..kc * ncols], &mut w);
                    }
                    OrthoMethod::Mgs => {
                        // 2j skinny kernels per lane; nothing to batch.
                        for (c, &l) in act.iter().enumerate() {
                            for i in 0..ncols {
                                let hi = ctx.dot(lanes[l].v.col(i), w.col(c));
                                ctx.axpy(-hi, lanes[l].v.col(i), w.col_mut(c));
                                h1[c * ncols + i] = hi;
                            }
                        }
                    }
                }
                ctx.block_norm2(&w, kc, &mut norms);

                for (c, &l) in act.iter().enumerate() {
                    let lane = &mut lanes[l];
                    match self.cfg.ortho {
                        OrthoMethod::Cgs2 => {
                            for i in 0..ncols {
                                lane.hcol[i] = h1[c * ncols + i] + h2[c * ncols + i];
                            }
                        }
                        OrthoMethod::Cgs1 | OrthoMethod::Mgs => {
                            lane.hcol[..ncols].copy_from_slice(&h1[c * ncols..(c + 1) * ncols]);
                        }
                    }
                    let hj1 = norms[c];
                    lane.hcol[ncols] = hj1;
                    lane.total_iters += 1;
                    ctx.charge_iteration_host(j);

                    if !hj1.is_finite() {
                        lane.pending = Some(SolveStatus::Breakdown);
                        lane.in_cycle = false;
                        continue;
                    }

                    let implicit = lane
                        .lsq
                        .as_mut()
                        .expect("lane in cycle has an lsq")
                        .push_column(&lane.hcol[..ncols + 1]);
                    let implicit_rel = implicit.to_f64() / lane.scale;

                    if self.cfg.record_history {
                        lane.history.push(HistoryPoint {
                            iteration: lane.total_iters,
                            relative_residual: implicit_rel,
                            kind: HistoryKind::Implicit,
                        });
                    }

                    if hj1.to_f64() <= lane.scale * f64::from(f32::MIN_POSITIVE) * f64::EPSILON {
                        lane.lucky = true;
                        lane.implicit_claims_convergence = true;
                        lane.in_cycle = false;
                        continue;
                    }
                    lane.v.col_mut(j + 1).copy_from_slice(w.col(c));
                    let inv = S::from_f64(1.0 / hj1.to_f64());
                    ctx.scal(inv, lane.v.col_mut(j + 1));

                    if self.cfg.monitor_implicit && implicit_rel <= self.cfg.rtol {
                        lane.implicit_claims_convergence = true;
                        lane.in_cycle = false;
                    }
                }
            }

            // Cycle barrier: every participating lane assembles its
            // update x += M^{-1} V_kc y, then recomputes its explicit
            // residual.
            for &l in &cycle {
                let lane = &mut lanes[l];
                lane.in_cycle = false;
                let lsq = lane.lsq.as_ref().expect("cycle lane has an lsq");
                let kc = lsq.ncols();
                if kc > 0 {
                    if lsq.is_degenerate() {
                        lane.pending = Some(SolveStatus::Breakdown);
                    } else {
                        let y = lsq.solve(kc);
                        ctx.charge_restart_host(kc);
                        for ui in u.iter_mut() {
                            *ui = S::zero();
                        }
                        ctx.gemv_n_add(&lane.v, kc, &y, &mut u);
                        if self.precond.is_identity() {
                            ctx.axpy(S::one(), &u, x.col_mut(l));
                        } else {
                            self.precond.apply(ctx, self.a, &u, &mut zvec);
                            ctx.axpy(S::one(), &zvec, x.col_mut(l));
                        }
                    }
                }
                lane.restarts += 1;
                ctx.residual_as(
                    mpgmres_gpusim::KernelClass::SpMV,
                    self.a,
                    b.col(l),
                    x.col(l),
                    r.col_mut(l),
                );
                lane.gamma = ctx.norm2(r.col(l));
            }

            // Per-lane status resolution (the tail of Gmres's outer loop);
            // terminal lanes are deflated.
            for &l in &cycle {
                let lane = &mut lanes[l];
                let explicit_rel = lane.gamma.to_f64() / lane.scale;
                lane.final_rel = explicit_rel;
                if self.cfg.record_history {
                    lane.history.push(HistoryPoint {
                        iteration: lane.total_iters,
                        relative_residual: explicit_rel,
                        kind: HistoryKind::Explicit,
                    });
                }
                let status = if let Some(s) = lane.pending {
                    // Breakdown paths: report convergence if the explicit
                    // residual happens to clear the tolerance.
                    Some(if explicit_rel <= self.cfg.rtol {
                        SolveStatus::Converged
                    } else {
                        s
                    })
                } else if !explicit_rel.is_finite() {
                    Some(SolveStatus::Breakdown)
                } else if explicit_rel <= self.cfg.rtol {
                    Some(SolveStatus::Converged)
                } else if (lane.implicit_claims_convergence || lane.lucky)
                    && explicit_rel > self.cfg.loa_factor * self.cfg.rtol
                {
                    Some(SolveStatus::LossOfAccuracy)
                } else if lane.total_iters >= self.cfg.max_iters {
                    Some(SolveStatus::MaxIters)
                } else {
                    None
                };
                if let Some(status) = status {
                    results[l] = Some(SolveResult {
                        status,
                        iterations: lane.total_iters,
                        restarts: lane.restarts,
                        final_relative_residual: lane.final_rel,
                        history: std::mem::take(&mut lane.history),
                    });
                }
            }
        }

        results
            .into_iter()
            .map(|r| r.expect("every column resolved"))
            .collect()
    }
}
