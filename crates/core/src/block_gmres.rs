//! Batched multi-RHS restarted GMRES(m): `k` independent solves in
//! lockstep, sharing kernel launches — optionally software-pipelined.
//!
//! [`BlockGmres`] solves `A X = B` for a block of `k` right-hand sides.
//! It is **not** a block-Krylov method: each column keeps its own Krylov
//! basis, Hessenberg recurrence, and convergence state, and the solver
//! runs the `k` state machines in lockstep so that every iteration's
//! SpMV becomes one SpMM (the matrix is read once per block instead of
//! once per column — the §V-D bandwidth argument, and the kernel shape
//! Aliaga et al.'s multi-RHS work targets on GPUs) and the CGS2
//! projections become batched GEMM-shaped calls.
//!
//! # Software pipelining (`GmresConfig::pipeline_depth = 1`)
//!
//! The lockstep driver syncs every lane at every iteration to run its
//! host-side Givens rotations and convergence test — the host step
//! serializes against the device stream, which is exactly the
//! launch-latency exposure the paper's GPU runs pay. The pipelined
//! variant defers each lane's host step one iteration: iteration `j`'s
//! Givens/update bookkeeping is recorded into iteration `j+1`'s region
//! as a *host node* whose read spans are the previous-parity
//! norm/coefficient buffers (`h`/`norms` ping-pong by iteration
//! parity), so the dependency DAG itself proves the lagged host work
//! conflicts with nothing the in-flight SpMM + blocked-CGS2 kernels
//! touch — and the overlap-aware timeline hides the host latency
//! behind them. At the cycle barrier the per-lane least-squares solves
//! become host nodes feeding each lane's own update chain, so lane
//! `l`'s host step overlaps the other lanes' device work.
//!
//! The pipelining changes *when the simulated timeline charges the host
//! work*, never what executes: the arithmetic runs in the identical
//! order as lockstep, so per-lane results are bit-identical by
//! construction (pinned in `stream_parity.rs`) and the serial
//! accounting is unchanged — only `overlap_ratio()` improves.
//!
//! # Determinism contract
//!
//! Because every batched kernel preserves the per-column operation order
//! of its single-vector counterpart (see `mpgmres-backend`'s multi-RHS
//! contract), each column's solution, iteration history, and terminal
//! status are **bit-for-bit identical** to an independent [`Gmres`]
//! solve of that column, on every backend and at every pipeline depth.
//! With `k = 1` the simulated timing report is also bit-identical to
//! [`Gmres`] (every block cost collapses to the single-vector cost at
//! width 1).
//!
//! # Deflation
//!
//! Columns converge at different iterations. A column whose cycle ends
//! in a terminal state (converged, breakdown, iteration cap) is
//! *deflated*: it stops participating and subsequent batched kernels run
//! over the compacted block of still-active columns, so a nearly-done
//! block doesn't keep paying full-width kernels. Within a cycle, a
//! column that exits early (implicit convergence or breakdown) simply
//! idles until the cycle barrier — cycles stay globally synchronized,
//! which is what keeps the batched projections a uniform width.
//!
//! [`Gmres`]: crate::gmres::Gmres

use crate::config::{GmresConfig, OrthoMethod, StorePath};
use crate::context::{GpuContext, GpuMatrix, GpuStore};
use crate::precond::{Identity, Preconditioner};
use crate::service::{
    Disposition, Operator, RequestId, SolveError, SolveOutcome, SolveRequest, Solver,
};
use crate::status::{HistoryKind, HistoryPoint, SolveResult, SolveStatus};
use crate::stream::{
    region, ArgSlice, ArgSliceMut, BasisMut, BlockMut, BlockRef, MatRef, RegionKey, StoreRef,
    Stream,
};
use mpgmres_backend::BackendScalar;
use mpgmres_la::basis::BasisStore;
use mpgmres_la::givens::GivensLsq;
use mpgmres_la::multivec::MultiVec;

/// The solver's system operator: either a plain working-precision
/// [`GpuMatrix`] (the baseline) or a [`GpuStore`] whose values ride a
/// low-precision storage path while the vectors stay in `S`.
enum Operand<'a, S> {
    Plain(&'a GpuMatrix<S>),
    Store(&'a GpuStore<S>),
}

/// A registered operand handle inside one recording region.
#[derive(Clone, Copy)]
enum OpRef<S> {
    Mat(MatRef<S>),
    Store(StoreRef<S>),
}

impl<'a, S: BackendScalar> Operand<'a, S> {
    fn n(&self) -> usize {
        match self {
            Operand::Plain(a) => a.n(),
            Operand::Store(a) => a.n(),
        }
    }

    /// Storage-precision tag for the solver's [`RegionKey`]s: 0 (the
    /// untagged baseline, preserving the plain path's cache keys) for a
    /// matrix operand, the store's [`PrecisionTag::code`] otherwise —
    /// so a solver re-run over a different storage precision records
    /// distinct cached graphs.
    ///
    /// [`PrecisionTag::code`]: mpgmres_scalar::PrecisionTag::code
    fn tag8(&self) -> u8 {
        match self {
            Operand::Plain(_) => 0,
            Operand::Store(a) => a.tag().code(),
        }
    }

    /// The plain matrix, for the preconditioner interface. `None` on
    /// store paths — the boundary rejects preconditioners that need the
    /// matrix there (`needs_matrix()`), so applies receiving `None` are
    /// ones that work without it (block Jacobi, cast wrappers).
    fn plain_opt(&self) -> Option<&'a GpuMatrix<S>> {
        match self {
            Operand::Plain(a) => Some(a),
            Operand::Store(_) => None,
        }
    }

    fn register<'c>(&self, st: &mut Stream<'c>) -> OpRef<S>
    where
        'a: 'c,
    {
        match *self {
            Operand::Plain(a) => OpRef::Mat(st.matrix(a)),
            Operand::Store(a) => OpRef::Store(st.store(a)),
        }
    }

    fn eager_spmm(&self, ctx: &mut GpuContext, x: &MultiVec<S>, k: usize, y: &mut MultiVec<S>) {
        match *self {
            Operand::Plain(a) => ctx.spmm(a, x, k, y),
            Operand::Store(a) => ctx.store_spmm(a, x, k, y),
        }
    }
}

/// Record the fused residual `r = b - A x` against either operand kind
/// (both charge as a solver SpMV).
fn rec_residual<S: BackendScalar>(
    st: &mut Stream<'_>,
    op: OpRef<S>,
    b: ArgSlice<S>,
    x: ArgSlice<S>,
    r: ArgSliceMut<S>,
) {
    match op {
        OpRef::Mat(a) => st.residual_as(mpgmres_gpusim::KernelClass::SpMV, a, b, x, r),
        OpRef::Store(a) => st.store_residual_as(mpgmres_gpusim::KernelClass::SpMV, a, b, x, r),
    }
}

/// Record the batched SpMM against either operand kind.
fn rec_spmm<S: BackendScalar>(
    st: &mut Stream<'_>,
    op: OpRef<S>,
    x: BlockRef<S>,
    k: usize,
    y: BlockMut<S>,
) {
    match op {
        OpRef::Mat(a) => st.spmm(a, x, k, y),
        OpRef::Store(a) => st.store_spmm(a, x, k, y),
    }
}

static IDENT: Identity = Identity;

/// Batched multi-RHS GMRES(m): `k` single-RHS solves in lockstep, with
/// optional software-pipelined host steps (`pipeline_depth = 1`).
pub struct BlockGmres<'a, S: BackendScalar> {
    a: Operand<'a, S>,
    precond: &'a dyn Preconditioner<S>,
    cfg: GmresConfig,
    /// Storage code of the basis this config allocates (0 = native) —
    /// resolved once here because a `Compressed` policy at or above the
    /// working precision degenerates to native.
    basis_code: u8,
}

/// Per-column solver state (one lane per right-hand side).
///
/// `pub(crate)` so the serving engine ([`crate::service`]) can hold lane
/// slots across admission epochs; all mutation goes through
/// [`BlockGmres`] methods, which keeps the bit-parity contract in one
/// place.
pub(crate) struct Lane<S> {
    /// This lane's own Krylov basis (n x (m+1)), behind the solver's
    /// storage policy: native lanes keep the classic full-width layout,
    /// compressed lanes store columns narrow and promote on read.
    v: BasisStore<S>,
    /// Current Hessenberg column assembly buffer (m+2).
    hcol: Vec<S>,
    lsq: Option<GivensLsq<S>>,
    gamma: S,
    scale: f64,
    total_iters: usize,
    restarts: usize,
    history: Vec<HistoryPoint>,
    final_rel: f64,
    /// Pending terminal status raised inside a cycle (breakdown paths).
    pending: Option<SolveStatus>,
    /// Still inside the current cycle's Arnoldi loop.
    in_cycle: bool,
    implicit_claims_convergence: bool,
    lucky: bool,
    /// Per-lane stopping tolerance. Batch solves copy the solver config;
    /// the serving engine seeds each admitted request's own tolerance.
    /// Tolerances only steer stopping decisions — the arithmetic each
    /// lane runs is tolerance-independent, so mixed-tolerance lanes keep
    /// the per-lane bit-parity contract.
    rtol: f64,
    /// Per-lane iteration cap (same seeding rule as `rtol`).
    max_iters: usize,
}

/// Shared lockstep workspaces, sized once for `(n, k, m)` and reused
/// across cycles — and, in the serving engine, across admission epochs
/// (reuse is what keeps the recorded regions' buffer registrations
/// shape-stable between cycles).
pub(crate) struct LockstepWs<S> {
    /// Current residual block (n x k), one column per lane slot.
    pub(crate) r: MultiVec<S>,
    /// Preconditioned directions Z (n x k, compacted to active lanes).
    z: MultiVec<S>,
    /// SpMM output W = A Z (n x k, compacted to active lanes).
    w: MultiVec<S>,
    /// Barrier update accumulators (n x k).
    u: MultiVec<S>,
    /// Least-squares coefficients, one m-column per lane.
    ymat: MultiVec<S>,
    /// Scratch vector for eager preconditioner applications.
    zvec: Vec<S>,
    /// First/second-pass projection coefficients (k * m each).
    h1: Vec<S>,
    h2: Vec<S>,
    /// Per-active-lane candidate-basis norms.
    pub(crate) norms: Vec<S>,
    /// Per-lane explicit residual norms at the cycle barrier.
    gammas: Vec<S>,
}

impl<S: BackendScalar> LockstepWs<S> {
    pub(crate) fn new(n: usize, k: usize, m: usize) -> Self {
        LockstepWs {
            r: MultiVec::zeros(n, k),
            z: MultiVec::zeros(n, k),
            w: MultiVec::zeros(n, k),
            u: MultiVec::zeros(n, k),
            ymat: MultiVec::zeros(m, k),
            zvec: vec![S::zero(); n],
            h1: vec![S::zero(); k * m.max(1)],
            h2: vec![S::zero(); k * m.max(1)],
            norms: vec![S::zero(); k],
            gammas: vec![S::zero(); k],
        }
    }
}

/// Collect `&mut lane.v` for the lane indices in `which` (ascending) —
/// the piecewise-mutable gather behind the fused lane-set basis
/// extensions and the pipelined regions' exclusive basis registrations.
/// The lockstep driver always builds its lane sets in ascending lane
/// order, and the fused lane-set kernels pair sources with destinations
/// by position — this helper asserts that invariant instead of letting
/// an out-of-order set silently drop a lane.
fn lane_vs_mut<'l, S: BackendScalar>(
    lanes: &'l mut [Lane<S>],
    which: &[usize],
) -> Vec<&'l mut BasisStore<S>> {
    debug_assert!(
        which.windows(2).all(|w| w[0] < w[1]),
        "lane sets must be ascending"
    );
    let mut out = Vec::with_capacity(which.len());
    let mut it = which.iter().copied().peekable();
    for (li, lane) in lanes.iter_mut().enumerate() {
        if it.peek() == Some(&li) {
            it.next();
            out.push(&mut lane.v);
        }
    }
    assert_eq!(out.len(), which.len(), "lane set not found in order");
    out
}

/// Split a parity pair into `(previous, current)` for iteration parity
/// `cur` — the ping-pong buffers of the pipelined driver.
fn parity_split<T>(pair: &mut [T; 2], cur: usize) -> (&T, &mut T) {
    let (lo, hi) = pair.split_at_mut(1);
    if cur == 0 {
        (&hi[0], &mut lo[0])
    } else {
        (&lo[0], &mut hi[0])
    }
}

/// Bitmask of the update-lane set, packed into a `RegionKey` field (the
/// per-lane update widths live only in payloads, so the mask is the
/// only remaining shape discriminator of a barrier region).
fn upds_mask(upds: &[(usize, usize)]) -> u64 {
    upds.iter().fold(0u64, |m, &(l, _)| m | (1u64 << l))
}

/// Fold a pipelined region's deferred-work discriminators (the pending
/// and store lane masks, whose sets shape the drained host/extension
/// ops but have no dedicated `RegionKey` field) into the spare bits of
/// the `k` field. Deflation transitions then get their own cache
/// entries instead of ping-ponging one key between shapes; a hash
/// collision only costs a verified fallback, never correctness.
pub(crate) fn pipe_disc(width: usize, masks: [u64; 2]) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the masks
    for m in masks {
        h = (h ^ m).wrapping_mul(0x100_0000_01b3);
    }
    (width as u64 ^ (h << 8)) as usize
}

impl<'a, S: BackendScalar> Solver<'a, S> for BlockGmres<'a, S> {
    /// Serve one [`SolveRequest`] through this driver (k = 1). A plain
    /// matrix operand with a non-native [`StorePath`] gets a store
    /// built on the spot; every outcome is bit-identical to the
    /// equivalent ahead-of-time construction.
    fn serve(
        ctx: &mut GpuContext,
        req: &SolveRequest<'a, '_, S>,
    ) -> Result<SolveOutcome<S>, SolveError> {
        req.validate()?;
        match (req.operator, req.store) {
            (Operator::Matrix(a), StorePath::Native) => {
                let solver = Self::try_new(a, req.precond, req.config)?;
                Ok(solver.serve_one(ctx, req))
            }
            (Operator::Matrix(a), StorePath::Shadow(p)) => {
                let store = GpuStore::shadow_of(a, p);
                let solver = BlockGmres::try_over_store(&store, req.precond, req.config)?;
                Ok(solver.serve_one(ctx, req))
            }
            (Operator::Matrix(a), StorePath::Split(t)) => {
                let store = GpuStore::split_of(a, t);
                let solver = BlockGmres::try_over_store(&store, req.precond, req.config)?;
                Ok(solver.serve_one(ctx, req))
            }
            (Operator::Store(s), StorePath::Native) => {
                let solver = Self::try_over_store(s, req.precond, req.config)?;
                Ok(solver.serve_one(ctx, req))
            }
            (Operator::Store(_), _) => Err(SolveError::UnsupportedCombination(
                "a store operand already fixes the storage path; \
                 leave `store` at StorePath::Native"
                    .into(),
            )),
        }
    }
}

impl<'a, S: BackendScalar> BlockGmres<'a, S> {
    /// Build a solver for `A X = B` with a right preconditioner shared
    /// by all columns. Panics on an invalid configuration; see
    /// [`BlockGmres::try_new`] for the typed-error variant.
    pub fn new(a: &'a GpuMatrix<S>, precond: &'a dyn Preconditioner<S>, cfg: GmresConfig) -> Self {
        Self::try_new(a, precond, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`BlockGmres::new`] with the configuration checked into a typed
    /// [`SolveError`] instead of a panic.
    pub fn try_new(
        a: &'a GpuMatrix<S>,
        precond: &'a dyn Preconditioner<S>,
        cfg: GmresConfig,
    ) -> Result<Self, SolveError> {
        cfg.validate()?;
        Ok(BlockGmres {
            a: Operand::Plain(a),
            precond,
            cfg,
            basis_code: cfg.basis.store::<S>(0, 1).code(),
        })
    }

    /// Build an unpreconditioned solver over a low-precision storage
    /// path: SpMM/residual kernels read the store's values and
    /// accumulate in `S`, and every recorded region's [`RegionKey`]
    /// carries the store's precision tag, so solves over different
    /// storage precisions replay distinct cached graphs. For
    /// preconditioned store-path solves see
    /// [`BlockGmres::try_over_store`].
    pub fn over_store(a: &'a GpuStore<S>, cfg: GmresConfig) -> Self {
        Self::try_over_store(a, &IDENT, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build a solver over a storage path with a preconditioner that
    /// does not need the plain matrix at application time
    /// ([`Preconditioner::needs_matrix`] is `false`: identity, block
    /// Jacobi, cast wrappers). The SpMM streams the store's narrow
    /// values while the preconditioner applies in the working
    /// precision. A matrix-needing preconditioner degrades to
    /// [`SolveError::UnsupportedCombination`] — a packed store cannot
    /// feed its SpMVs.
    pub fn try_over_store(
        a: &'a GpuStore<S>,
        precond: &'a dyn Preconditioner<S>,
        cfg: GmresConfig,
    ) -> Result<Self, SolveError> {
        cfg.validate()?;
        if precond.needs_matrix() {
            return Err(SolveError::UnsupportedCombination(format!(
                "preconditioner '{}' needs the plain matrix, which a packed \
                 storage path ({} values) does not carry",
                precond.describe(),
                a.tag(),
            )));
        }
        Ok(BlockGmres {
            a: Operand::Store(a),
            precond,
            cfg,
            basis_code: cfg.basis.store::<S>(0, 1).code(),
        })
    }

    /// Region tag: the operand's storage code in the low bits, the
    /// basis storage code in bits 5–7. A native basis contributes 0,
    /// so every pre-BasisStore replay-cache key is preserved; a
    /// compressed-basis solve replays its own recorded graphs.
    fn tag8(&self) -> u8 {
        self.a.tag8() | (self.basis_code << 5)
    }

    /// Run a validated single-RHS request to completion on this solver.
    fn serve_one(&self, ctx: &mut GpuContext, req: &SolveRequest<'_, '_, S>) -> SolveOutcome<S> {
        let n = self.a.n();
        let mut b = MultiVec::<S>::zeros(n, 1);
        b.col_mut(0).copy_from_slice(req.rhs);
        let mut x = MultiVec::<S>::zeros(n, 1);
        if let Some(x0) = req.x0 {
            x.col_mut(0).copy_from_slice(x0);
        }
        let start = ctx.elapsed();
        let mut results = self.solve(ctx, &b, &mut x);
        SolveOutcome {
            id: RequestId(0),
            x: x.col(0).to_vec(),
            result: Some(results.pop().expect("one column solved")),
            disposition: Disposition::Completed,
            degraded: None,
            queued_seconds: 0.0,
            solve_seconds: ctx.elapsed() - start,
        }
    }
    /// The configuration in use.
    pub fn config(&self) -> &GmresConfig {
        &self.cfg
    }

    /// Operand dimension (for the serving engine's buffer sizing).
    pub(crate) fn n(&self) -> usize {
        self.a.n()
    }

    /// Solve `A X = B` starting from the initial guesses in `x`; the
    /// solutions are written back into `x`. Returns one [`SolveResult`]
    /// per column, each bit-identical to an independent single-RHS
    /// solve of that column (at every pipeline depth).
    pub fn solve(
        &self,
        ctx: &mut GpuContext,
        b: &MultiVec<S>,
        x: &mut MultiVec<S>,
    ) -> Vec<SolveResult> {
        let n = self.a.n();
        let k = b.k();
        // The request surface reports these as SolveError::DimensionMismatch;
        // callers reaching the raw driver keep the debug-build guard.
        debug_assert_eq!(b.n(), n, "rhs row count mismatch");
        debug_assert_eq!(x.n(), n, "solution row count mismatch");
        debug_assert_eq!(x.k(), k, "solution column count mismatch");
        // MGS interleaves every kernel with a host decision — there is
        // no device stream to pipeline against, so it always runs the
        // lockstep driver.
        if self.cfg.pipeline_depth == 0 || self.cfg.ortho == OrthoMethod::Mgs {
            self.solve_lockstep(ctx, b, x)
        } else {
            self.solve_pipelined(ctx, b, x)
        }
    }

    /// Initial residuals `R = B - A X`, reference norms, and per-lane
    /// state (shared by both drivers). The residual region is
    /// shape-stable in `(n, k)`: cached and replayed across solves.
    fn init_lanes(
        &self,
        ctx: &mut GpuContext,
        b: &MultiVec<S>,
        x: &MultiVec<S>,
        r: &mut MultiVec<S>,
        norms: &mut [S],
    ) -> (Vec<Lane<S>>, Vec<Option<SolveResult>>) {
        let n = self.a.n();
        let k = b.k();
        {
            let mut st = ctx.stream_for(
                RegionKey::new(region::BLOCK_INIT, n)
                    .with_k(k)
                    .with_tag(self.tag8()),
            );
            let ah = self.a.register(&mut st);
            let bh = st.block(b);
            let xh = st.block(x);
            let rh = st.block_mut(r);
            let nh = st.slice_mut(norms);
            for l in 0..k {
                rec_residual(&mut st, ah, bh.col(l), xh.col(l), rh.col_mut(l));
            }
            st.block_norm2_into(rh.read(), k, nh);
            st.sync();
        }

        let mut lanes: Vec<Lane<S>> = Vec::with_capacity(k);
        let mut results: Vec<Option<SolveResult>> = (0..k).map(|_| None).collect();

        for (l, result) in results.iter_mut().enumerate() {
            let (lane, terminal) = self.lane_from_norm(norms[l], self.cfg.rtol, self.cfg.max_iters);
            *result = terminal;
            lanes.push(lane);
        }
        (lanes, results)
    }

    /// Initial residuals and reference norms for a set of lanes being
    /// admitted into a running engine: `r[:, l] = b[:, l] - A x[:, l]`
    /// and `norms[l]` for each admitted slot `l`, recorded as one
    /// [`region::BLOCK_ADMIT`] region. The admitted-slot set rides the
    /// key's lane mask and `disc` (a hash of the tenant and any other
    /// admission discriminators) rides the spare `k` bits, exactly how
    /// deflation masks already key the pipelined regions — so each
    /// admission-transition shape warms its own cached graph instead of
    /// ping-ponging one entry. A slot set that does not fit the 64-bit
    /// mask falls back to an uncached region.
    pub(crate) fn admit_lanes(
        &self,
        ctx: &mut GpuContext,
        b: &MultiVec<S>,
        x: &MultiVec<S>,
        ws: &mut LockstepWs<S>,
        admit: &[usize],
        disc: usize,
    ) {
        let n = self.a.n();
        let key = RegionKey::lane_mask(admit).map(|mask| {
            RegionKey::new(region::BLOCK_ADMIT, n)
                .with_k(disc)
                .with_lanes(mask)
                .with_tag(self.tag8())
        });
        let mut st = match key {
            Some(key) => ctx.stream_for(key),
            None => ctx.stream(),
        };
        let ah = self.a.register(&mut st);
        let bh = st.block(b);
        let xh = st.block(x);
        let rh = st.block_mut(&mut ws.r);
        let nh = st.slice_mut(&mut ws.norms);
        for &l in admit {
            rec_residual(&mut st, ah, bh.col(l), xh.col(l), rh.col_mut(l));
            st.norm2_into(rh.col(l), nh.at(l));
        }
        st.sync();
    }

    /// A vacant lane slot for the serving engine: zero-row basis, no
    /// state, immediately terminal if ever collected (it never is — the
    /// engine only cycles occupied slots).
    pub(crate) fn free_lane(&self) -> Lane<S> {
        Lane {
            v: self.cfg.basis.store::<S>(0, self.cfg.m + 1),
            hcol: vec![S::zero(); self.cfg.m + 2],
            lsq: None,
            gamma: S::zero(),
            scale: 0.0,
            total_iters: 0,
            restarts: 0,
            history: Vec::new(),
            final_rel: 1.0,
            pending: None,
            in_cycle: false,
            implicit_claims_convergence: false,
            lucky: false,
            rtol: self.cfg.rtol,
            max_iters: self.cfg.max_iters,
        }
    }

    /// Fresh lane state from an initial residual norm — the per-lane
    /// half of [`BlockGmres::init_lanes`], shared with the serving
    /// engine's admission path so a mid-flight seeded lane starts from
    /// the exact state an independent solve would. Returns the lane and
    /// an immediately-terminal result for degenerate starts (NaN
    /// residual, zero RHS, vacuous tolerance).
    pub(crate) fn lane_from_norm(
        &self,
        norm: S,
        rtol: f64,
        max_iters: usize,
    ) -> (Lane<S>, Option<SolveResult>) {
        let n = self.a.n();
        let m = self.cfg.m;
        let r0_norm = norm.to_f64();
        let mut history: Vec<HistoryPoint> = Vec::new();
        let mut result = None;
        if !r0_norm.is_finite() {
            result = Some(SolveResult {
                status: SolveStatus::Breakdown,
                iterations: 0,
                restarts: 0,
                final_relative_residual: f64::NAN,
                history: Vec::new(),
            });
        } else if r0_norm == 0.0 {
            result = Some(SolveResult {
                status: SolveStatus::Converged,
                iterations: 0,
                restarts: 0,
                final_relative_residual: 0.0,
                history: Vec::new(),
            });
        } else {
            if self.cfg.record_history {
                history.push(HistoryPoint {
                    iteration: 0,
                    relative_residual: 1.0,
                    kind: HistoryKind::Explicit,
                });
            }
            if rtol >= 1.0 {
                result = Some(SolveResult {
                    status: SolveStatus::Converged,
                    iterations: 0,
                    restarts: 0,
                    final_relative_residual: 1.0,
                    history: std::mem::take(&mut history),
                });
            }
        }
        let lane = Lane {
            v: self
                .cfg
                .basis
                .store::<S>(if result.is_none() { n } else { 0 }, m + 1),
            hcol: vec![S::zero(); m + 2],
            lsq: None,
            gamma: norm,
            scale: r0_norm,
            total_iters: 0,
            restarts: 0,
            history,
            final_rel: 1.0,
            pending: None,
            in_cycle: false,
            implicit_claims_convergence: false,
            lucky: false,
            rtol,
            max_iters,
        };
        (lane, result)
    }

    /// Re-seed an existing lane slot in place (serving-engine admission):
    /// same state transition as [`BlockGmres::lane_from_norm`], but the
    /// basis allocation is reused when the slot was occupied before.
    pub(crate) fn reseed_lane(
        &self,
        slot: &mut Lane<S>,
        norm: S,
        rtol: f64,
        max_iters: usize,
    ) -> Option<SolveResult> {
        let n = self.a.n();
        let m = self.cfg.m;
        let (mut lane, result) = self.lane_from_norm(norm, rtol, max_iters);
        if result.is_none()
            && slot.v.n() == n
            && slot.v.max_cols() == m + 1
            && slot.v.code() == lane.v.code()
        {
            // Reuse the previous occupant's basis storage — but only
            // when its storage path matches this solver's policy, so an
            // admitted lane always inherits the group's basis layout.
            // Every column the new solve reads is written earlier in
            // the same cycle, so stale values are never observed (same
            // argument that lets restart cycles reuse the basis in
            // place).
            std::mem::swap(&mut lane.v, &mut slot.v);
        }
        *slot = lane;
        result
    }

    /// Columns still solving, in lane order; lanes at the iteration cap
    /// are resolved here (mirror of `Gmres`'s outer-loop-top check).
    fn collect_cycle(
        &self,
        lanes: &mut [Lane<S>],
        results: &mut [Option<SolveResult>],
    ) -> Vec<usize> {
        self.collect_cycle_eligible(lanes, results, |_| true)
    }

    /// [`BlockGmres::collect_cycle`] restricted to eligible slots — the
    /// serving engine passes its occupancy map so vacant lane slots
    /// never enter a cycle.
    pub(crate) fn collect_cycle_eligible(
        &self,
        lanes: &mut [Lane<S>],
        results: &mut [Option<SolveResult>],
        eligible: impl Fn(usize) -> bool,
    ) -> Vec<usize> {
        let mut cycle = Vec::with_capacity(lanes.len());
        for (l, result) in results.iter_mut().enumerate() {
            if result.is_some() || !eligible(l) {
                continue;
            }
            let lane = &mut lanes[l];
            if lane.total_iters >= lane.max_iters {
                *result = Some(SolveResult {
                    status: SolveStatus::MaxIters,
                    iterations: lane.total_iters,
                    restarts: lane.restarts,
                    final_relative_residual: lane.final_rel,
                    history: std::mem::take(&mut lane.history),
                });
                continue;
            }
            cycle.push(l);
        }
        cycle
    }

    /// Start a cycle on every participating lane: `v1 = r / gamma`,
    /// fused over the lane set (one batched normalize-and-store;
    /// bit-identical per lane, charged once as a width-|cycle| block
    /// scaling).
    fn start_cycle(
        &self,
        ctx: &mut GpuContext,
        lanes: &mut [Lane<S>],
        r: &MultiVec<S>,
        cycle: &[usize],
    ) {
        let m = self.cfg.m;
        let mut alphas: Vec<S> = Vec::with_capacity(cycle.len());
        let mut srcs: Vec<&[S]> = Vec::with_capacity(cycle.len());
        for &l in cycle {
            let lane = &mut lanes[l];
            alphas.push(S::from_f64(1.0 / lane.gamma.to_f64()));
            srcs.push(r.col(l));
            lane.lsq = Some(GivensLsq::new(m, lane.gamma));
            lane.in_cycle = true;
            lane.implicit_claims_convergence = false;
            lane.lucky = false;
        }
        let mut vs = lane_vs_mut(lanes, cycle);
        ctx.basis_lane_scal_copy(&alphas, &srcs, &mut vs, 0);
    }

    /// One lane's host step after iteration `j`'s device results are
    /// on the host: assemble the Hessenberg column, push the Givens
    /// update, record history, decide continuation. Returns the basis
    /// extension coefficient `1/h_{j+1,j}` when the lane extends. The
    /// HostDense charge is the *caller's* responsibility — the lockstep
    /// driver charges eagerly before calling, the pipelined driver
    /// defers it into the next recorded region.
    #[allow(clippy::too_many_arguments)]
    fn lane_host_step(
        &self,
        lane: &mut Lane<S>,
        c: usize,
        ncols: usize,
        h1: &[S],
        h2: &[S],
        hj1: S,
    ) -> Option<S> {
        match self.cfg.ortho {
            OrthoMethod::Cgs2 => {
                for i in 0..ncols {
                    lane.hcol[i] = h1[c * ncols + i] + h2[c * ncols + i];
                }
            }
            OrthoMethod::Cgs1 | OrthoMethod::Mgs => {
                lane.hcol[..ncols].copy_from_slice(&h1[c * ncols..(c + 1) * ncols]);
            }
        }
        lane.hcol[ncols] = hj1;
        lane.total_iters += 1;

        if !hj1.is_finite() {
            lane.pending = Some(SolveStatus::Breakdown);
            lane.in_cycle = false;
            return None;
        }

        let implicit = lane
            .lsq
            .as_mut()
            .expect("lane in cycle has an lsq")
            .push_column(&lane.hcol[..ncols + 1]);
        let implicit_rel = implicit.to_f64() / lane.scale;

        if self.cfg.record_history {
            lane.history.push(HistoryPoint {
                iteration: lane.total_iters,
                relative_residual: implicit_rel,
                kind: HistoryKind::Implicit,
            });
        }

        if hj1.to_f64() <= lane.scale * f64::from(f32::MIN_POSITIVE) * f64::EPSILON {
            lane.lucky = true;
            lane.implicit_claims_convergence = true;
            lane.in_cycle = false;
            return None;
        }
        let inv = S::from_f64(1.0 / hj1.to_f64());

        if self.cfg.monitor_implicit && implicit_rel <= lane.rtol {
            lane.implicit_claims_convergence = true;
            lane.in_cycle = false;
        }
        Some(inv)
    }

    /// Per-lane least-squares solves and restart bookkeeping at the
    /// cycle barrier. Fills each solved lane's width-padded coefficient
    /// column of `ymat` (zeros beyond `kc`, so the padded GEMV spans
    /// read defined memory) and zeroes its update-assembly column.
    /// HostDense charges are the caller's responsibility.
    fn barrier_lsq(
        &self,
        lanes: &mut [Lane<S>],
        cycle: &[usize],
        u: &mut MultiVec<S>,
        ymat: &mut MultiVec<S>,
    ) -> Vec<(usize, usize)> {
        let mut upds: Vec<(usize, usize)> = Vec::new();
        for &l in cycle {
            let lane = &mut lanes[l];
            lane.in_cycle = false;
            let lsq = lane.lsq.as_ref().expect("cycle lane has an lsq");
            let kc = lsq.ncols();
            if kc > 0 {
                if lsq.is_degenerate() {
                    lane.pending = Some(SolveStatus::Breakdown);
                } else {
                    let y = lsq.solve(kc);
                    for ui in u.col_mut(l) {
                        *ui = S::zero();
                    }
                    let ycol = ymat.col_mut(l);
                    ycol[..kc].copy_from_slice(&y);
                    for yi in ycol[kc..].iter_mut() {
                        *yi = S::zero();
                    }
                    upds.push((l, kc));
                }
            }
            lane.restarts += 1;
        }
        upds
    }

    /// Record the barrier's explicit-residual half (residual + fused
    /// norm per cycle lane) — shared by the lockstep and pipelined
    /// preconditioned barriers so the region shape (and hence the
    /// replay cache) is common to both.
    #[allow(clippy::too_many_arguments)]
    fn barrier_residual_region(
        &self,
        ctx: &mut GpuContext,
        b: &MultiVec<S>,
        x: &MultiVec<S>,
        r: &mut MultiVec<S>,
        gammas: &mut [S],
        cycle: &[usize],
    ) {
        let n = self.a.n();
        let key = RegionKey::lane_mask(cycle).map(|cm| {
            RegionKey::new(region::BLOCK_BARRIER_RES, n)
                .with_k(b.k())
                .with_lanes(cm)
                .with_tag(self.tag8())
        });
        let mut st = match key {
            Some(key) => ctx.stream_for(key),
            None => ctx.stream(),
        };
        let ah = self.a.register(&mut st);
        let bh = st.block(b);
        let xh = st.block(x);
        let rh = st.block_mut(r);
        let gh = st.slice_mut(gammas);
        for &l in cycle {
            rec_residual(&mut st, ah, bh.col(l), xh.col(l), rh.col_mut(l));
            st.norm2_into(rh.col(l), gh.at(l));
        }
        st.sync();
    }

    /// Per-lane status resolution (the tail of `Gmres`'s outer loop);
    /// terminal lanes are deflated.
    fn resolve_cycle(
        &self,
        lanes: &mut [Lane<S>],
        results: &mut [Option<SolveResult>],
        gammas: &[S],
        cycle: &[usize],
    ) {
        for &l in cycle {
            lanes[l].gamma = gammas[l];
        }
        for &l in cycle {
            let lane = &mut lanes[l];
            let explicit_rel = lane.gamma.to_f64() / lane.scale;
            lane.final_rel = explicit_rel;
            if self.cfg.record_history {
                lane.history.push(HistoryPoint {
                    iteration: lane.total_iters,
                    relative_residual: explicit_rel,
                    kind: HistoryKind::Explicit,
                });
            }
            let status = if let Some(s) = lane.pending {
                // Breakdown paths: report convergence if the explicit
                // residual happens to clear the tolerance.
                Some(if explicit_rel <= lane.rtol {
                    SolveStatus::Converged
                } else {
                    s
                })
            } else if !explicit_rel.is_finite() {
                Some(SolveStatus::Breakdown)
            } else if explicit_rel <= lane.rtol {
                Some(SolveStatus::Converged)
            } else if (lane.implicit_claims_convergence || lane.lucky)
                && explicit_rel > self.cfg.loa_factor * lane.rtol
            {
                Some(SolveStatus::LossOfAccuracy)
            } else if lane.total_iters >= lane.max_iters {
                Some(SolveStatus::MaxIters)
            } else {
                None
            };
            if let Some(status) = status {
                results[l] = Some(SolveResult {
                    status,
                    iterations: lane.total_iters,
                    restarts: lane.restarts,
                    final_relative_residual: lane.final_rel,
                    history: std::mem::take(&mut lane.history),
                });
            }
        }
    }

    // ----- the lockstep driver (pipeline depth 0, the baseline) ------

    fn solve_lockstep(
        &self,
        ctx: &mut GpuContext,
        b: &MultiVec<S>,
        x: &mut MultiVec<S>,
    ) -> Vec<SolveResult> {
        let n = self.a.n();
        let k = b.k();
        let mut ws = LockstepWs::new(n, k, self.cfg.m);

        let (mut lanes, mut results) = self.init_lanes(ctx, b, x, &mut ws.r, &mut ws.norms);

        loop {
            let cycle = self.collect_cycle(&mut lanes, &mut results);
            if cycle.is_empty() {
                break;
            }
            self.run_cycle(ctx, &mut lanes, &mut results, &mut ws, b, x, &cycle);
        }

        results
            .into_iter()
            .map(|r| r.expect("every column resolved"))
            .collect()
    }

    /// One full lockstep GMRES(m) cycle over the given lane set: cycle
    /// start (`v1 = r/gamma`), `m` lockstep Arnoldi steps, the cycle
    /// barrier (per-lane least-squares solves, solution updates,
    /// explicit residuals), and per-lane status resolution. Extracted
    /// verbatim from the lockstep driver so the serving engine runs the
    /// identical arithmetic between admission barriers — the existing
    /// batch parity suite therefore covers the served path too.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_cycle(
        &self,
        ctx: &mut GpuContext,
        lanes: &mut [Lane<S>],
        results: &mut [Option<SolveResult>],
        ws: &mut LockstepWs<S>,
        b: &MultiVec<S>,
        x: &mut MultiVec<S>,
        cycle: &[usize],
    ) {
        let n = self.a.n();
        let k = b.k();
        let m = self.cfg.m;
        self.start_cycle(ctx, lanes, &ws.r, cycle);

        for j in 0..m {
            // Lanes still iterating this cycle (lockstep: all share j).
            let act: Vec<usize> = cycle
                .iter()
                .copied()
                .filter(|&l| lanes[l].in_cycle && lanes[l].total_iters < lanes[l].max_iters)
                .collect();
            if act.is_empty() {
                break;
            }
            let kc = act.len();
            let ncols = j + 1;

            // Direction block: Z[:, c] = M^{-1} v_j^{(c)} — one
            // fused lane gather when the preconditioner is the
            // identity (the per-lane copies the recorded DAG was
            // built to absorb), per-lane applications otherwise.
            // Native lanes lend their columns in place (the exact
            // pre-BasisStore path); compressed lanes promote their
            // narrow columns first (each promotion a charged cast).
            let all_native = act.iter().all(|&l| lanes[l].v.is_native());
            if self.precond.is_identity() {
                if all_native {
                    let srcs: Vec<&[S]> = act
                        .iter()
                        .map(|&l| lanes[l].v.expect_native().col(j))
                        .collect();
                    let mut dsts = ws.z.cols_mut(kc);
                    ctx.lane_copy(&srcs, &mut dsts);
                } else {
                    for (c, &l) in act.iter().enumerate() {
                        ctx.basis_promote_col(&lanes[l].v, j, ws.z.col_mut(c));
                    }
                }
            } else {
                for (c, &l) in act.iter().enumerate() {
                    if let Some(nv) = lanes[l].v.as_native() {
                        self.precond
                            .apply(ctx, self.a.plain_opt(), nv.col(j), ws.z.col_mut(c));
                    } else {
                        ctx.basis_promote_col(&lanes[l].v, j, &mut ws.zvec);
                        self.precond
                            .apply(ctx, self.a.plain_opt(), &ws.zvec, ws.z.col_mut(c));
                    }
                }
            }

            // W = A Z (one matrix read for all kc columns) plus the
            // blocked orthogonalization: one recorded region, a
            // chain through W like the single-RHS CGS region. The
            // shape is stable in (n, ncols, kc, active lane set),
            // so steady-state lockstep iterations replay a cached
            // graph; a lane set that doesn't fit the 64-bit mask
            // falls back to an uncached (re-derived) region.
            match self.cfg.ortho {
                OrthoMethod::Cgs2 | OrthoMethod::Cgs1 => {
                    let two_pass = self.cfg.ortho == OrthoMethod::Cgs2;
                    let vs: Vec<&BasisStore<S>> = act.iter().map(|&l| &lanes[l].v).collect();
                    let key = RegionKey::lane_mask(&act).map(|m| {
                        let id = if two_pass {
                            region::BLOCK_CGS
                        } else {
                            region::BLOCK_CGS1
                        };
                        RegionKey::new(id, n)
                            .with_ncols(ncols)
                            .with_k(kc)
                            .with_lanes(m)
                            .with_tag(self.tag8())
                    });
                    let mut st = match key {
                        Some(key) => ctx.stream_for(key),
                        None => ctx.stream(),
                    };
                    let ah = self.a.register(&mut st);
                    let zh = st.block(&ws.z);
                    let wh = st.block_mut(&mut ws.w);
                    let vsh = st.bases(&vs);
                    let h1h = st.slice_mut(&mut ws.h1[..kc * ncols]);
                    let nh = st.slice_mut(&mut ws.norms);
                    rec_spmm(&mut st, ah, zh, kc, wh);
                    st.block_gemv_t(vsh, ncols, wh.read(), h1h);
                    st.block_gemv_n_sub(vsh, ncols, h1h.read(), wh);
                    if two_pass {
                        let h2h = st.slice_mut(&mut ws.h2[..kc * ncols]);
                        st.block_gemv_t(vsh, ncols, wh.read(), h2h);
                        st.block_gemv_n_sub(vsh, ncols, h2h.read(), wh);
                    }
                    st.block_norm2_into(wh.read(), kc, nh);
                    st.sync();
                }
                OrthoMethod::Mgs => {
                    // 2j skinny kernels per lane, each feeding the
                    // next host decision; nothing to batch or record.
                    self.a.eager_spmm(ctx, &ws.z, kc, &mut ws.w);
                    for (c, &l) in act.iter().enumerate() {
                        // MGS reads columns through S-typed views, so it
                        // is native-only (validate() rejects the combo).
                        let nv = lanes[l].v.expect_native();
                        for i in 0..ncols {
                            let hi = ctx.dot(nv.col(i), ws.w.col(c));
                            ctx.axpy(-hi, nv.col(i), ws.w.col_mut(c));
                            ws.h1[c * ncols + i] = hi;
                        }
                    }
                    ctx.block_norm2(&ws.w, kc, &mut ws.norms);
                }
            }

            // Per-lane host steps (Hessenberg column assembly,
            // Givens update, convergence decisions); lanes that keep
            // iterating queue their basis extension for one fused
            // lane-set scatter below.
            let mut store: Vec<(usize, usize, S)> = Vec::new(); // (col, lane, 1/h)
            for (c, &l) in act.iter().enumerate() {
                ctx.charge_iteration_host(j);
                if let Some(inv) =
                    self.lane_host_step(&mut lanes[l], c, ncols, &ws.h1, &ws.h2, ws.norms[c])
                {
                    store.push((c, l, inv));
                }
            }

            // v_{j+1}^{(l)} = w_c / h_{j+1,j}: one fused lane-set
            // normalize-and-store for every extending lane (the
            // per-lane copy + scal pair this replaces is the small
            // kernel the ROADMAP flagged; bit-identical per lane).
            if !store.is_empty() {
                let alphas: Vec<S> = store.iter().map(|&(_, _, inv)| inv).collect();
                let srcs: Vec<&[S]> = store.iter().map(|&(c, _, _)| ws.w.col(c)).collect();
                let which: Vec<usize> = store.iter().map(|&(_, l, _)| l).collect();
                let mut vs = lane_vs_mut(lanes, &which);
                ctx.basis_lane_scal_copy(&alphas, &srcs, &mut vs, j + 1);
            }
        }

        // Cycle barrier, phase 1 (host): per-lane least-squares
        // solves and restart bookkeeping; each solved lane queues
        // its (width-padded) update for the recorded device phase.
        // The shared helper charges nothing; the eager restart
        // charges are emitted here per update lane in the same
        // order (nothing else charges in between), keeping the
        // lockstep charge sequence bitwise unchanged.
        let upds = self.barrier_lsq(lanes, cycle, &mut ws.u, &mut ws.ymat);
        for &(_, kc) in &upds {
            ctx.charge_restart_host(kc);
        }

        // Phase 2 (device): per-lane update chains x += M^{-1} V y
        // and explicit residuals. Each lane's chain (GEMV-N -> axpy
        // -> residual -> norm) is independent of every other lane's,
        // so the recorded DAG overlaps them. The per-lane update
        // widths (`kc`) vary lane to lane, but they live only in
        // the payload: the recorded GEMV reads the full width-padded
        // coefficient span, so the region is shape-stable and hits
        // the replay cache (keyed on the cycle/update lane sets).
        if self.precond.is_identity() {
            let key = RegionKey::lane_mask(cycle).map(|cm| {
                RegionKey::new(region::BLOCK_BARRIER, n)
                    .with_ncols(upds_mask(&upds) as usize)
                    .with_k(k)
                    .with_lanes(cm)
                    .with_tag(self.tag8())
            });
            let mut st = match key {
                Some(key) => ctx.stream_for(key),
                None => ctx.stream(),
            };
            let ah = self.a.register(&mut st);
            let bh = st.block(b);
            let xh = st.block_mut(&mut *x);
            let rh = st.block_mut(&mut ws.r);
            let uh = st.block_mut(&mut ws.u);
            let yh = st.block(&ws.ymat);
            let gh = st.slice_mut(&mut ws.gammas);
            for &(l, kc) in &upds {
                let vh = st.basis(&lanes[l].v);
                st.gemv_n_add_padded(vh, kc, yh.col(l), uh.col_mut(l));
                st.axpy(S::one(), uh.col(l), xh.col_mut(l));
            }
            for &l in cycle {
                rec_residual(&mut st, ah, bh.col(l), xh.col(l), rh.col_mut(l));
                st.norm2_into(rh.col(l), gh.at(l));
            }
            st.sync();
        } else {
            {
                let key = RegionKey::lane_mask(cycle).map(|cm| {
                    RegionKey::new(region::BLOCK_BARRIER_UPD, n)
                        .with_ncols(upds_mask(&upds) as usize)
                        .with_k(k)
                        .with_lanes(cm)
                        .with_tag(self.tag8())
                });
                let mut st = match key {
                    Some(key) => ctx.stream_for(key),
                    None => ctx.stream(),
                };
                let uh = st.block_mut(&mut ws.u);
                let yh = st.block(&ws.ymat);
                for &(l, kc) in &upds {
                    let vh = st.basis(&lanes[l].v);
                    st.gemv_n_add_padded(vh, kc, yh.col(l), uh.col_mut(l));
                }
                st.sync();
            }
            // Preconditioner applications run eagerly between the
            // two recorded regions.
            for (l, _) in &upds {
                self.precond
                    .apply(ctx, self.a.plain_opt(), ws.u.col(*l), &mut ws.zvec);
                ctx.axpy(S::one(), &ws.zvec, x.col_mut(*l));
            }
            self.barrier_residual_region(ctx, b, x, &mut ws.r, &mut ws.gammas, cycle);
        }

        self.resolve_cycle(lanes, results, &ws.gammas, cycle);
    }

    // ----- the software-pipelined driver (pipeline depth 1) ----------
    //
    // Identical arithmetic in the identical order — the difference is
    // WHERE the host work is charged: each iteration's Givens/update
    // bookkeeping and the barrier's least-squares solves are recorded
    // as host nodes inside the NEXT region, reading the previous
    // parity's norm/coefficient spans (ping-pong buffers), so the DAG
    // proves them independent of the in-flight device kernels and the
    // timeline hides their latency. The basis extension and direction
    // gather migrate into the recorded region too (preserving the
    // lockstep charge order exactly, so serial accounting is bitwise
    // unchanged).

    fn solve_pipelined(
        &self,
        ctx: &mut GpuContext,
        b: &MultiVec<S>,
        x: &mut MultiVec<S>,
    ) -> Vec<SolveResult> {
        let n = self.a.n();
        let k = b.k();
        let m = self.cfg.m;
        let identity = self.precond.is_identity();
        let two_pass = self.cfg.ortho == OrthoMethod::Cgs2;

        let mut r = MultiVec::<S>::zeros(n, k);
        let mut z = MultiVec::<S>::zeros(n, k);
        let mut w = MultiVec::<S>::zeros(n, k);
        let mut u = MultiVec::<S>::zeros(n, k);
        let mut ymat = MultiVec::<S>::zeros(m, k);
        let mut zvec = vec![S::zero(); n];
        // Ping-pong host-visible results: iteration j writes parity
        // j % 2, so the deferred host step for j reads spans no later
        // iteration's device kernels touch — the one-iteration lag the
        // DAG verifies.
        let mut h1 = [vec![S::zero(); k * m.max(1)], vec![S::zero(); k * m.max(1)]];
        let mut h2 = [vec![S::zero(); k * m.max(1)], vec![S::zero(); k * m.max(1)]];
        let mut norms = [vec![S::zero(); k], vec![S::zero(); k]];
        let mut init_norms = vec![S::zero(); k];
        let mut gammas = vec![S::zero(); k];
        // Host-state tokens (one slot per lane): consecutive host nodes
        // of a lane chain through WAW on its token, keeping the Givens
        // recurrence ordered while distinct lanes overlap.
        let mut tokens = vec![S::zero(); k];
        // Extension coefficients of the drained iteration, registered
        // as the recorded lane_scal_copy's operand.
        let mut alphas_buf = vec![S::zero(); k];

        let (mut lanes, mut results) = self.init_lanes(ctx, b, x, &mut r, &mut init_norms);

        loop {
            let cycle = self.collect_cycle(&mut lanes, &mut results);
            if cycle.is_empty() {
                break;
            }
            self.start_cycle(ctx, &mut lanes, &r, &cycle);

            // Work deferred from the previous iteration: the host steps
            // of its act set (`pending`, with their compact positions
            // implied by order) and the basis extensions of its
            // continuing lanes (`store`: position, lane, 1/h).
            let mut pending: Vec<usize> = Vec::new();
            let mut pending_j = 0usize;
            let mut store: Vec<(usize, usize, S)> = Vec::new();

            for j in 0..m {
                let act: Vec<usize> = cycle
                    .iter()
                    .copied()
                    .filter(|&l| lanes[l].in_cycle && lanes[l].total_iters < lanes[l].max_iters)
                    .collect();
                if act.is_empty() {
                    break;
                }
                let kc = act.len();
                let ncols = j + 1;
                let cur = j % 2;
                for (i, &(_, _, inv)) in store.iter().enumerate() {
                    alphas_buf[i] = inv;
                }
                // Lanes whose bases the region writes: the drained
                // extension's. The CGS reads `act`'s bases, and act is
                // a subset of store's lanes after the first iteration
                // (a lane only stays in the cycle if it extended).
                let store_lanes: Vec<usize> = store.iter().map(|&(_, l, _)| l).collect();
                let reg: Vec<usize> = if j == 0 {
                    act.clone()
                } else {
                    store_lanes.clone()
                };
                let ncols_prev = j;
                let deferred_masks = RegionKey::lane_mask(&pending)
                    .zip(RegionKey::lane_mask(&store_lanes))
                    .map(|(pm, sm)| [pm, sm]);

                if identity {
                    let rid = if two_pass {
                        region::BLOCK_PIPE_CGS
                    } else {
                        region::BLOCK_PIPE_CGS1
                    };
                    let key =
                        RegionKey::lane_mask(&act)
                            .zip(deferred_masks)
                            .map(|(mask, masks)| {
                                RegionKey::new(rid, n)
                                    .with_ncols(ncols)
                                    .with_k(pipe_disc(kc, masks))
                                    .with_lanes(mask)
                                    .with_tag(self.tag8())
                            });
                    let (h1_prev, h1_cur) = parity_split(&mut h1, cur);
                    let (h2_prev, h2_cur) = parity_split(&mut h2, cur);
                    let (nr_prev, nr_cur) = parity_split(&mut norms, cur);
                    let mut st = match key {
                        Some(key) => ctx.stream_for(key),
                        None => ctx.stream(),
                    };
                    let ah = self.a.register(&mut st);
                    let th = st.slice_mut(&mut tokens);
                    let aph = st.slice(&alphas_buf[..]);
                    let h1p = st.slice(&h1_prev[..]);
                    let h2p = st.slice(&h2_prev[..]);
                    let npv = st.slice(&nr_prev[..]);
                    let h1c = st.slice_mut(&mut h1_cur[..kc * ncols]);
                    let h2c = if two_pass {
                        Some(st.slice_mut(&mut h2_cur[..kc * ncols]))
                    } else {
                        None
                    };
                    let nc = st.slice_mut(&mut nr_cur[..]);
                    let zh = st.block_mut(&mut z);
                    let wh = st.block_mut(&mut w);
                    let handles = st.bases_mut(lane_vs_mut(&mut lanes, &reg));
                    let mut bh_of: Vec<Option<BasisMut<S>>> = vec![None; k];
                    for (i, &l) in reg.iter().enumerate() {
                        bh_of[l] = Some(handles[i]);
                    }

                    // 1. Deferred host steps of iteration j-1 (one
                    //    HostDense charge per lane, act order — the
                    //    lockstep charge sequence, at lagged spans).
                    for (c, &l) in pending.iter().enumerate() {
                        let lagged = lagged_spans(h1p, h2p, npv, c, ncols_prev, two_pass);
                        st.host_givens(pending_j, &lagged, th.at(l));
                    }
                    // 2. Drained basis extension v_j = w / h.
                    if !store.is_empty() {
                        let srcs: Vec<_> = store.iter().map(|&(c, _, _)| wh.col(c)).collect();
                        let dsts: Vec<_> = store
                            .iter()
                            .map(|&(_, l, _)| bh_of[l].expect("stored lane registered").col_mut(j))
                            .collect();
                        st.lane_scal_copy(aph, &srcs, &dsts);
                    }
                    // 3. Direction gather Z[:, c] = v_j.
                    {
                        let srcs: Vec<_> = act
                            .iter()
                            .map(|&l| bh_of[l].expect("active lane registered").col(j))
                            .collect();
                        let dsts: Vec<_> = (0..kc).map(|c| zh.col_mut(c)).collect();
                        st.lane_copy(&srcs, &dsts);
                    }
                    // 4. SpMM + blocked CGS (the chain the host nodes
                    //    overlap).
                    let vrefs: Vec<_> = act
                        .iter()
                        .map(|&l| bh_of[l].expect("active lane registered").read())
                        .collect();
                    let vsl = st.basis_list(&vrefs);
                    rec_spmm(&mut st, ah, zh.read(), kc, wh);
                    st.block_gemv_t(vsl, ncols, wh.read(), h1c);
                    st.block_gemv_n_sub(vsl, ncols, h1c.read(), wh);
                    if let Some(h2c) = h2c {
                        st.block_gemv_t(vsl, ncols, wh.read(), h2c);
                        st.block_gemv_n_sub(vsl, ncols, h2c.read(), wh);
                    }
                    st.block_norm2_into(wh.read(), kc, nc);
                    st.sync();
                } else {
                    // Preconditioned: the drained host steps + extension
                    // record first (the eager preconditioner needs the
                    // extended v_j), then the lockstep-shaped CGS region
                    // over the parity buffers.
                    if !pending.is_empty() || !store.is_empty() {
                        let key = RegionKey::lane_mask(&pending).zip(deferred_masks).map(
                            |(mask, masks)| {
                                RegionKey::new(region::BLOCK_PIPE_DRAIN, n)
                                    .with_ncols(ncols_prev)
                                    .with_k(pipe_disc(store.len(), masks))
                                    .with_lanes(mask)
                                    .with_tag(self.tag8())
                            },
                        );
                        let (h1_prev, _) = parity_split(&mut h1, cur);
                        let (h2_prev, _) = parity_split(&mut h2, cur);
                        let (nr_prev, _) = parity_split(&mut norms, cur);
                        let mut st = match key {
                            Some(key) => ctx.stream_for(key),
                            None => ctx.stream(),
                        };
                        let th = st.slice_mut(&mut tokens);
                        let aph = st.slice(&alphas_buf[..]);
                        let h1p = st.slice(&h1_prev[..]);
                        let h2p = st.slice(&h2_prev[..]);
                        let npv = st.slice(&nr_prev[..]);
                        let wh = st.block(&w);
                        let handles = if store_lanes.is_empty() {
                            Vec::new()
                        } else {
                            st.bases_mut(lane_vs_mut(&mut lanes, &store_lanes))
                        };
                        for (c, &l) in pending.iter().enumerate() {
                            let lagged = lagged_spans(h1p, h2p, npv, c, ncols_prev, two_pass);
                            st.host_givens(pending_j, &lagged, th.at(l));
                        }
                        if !store.is_empty() {
                            let srcs: Vec<_> = store.iter().map(|&(c, _, _)| wh.col(c)).collect();
                            let dsts: Vec<_> = handles.iter().map(|h| h.col_mut(j)).collect();
                            st.lane_scal_copy(aph, &srcs, &dsts);
                        }
                        st.sync();
                    }
                    for (c, &l) in act.iter().enumerate() {
                        // The pipelined driver is native-only
                        // (validate() rejects compressed + pipelined).
                        self.precond.apply(
                            ctx,
                            self.a.plain_opt(),
                            lanes[l].v.expect_native().col(j),
                            z.col_mut(c),
                        );
                    }
                    let rid = if two_pass {
                        region::BLOCK_PIPE_CGS
                    } else {
                        region::BLOCK_PIPE_CGS1
                    };
                    let key = RegionKey::lane_mask(&act).map(|mask| {
                        RegionKey::new(rid, n)
                            .with_ncols(ncols)
                            .with_k(kc)
                            .with_lanes(mask)
                            .with_tag(self.tag8())
                    });
                    let (_, h1_cur) = parity_split(&mut h1, cur);
                    let (_, h2_cur) = parity_split(&mut h2, cur);
                    let (_, nr_cur) = parity_split(&mut norms, cur);
                    let vs: Vec<&BasisStore<S>> = act.iter().map(|&l| &lanes[l].v).collect();
                    let mut st = match key {
                        Some(key) => ctx.stream_for(key),
                        None => ctx.stream(),
                    };
                    let ah = self.a.register(&mut st);
                    let zh = st.block(&z);
                    let wh = st.block_mut(&mut w);
                    let vsh = st.bases(&vs);
                    let h1c = st.slice_mut(&mut h1_cur[..kc * ncols]);
                    let nc = st.slice_mut(&mut nr_cur[..]);
                    rec_spmm(&mut st, ah, zh, kc, wh);
                    st.block_gemv_t(vsh, ncols, wh.read(), h1c);
                    st.block_gemv_n_sub(vsh, ncols, h1c.read(), wh);
                    if two_pass {
                        let h2c = st.slice_mut(&mut h2_cur[..kc * ncols]);
                        st.block_gemv_t(vsh, ncols, wh.read(), h2c);
                        st.block_gemv_n_sub(vsh, ncols, h2c.read(), wh);
                    }
                    st.block_norm2_into(wh.read(), kc, nc);
                    st.sync();
                }

                // Host arithmetic for iteration j runs now (it decides
                // the next act set — control flow cannot be deferred);
                // its CHARGE is deferred into the next region as the
                // host node recorded above on the following pass.
                store.clear();
                let h1c = &h1[cur];
                let h2c = &h2[cur];
                let nrc = &norms[cur];
                for (c, &l) in act.iter().enumerate() {
                    if let Some(inv) =
                        self.lane_host_step(&mut lanes[l], c, ncols, h1c, h2c, nrc[c])
                    {
                        store.push((c, l, inv));
                    }
                }
                pending = act;
                pending_j = j;
            }

            // Cycle barrier. The final iteration's host steps and
            // extension drain here, the per-lane least-squares solves
            // become host nodes, and each lane's update chain hangs off
            // its own host node — per-lane host->device chains that
            // overlap across lanes (the k >= 2 win).
            for (i, &(_, _, inv)) in store.iter().enumerate() {
                alphas_buf[i] = inv;
            }
            let drained = pending_j + 1; // ncols of the drained host steps
            let p = pending_j % 2;
            let upds = self.barrier_lsq(&mut lanes, &cycle, &mut u, &mut ymat);
            let store_lanes: Vec<usize> = store.iter().map(|&(_, l, _)| l).collect();
            let deferred_masks = RegionKey::lane_mask(&pending)
                .zip(RegionKey::lane_mask(&store_lanes))
                .map(|(pm, sm)| [pm, sm]);
            let reg: Vec<usize> = {
                // Union of the drained extension's lanes and the update
                // lanes, ascending (both already are).
                let mut reg = store_lanes.clone();
                for &(l, _) in &upds {
                    if !reg.contains(&l) {
                        reg.push(l);
                    }
                }
                reg.sort_unstable();
                reg
            };

            if identity {
                let key = RegionKey::lane_mask(&cycle)
                    .zip(deferred_masks)
                    .map(|(cm, masks)| {
                        RegionKey::new(region::BLOCK_PIPE_BARRIER, n)
                            .with_ncols(upds_mask(&upds) as usize)
                            .with_k(pipe_disc(drained, masks))
                            .with_lanes(cm)
                            .with_tag(self.tag8())
                    });
                let (h1_prev, _) = parity_split(&mut h1, 1 - p);
                let (h2_prev, _) = parity_split(&mut h2, 1 - p);
                let (nr_prev, _) = parity_split(&mut norms, 1 - p);
                let mut st = match key {
                    Some(key) => ctx.stream_for(key),
                    None => ctx.stream(),
                };
                let ah = self.a.register(&mut st);
                let th = st.slice_mut(&mut tokens);
                let aph = st.slice(&alphas_buf[..]);
                let h1p = st.slice(&h1_prev[..]);
                let h2p = st.slice(&h2_prev[..]);
                let npv = st.slice(&nr_prev[..]);
                let bh = st.block(b);
                let wh = st.block(&w);
                let xh = st.block_mut(&mut *x);
                let rh = st.block_mut(&mut r);
                let uh = st.block_mut(&mut u);
                let ymh = st.block_mut(&mut ymat);
                let gh = st.slice_mut(&mut gammas);
                let handles = if reg.is_empty() {
                    Vec::new()
                } else {
                    st.bases_mut(lane_vs_mut(&mut lanes, &reg))
                };
                let mut bh_of: Vec<Option<BasisMut<S>>> = vec![None; k];
                for (i, &l) in reg.iter().enumerate() {
                    bh_of[l] = Some(handles[i]);
                }
                for (c, &l) in pending.iter().enumerate() {
                    let lagged = lagged_spans(h1p, h2p, npv, c, drained, two_pass);
                    st.host_givens(pending_j, &lagged, th.at(l));
                }
                if !store.is_empty() {
                    let srcs: Vec<_> = store.iter().map(|&(c, _, _)| wh.col(c)).collect();
                    let dsts: Vec<_> = store
                        .iter()
                        .map(|&(_, l, _)| {
                            bh_of[l].expect("stored lane registered").col_mut(drained)
                        })
                        .collect();
                    st.lane_scal_copy(aph, &srcs, &dsts);
                }
                for &(l, kc) in &upds {
                    st.host_lsq(kc, th.at(l), ymh.col_mut(l));
                }
                for &(l, kc) in &upds {
                    let vh = bh_of[l].expect("update lane registered").read();
                    st.gemv_n_add_padded(vh, kc, ymh.col(l), uh.col_mut(l));
                    st.axpy(S::one(), uh.col(l), xh.col_mut(l));
                }
                for &l in &cycle {
                    rec_residual(&mut st, ah, bh.col(l), xh.col(l), rh.col_mut(l));
                    st.norm2_into(rh.col(l), gh.at(l));
                }
                st.sync();
            } else {
                // Preconditioned barrier: drained host steps + extension
                // record first, then [per-lane lsq host node + padded
                // GEMV] chains, then the eager preconditioner applies,
                // then the shared residual region.
                {
                    let key =
                        RegionKey::lane_mask(&pending)
                            .zip(deferred_masks)
                            .map(|(mask, masks)| {
                                RegionKey::new(region::BLOCK_PIPE_DRAIN, n)
                                    .with_ncols(drained)
                                    .with_k(pipe_disc(store.len(), masks))
                                    .with_lanes(mask)
                                    .with_tag(self.tag8())
                            });
                    let (h1_prev, _) = parity_split(&mut h1, 1 - p);
                    let (h2_prev, _) = parity_split(&mut h2, 1 - p);
                    let (nr_prev, _) = parity_split(&mut norms, 1 - p);
                    let mut st = match key {
                        Some(key) => ctx.stream_for(key),
                        None => ctx.stream(),
                    };
                    let th = st.slice_mut(&mut tokens);
                    let aph = st.slice(&alphas_buf[..]);
                    let h1p = st.slice(&h1_prev[..]);
                    let h2p = st.slice(&h2_prev[..]);
                    let npv = st.slice(&nr_prev[..]);
                    let wh = st.block(&w);
                    let handles = if store_lanes.is_empty() {
                        Vec::new()
                    } else {
                        st.bases_mut(lane_vs_mut(&mut lanes, &store_lanes))
                    };
                    for (c, &l) in pending.iter().enumerate() {
                        let lagged = lagged_spans(h1p, h2p, npv, c, drained, two_pass);
                        st.host_givens(pending_j, &lagged, th.at(l));
                    }
                    if !store.is_empty() {
                        let srcs: Vec<_> = store.iter().map(|&(c, _, _)| wh.col(c)).collect();
                        let dsts: Vec<_> = handles.iter().map(|h| h.col_mut(drained)).collect();
                        st.lane_scal_copy(aph, &srcs, &dsts);
                    }
                    st.sync();
                }
                {
                    let key = RegionKey::lane_mask(&cycle).map(|cm| {
                        RegionKey::new(region::BLOCK_PIPE_BARRIER, n)
                            .with_ncols(upds_mask(&upds) as usize)
                            .with_k(k)
                            .with_lanes(cm)
                            .with_tag(self.tag8())
                    });
                    let mut st = match key {
                        Some(key) => ctx.stream_for(key),
                        None => ctx.stream(),
                    };
                    let th = st.slice_mut(&mut tokens);
                    let uh = st.block_mut(&mut u);
                    let ymh = st.block_mut(&mut ymat);
                    for &(l, kc) in &upds {
                        st.host_lsq(kc, th.at(l), ymh.col_mut(l));
                    }
                    for &(l, kc) in &upds {
                        let vh = st.basis(&lanes[l].v);
                        st.gemv_n_add_padded(vh, kc, ymh.col(l), uh.col_mut(l));
                    }
                    st.sync();
                }
                for &(l, _) in &upds {
                    self.precond
                        .apply(ctx, self.a.plain_opt(), u.col(l), &mut zvec);
                    ctx.axpy(S::one(), &zvec, x.col_mut(l));
                }
                self.barrier_residual_region(ctx, b, x, &mut r, &mut gammas, &cycle);
            }

            self.resolve_cycle(&mut lanes, &mut results, &gammas, &cycle);
        }

        results
            .into_iter()
            .map(|r| r.expect("every column resolved"))
            .collect()
    }
}

/// The lagged read spans of one lane's deferred host step: its slice of
/// the previous-parity Hessenberg coefficients (both CGS passes when
/// two-pass) and its subdiagonal norm slot.
fn lagged_spans<S: BackendScalar>(
    h1p: ArgSlice<S>,
    h2p: ArgSlice<S>,
    npv: ArgSlice<S>,
    c: usize,
    ncols_prev: usize,
    two_pass: bool,
) -> Vec<ArgSlice<S>> {
    let mut lagged = vec![h1p.sub(c * ncols_prev, ncols_prev)];
    if two_pass {
        lagged.push(h2p.sub(c * ncols_prev, ncols_prev));
    }
    lagged.push(npv.sub(c, 1));
    lagged
}
