//! Batched multi-RHS restarted GMRES(m): `k` independent solves in
//! lockstep, sharing kernel launches.
//!
//! [`BlockGmres`] solves `A X = B` for a block of `k` right-hand sides.
//! It is **not** a block-Krylov method: each column keeps its own Krylov
//! basis, Hessenberg recurrence, and convergence state, and the solver
//! runs the `k` state machines in lockstep so that every iteration's
//! SpMV becomes one SpMM (the matrix is read once per block instead of
//! once per column — the §V-D bandwidth argument, and the kernel shape
//! Aliaga et al.'s multi-RHS work targets on GPUs) and the CGS2
//! projections become batched GEMM-shaped calls.
//!
//! # Determinism contract
//!
//! Because every batched kernel preserves the per-column operation order
//! of its single-vector counterpart (see `mpgmres-backend`'s multi-RHS
//! contract), each column's solution, iteration history, and terminal
//! status are **bit-for-bit identical** to an independent [`Gmres`]
//! solve of that column, on every backend. With `k = 1` the simulated
//! timing report is also bit-identical to [`Gmres`] (every block cost
//! collapses to the single-vector cost at width 1).
//!
//! # Deflation
//!
//! Columns converge at different iterations. A column whose cycle ends
//! in a terminal state (converged, breakdown, iteration cap) is
//! *deflated*: it stops participating and subsequent batched kernels run
//! over the compacted block of still-active columns, so a nearly-done
//! block doesn't keep paying full-width kernels. Within a cycle, a
//! column that exits early (implicit convergence or breakdown) simply
//! idles until the cycle barrier — cycles stay globally synchronized,
//! which is what keeps the batched projections a uniform width.
//!
//! [`Gmres`]: crate::gmres::Gmres

use crate::config::{GmresConfig, OrthoMethod};
use crate::context::{GpuContext, GpuMatrix};
use crate::precond::Preconditioner;
use crate::status::{HistoryKind, HistoryPoint, SolveResult, SolveStatus};
use crate::stream::{region, RegionKey};
use mpgmres_backend::BackendScalar;
use mpgmres_la::givens::GivensLsq;
use mpgmres_la::multivec::MultiVec;
use mpgmres_la::multivector::MultiVector;

/// Batched multi-RHS GMRES(m): `k` single-RHS solves in lockstep.
pub struct BlockGmres<'a, S: BackendScalar> {
    a: &'a GpuMatrix<S>,
    precond: &'a dyn Preconditioner<S>,
    cfg: GmresConfig,
}

/// Per-column solver state (one lane per right-hand side).
struct Lane<S> {
    /// This lane's own Krylov basis (n x (m+1)).
    v: MultiVector<S>,
    /// Current Hessenberg column assembly buffer (m+2).
    hcol: Vec<S>,
    lsq: Option<GivensLsq<S>>,
    gamma: S,
    scale: f64,
    total_iters: usize,
    restarts: usize,
    history: Vec<HistoryPoint>,
    final_rel: f64,
    /// Pending terminal status raised inside a cycle (breakdown paths).
    pending: Option<SolveStatus>,
    /// Still inside the current cycle's Arnoldi loop.
    in_cycle: bool,
    implicit_claims_convergence: bool,
    lucky: bool,
}

/// Collect `&mut lane.v.col(col)` for the lane indices in `which`, in
/// order. The lockstep driver always builds its lane sets in ascending
/// lane order, and the fused lane-set kernels pair sources with
/// destinations by position — this helper asserts that invariant
/// instead of letting an out-of-order set silently drop a lane.
fn lane_cols_mut<'l, S: BackendScalar>(
    lanes: &'l mut [Lane<S>],
    which: &[usize],
    col: usize,
) -> Vec<&'l mut [S]> {
    debug_assert!(
        which.windows(2).all(|w| w[0] < w[1]),
        "lane sets must be ascending"
    );
    let mut out = Vec::with_capacity(which.len());
    let mut it = which.iter().copied().peekable();
    for (li, lane) in lanes.iter_mut().enumerate() {
        if it.peek() == Some(&li) {
            it.next();
            out.push(lane.v.col_mut(col));
        }
    }
    assert_eq!(out.len(), which.len(), "lane set not found in order");
    out
}

impl<'a, S: BackendScalar> BlockGmres<'a, S> {
    /// Build a solver for `A X = B` with a right preconditioner shared
    /// by all columns.
    pub fn new(a: &'a GpuMatrix<S>, precond: &'a dyn Preconditioner<S>, cfg: GmresConfig) -> Self {
        assert!(cfg.m >= 1, "restart length must be at least 1");
        BlockGmres { a, precond, cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GmresConfig {
        &self.cfg
    }

    /// Solve `A X = B` starting from the initial guesses in `x`; the
    /// solutions are written back into `x`. Returns one [`SolveResult`]
    /// per column, each bit-identical to an independent single-RHS
    /// solve of that column.
    pub fn solve(
        &self,
        ctx: &mut GpuContext,
        b: &MultiVec<S>,
        x: &mut MultiVec<S>,
    ) -> Vec<SolveResult> {
        let n = self.a.n();
        let k = b.k();
        assert_eq!(b.n(), n, "rhs row count mismatch");
        assert_eq!(x.n(), n, "solution row count mismatch");
        assert_eq!(x.k(), k, "solution column count mismatch");
        let m = self.cfg.m;

        // Shared workspaces. `z` holds the (preconditioned) directions
        // fed to SpMM, `w` the SpMM output being orthogonalized; both
        // are compacted over the active columns each step. `u` holds one
        // update-assembly column per lane so the barrier's per-lane
        // chains stay independent in the recorded DAG.
        let mut r = MultiVec::<S>::zeros(n, k);
        let mut z = MultiVec::<S>::zeros(n, k);
        let mut w = MultiVec::<S>::zeros(n, k);
        let mut u = MultiVec::<S>::zeros(n, k);
        let mut zvec = vec![S::zero(); n];
        let mut h1 = vec![S::zero(); k * m.max(1)];
        let mut h2 = vec![S::zero(); k * m.max(1)];
        let mut norms = vec![S::zero(); k];
        let mut gammas = vec![S::zero(); k];

        // Initial residuals R = B - A X and reference norms: the k
        // per-column residuals are independent of each other, so they
        // form the first recorded region (the fused norm joins them).
        // Shape-stable in (n, k): cached and replayed across solves.
        {
            let mut st = ctx.stream_for(RegionKey::new(region::BLOCK_INIT, n).with_k(k));
            let ah = st.matrix(self.a);
            let bh = st.block(b);
            let xh = st.block(&*x);
            let rh = st.block_mut(&mut r);
            let nh = st.slice_mut(&mut norms);
            for l in 0..k {
                st.residual_as(
                    mpgmres_gpusim::KernelClass::SpMV,
                    ah,
                    bh.col(l),
                    xh.col(l),
                    rh.col_mut(l),
                );
            }
            st.block_norm2_into(rh.read(), k, nh);
            st.sync();
        }

        let mut lanes: Vec<Lane<S>> = Vec::with_capacity(k);
        let mut results: Vec<Option<SolveResult>> = (0..k).map(|_| None).collect();

        for (l, result) in results.iter_mut().enumerate() {
            let gamma = norms[l];
            let r0_norm = gamma.to_f64();
            let mut history: Vec<HistoryPoint> = Vec::new();
            if !r0_norm.is_finite() {
                *result = Some(SolveResult {
                    status: SolveStatus::Breakdown,
                    iterations: 0,
                    restarts: 0,
                    final_relative_residual: f64::NAN,
                    history: Vec::new(),
                });
            } else if r0_norm == 0.0 {
                *result = Some(SolveResult {
                    status: SolveStatus::Converged,
                    iterations: 0,
                    restarts: 0,
                    final_relative_residual: 0.0,
                    history: Vec::new(),
                });
            } else {
                if self.cfg.record_history {
                    history.push(HistoryPoint {
                        iteration: 0,
                        relative_residual: 1.0,
                        kind: HistoryKind::Explicit,
                    });
                }
                if self.cfg.rtol >= 1.0 {
                    *result = Some(SolveResult {
                        status: SolveStatus::Converged,
                        iterations: 0,
                        restarts: 0,
                        final_relative_residual: 1.0,
                        history: std::mem::take(&mut history),
                    });
                }
            }
            lanes.push(Lane {
                v: MultiVector::zeros(if result.is_none() { n } else { 0 }, m + 1),
                hcol: vec![S::zero(); m + 2],
                lsq: None,
                gamma,
                scale: r0_norm,
                total_iters: 0,
                restarts: 0,
                history,
                final_rel: 1.0,
                pending: None,
                in_cycle: false,
                implicit_claims_convergence: false,
                lucky: false,
            });
        }

        loop {
            // Columns still solving, in lane order; columns whose lane
            // finished are deflated out of every batched kernel below.
            let mut cycle: Vec<usize> = Vec::with_capacity(k);
            for (l, result) in results.iter_mut().enumerate() {
                if result.is_some() {
                    continue;
                }
                let lane = &mut lanes[l];
                if lane.total_iters >= self.cfg.max_iters {
                    // Mirror of Gmres's outer-loop-top cap check.
                    *result = Some(SolveResult {
                        status: SolveStatus::MaxIters,
                        iterations: lane.total_iters,
                        restarts: lane.restarts,
                        final_relative_residual: lane.final_rel,
                        history: std::mem::take(&mut lane.history),
                    });
                    continue;
                }
                cycle.push(l);
            }
            if cycle.is_empty() {
                break;
            }

            // Start a cycle on every participating lane: v1 = r / gamma,
            // fused over the lane set (one batched normalize-and-store
            // instead of a copy + scal per lane; bit-identical per lane,
            // charged once as a width-|cycle| block scaling).
            {
                let mut alphas: Vec<S> = Vec::with_capacity(cycle.len());
                let mut srcs: Vec<&[S]> = Vec::with_capacity(cycle.len());
                for &l in &cycle {
                    let lane = &mut lanes[l];
                    alphas.push(S::from_f64(1.0 / lane.gamma.to_f64()));
                    srcs.push(r.col(l));
                    lane.lsq = Some(GivensLsq::new(m, lane.gamma));
                    lane.in_cycle = true;
                    lane.implicit_claims_convergence = false;
                    lane.lucky = false;
                }
                let mut dsts = lane_cols_mut(&mut lanes, &cycle, 0);
                ctx.lane_scal_copy(&alphas, &srcs, &mut dsts);
            }

            for j in 0..m {
                // Lanes still iterating this cycle (lockstep: all share j).
                let act: Vec<usize> = cycle
                    .iter()
                    .copied()
                    .filter(|&l| lanes[l].in_cycle && lanes[l].total_iters < self.cfg.max_iters)
                    .collect();
                if act.is_empty() {
                    break;
                }
                let kc = act.len();
                let ncols = j + 1;

                // Direction block: Z[:, c] = M^{-1} v_j^{(c)} — one
                // fused lane gather when the preconditioner is the
                // identity (the per-lane copies the recorded DAG was
                // built to absorb), per-lane applications otherwise.
                if self.precond.is_identity() {
                    let srcs: Vec<&[S]> = act.iter().map(|&l| lanes[l].v.col(j)).collect();
                    let mut dsts = z.cols_mut(kc);
                    ctx.lane_copy(&srcs, &mut dsts);
                } else {
                    for (c, &l) in act.iter().enumerate() {
                        self.precond
                            .apply(ctx, self.a, lanes[l].v.col(j), z.col_mut(c));
                    }
                }

                // W = A Z (one matrix read for all kc columns) plus the
                // blocked orthogonalization: one recorded region, a
                // chain through W like the single-RHS CGS region. The
                // shape is stable in (n, ncols, kc, active lane set),
                // so steady-state lockstep iterations replay a cached
                // graph; a lane set that doesn't fit the 64-bit mask
                // falls back to an uncached (re-derived) region.
                match self.cfg.ortho {
                    OrthoMethod::Cgs2 | OrthoMethod::Cgs1 => {
                        let two_pass = self.cfg.ortho == OrthoMethod::Cgs2;
                        let vs: Vec<&MultiVector<S>> = act.iter().map(|&l| &lanes[l].v).collect();
                        let key = RegionKey::lane_mask(&act).map(|m| {
                            let id = if two_pass {
                                region::BLOCK_CGS
                            } else {
                                region::BLOCK_CGS1
                            };
                            RegionKey::new(id, n)
                                .with_ncols(ncols)
                                .with_k(kc)
                                .with_lanes(m)
                        });
                        let mut st = match key {
                            Some(key) => ctx.stream_for(key),
                            None => ctx.stream(),
                        };
                        let ah = st.matrix(self.a);
                        let zh = st.block(&z);
                        let wh = st.block_mut(&mut w);
                        let vsh = st.bases(&vs);
                        let h1h = st.slice_mut(&mut h1[..kc * ncols]);
                        let nh = st.slice_mut(&mut norms);
                        st.spmm(ah, zh, kc, wh);
                        st.block_gemv_t(vsh, ncols, wh.read(), h1h);
                        st.block_gemv_n_sub(vsh, ncols, h1h.read(), wh);
                        if two_pass {
                            let h2h = st.slice_mut(&mut h2[..kc * ncols]);
                            st.block_gemv_t(vsh, ncols, wh.read(), h2h);
                            st.block_gemv_n_sub(vsh, ncols, h2h.read(), wh);
                        }
                        st.block_norm2_into(wh.read(), kc, nh);
                        st.sync();
                    }
                    OrthoMethod::Mgs => {
                        // 2j skinny kernels per lane, each feeding the
                        // next host decision; nothing to batch or record.
                        ctx.spmm(self.a, &z, kc, &mut w);
                        for (c, &l) in act.iter().enumerate() {
                            for i in 0..ncols {
                                let hi = ctx.dot(lanes[l].v.col(i), w.col(c));
                                ctx.axpy(-hi, lanes[l].v.col(i), w.col_mut(c));
                                h1[c * ncols + i] = hi;
                            }
                        }
                        ctx.block_norm2(&w, kc, &mut norms);
                    }
                }

                // Per-lane host steps (Hessenberg column assembly,
                // Givens update, convergence decisions); lanes that keep
                // iterating queue their basis extension for one fused
                // lane-set scatter below.
                let mut store: Vec<(usize, usize, S)> = Vec::new(); // (col, lane, 1/h)
                for (c, &l) in act.iter().enumerate() {
                    let lane = &mut lanes[l];
                    match self.cfg.ortho {
                        OrthoMethod::Cgs2 => {
                            for i in 0..ncols {
                                lane.hcol[i] = h1[c * ncols + i] + h2[c * ncols + i];
                            }
                        }
                        OrthoMethod::Cgs1 | OrthoMethod::Mgs => {
                            lane.hcol[..ncols].copy_from_slice(&h1[c * ncols..(c + 1) * ncols]);
                        }
                    }
                    let hj1 = norms[c];
                    lane.hcol[ncols] = hj1;
                    lane.total_iters += 1;
                    ctx.charge_iteration_host(j);

                    if !hj1.is_finite() {
                        lane.pending = Some(SolveStatus::Breakdown);
                        lane.in_cycle = false;
                        continue;
                    }

                    let implicit = lane
                        .lsq
                        .as_mut()
                        .expect("lane in cycle has an lsq")
                        .push_column(&lane.hcol[..ncols + 1]);
                    let implicit_rel = implicit.to_f64() / lane.scale;

                    if self.cfg.record_history {
                        lane.history.push(HistoryPoint {
                            iteration: lane.total_iters,
                            relative_residual: implicit_rel,
                            kind: HistoryKind::Implicit,
                        });
                    }

                    if hj1.to_f64() <= lane.scale * f64::from(f32::MIN_POSITIVE) * f64::EPSILON {
                        lane.lucky = true;
                        lane.implicit_claims_convergence = true;
                        lane.in_cycle = false;
                        continue;
                    }
                    store.push((c, l, S::from_f64(1.0 / hj1.to_f64())));

                    if self.cfg.monitor_implicit && implicit_rel <= self.cfg.rtol {
                        lane.implicit_claims_convergence = true;
                        lane.in_cycle = false;
                    }
                }

                // v_{j+1}^{(l)} = w_c / h_{j+1,j}: one fused lane-set
                // normalize-and-store for every extending lane (the
                // per-lane copy + scal pair this replaces is the small
                // kernel the ROADMAP flagged; bit-identical per lane).
                if !store.is_empty() {
                    let alphas: Vec<S> = store.iter().map(|&(_, _, inv)| inv).collect();
                    let srcs: Vec<&[S]> = store.iter().map(|&(c, _, _)| w.col(c)).collect();
                    let which: Vec<usize> = store.iter().map(|&(_, l, _)| l).collect();
                    let mut dsts = lane_cols_mut(&mut lanes, &which, j + 1);
                    ctx.lane_scal_copy(&alphas, &srcs, &mut dsts);
                }
            }

            // Cycle barrier, phase 1 (host): per-lane least-squares
            // solves and restart bookkeeping; each solved lane queues
            // its update for the recorded device phase.
            let mut upds: Vec<(usize, usize, Vec<S>)> = Vec::new(); // (lane, kc, y)
            for &l in &cycle {
                let lane = &mut lanes[l];
                lane.in_cycle = false;
                let lsq = lane.lsq.as_ref().expect("cycle lane has an lsq");
                let kc = lsq.ncols();
                if kc > 0 {
                    if lsq.is_degenerate() {
                        lane.pending = Some(SolveStatus::Breakdown);
                    } else {
                        let y = lsq.solve(kc);
                        ctx.charge_restart_host(kc);
                        for ui in u.col_mut(l) {
                            *ui = S::zero();
                        }
                        upds.push((l, kc, y));
                    }
                }
                lane.restarts += 1;
            }

            // Phase 2 (device): per-lane update chains x += M^{-1} V y
            // and explicit residuals. Each lane's chain (GEMV-N -> axpy
            // -> residual -> norm) is independent of every other lane's,
            // so the recorded DAG overlaps them — this is where the
            // critical path drops below the serial sum for k > 1. The
            // per-lane update widths (`kc`) vary lane to lane, so these
            // regions are not shape-stable and record uncached.
            if self.precond.is_identity() {
                let mut st = ctx.stream();
                let ah = st.matrix(self.a);
                let bh = st.block(b);
                let xh = st.block_mut(&mut *x);
                let rh = st.block_mut(&mut r);
                let uh = st.block_mut(&mut u);
                let gh = st.slice_mut(&mut gammas);
                for (l, kc, y) in &upds {
                    let vh = st.basis(&lanes[*l].v);
                    let yh = st.slice(y);
                    st.gemv_n_add(vh, *kc, yh, uh.col_mut(*l));
                    st.axpy(S::one(), uh.col(*l), xh.col_mut(*l));
                }
                for &l in &cycle {
                    st.residual_as(
                        mpgmres_gpusim::KernelClass::SpMV,
                        ah,
                        bh.col(l),
                        xh.col(l),
                        rh.col_mut(l),
                    );
                    st.norm2_into(rh.col(l), gh.at(l));
                }
                st.sync();
            } else {
                {
                    let mut st = ctx.stream();
                    let uh = st.block_mut(&mut u);
                    for (l, kc, y) in &upds {
                        let vh = st.basis(&lanes[*l].v);
                        let yh = st.slice(y);
                        st.gemv_n_add(vh, *kc, yh, uh.col_mut(*l));
                    }
                    st.sync();
                }
                // Preconditioner applications run eagerly between the
                // two recorded regions.
                for (l, _, _) in &upds {
                    self.precond.apply(ctx, self.a, u.col(*l), &mut zvec);
                    ctx.axpy(S::one(), &zvec, x.col_mut(*l));
                }
                let mut st = ctx.stream();
                let ah = st.matrix(self.a);
                let bh = st.block(b);
                let xh = st.block(&*x);
                let rh = st.block_mut(&mut r);
                let gh = st.slice_mut(&mut gammas);
                for &l in &cycle {
                    st.residual_as(
                        mpgmres_gpusim::KernelClass::SpMV,
                        ah,
                        bh.col(l),
                        xh.col(l),
                        rh.col_mut(l),
                    );
                    st.norm2_into(rh.col(l), gh.at(l));
                }
                st.sync();
            }
            for &l in &cycle {
                lanes[l].gamma = gammas[l];
            }

            // Per-lane status resolution (the tail of Gmres's outer loop);
            // terminal lanes are deflated.
            for &l in &cycle {
                let lane = &mut lanes[l];
                let explicit_rel = lane.gamma.to_f64() / lane.scale;
                lane.final_rel = explicit_rel;
                if self.cfg.record_history {
                    lane.history.push(HistoryPoint {
                        iteration: lane.total_iters,
                        relative_residual: explicit_rel,
                        kind: HistoryKind::Explicit,
                    });
                }
                let status = if let Some(s) = lane.pending {
                    // Breakdown paths: report convergence if the explicit
                    // residual happens to clear the tolerance.
                    Some(if explicit_rel <= self.cfg.rtol {
                        SolveStatus::Converged
                    } else {
                        s
                    })
                } else if !explicit_rel.is_finite() {
                    Some(SolveStatus::Breakdown)
                } else if explicit_rel <= self.cfg.rtol {
                    Some(SolveStatus::Converged)
                } else if (lane.implicit_claims_convergence || lane.lucky)
                    && explicit_rel > self.cfg.loa_factor * self.cfg.rtol
                {
                    Some(SolveStatus::LossOfAccuracy)
                } else if lane.total_iters >= self.cfg.max_iters {
                    Some(SolveStatus::MaxIters)
                } else {
                    None
                };
                if let Some(status) = status {
                    results[l] = Some(SolveResult {
                        status,
                        iterations: lane.total_iters,
                        restarts: lane.restarts,
                        final_relative_residual: lane.final_rel,
                        history: std::mem::take(&mut lane.history),
                    });
                }
            }
        }

        results
            .into_iter()
            .map(|r| r.expect("every column resolved"))
            .collect()
    }
}
