//! Restarted GMRES(m) with two-pass classical Gram-Schmidt (Algorithm 1).
//!
//! Matches the paper's solver protocol:
//! - CGS2 orthogonalization: two projection passes, each one GEMV-Trans
//!   and one GEMV-NoTrans (§III-A) — these four calls per iteration are
//!   the dominant bars of Figure 4.
//! - Right preconditioning `A M^{-1}`, so residuals match the
//!   unpreconditioned problem in exact arithmetic (§III-D).
//! - Implicit residual from the Givens recurrence monitored every
//!   iteration; explicit residual recomputed at each restart.
//! - Belos-style "loss of accuracy" detection when the two disagree
//!   (§V-F).

use crate::block_gmres::BlockGmres;
use crate::config::{GmresConfig, OrthoMethod, StorePath};
use crate::context::{GpuContext, GpuMatrix};
use crate::precond::Preconditioner;
use crate::service::{
    Disposition, Operator, RequestId, SolveError, SolveOutcome, SolveRequest, Solver,
};
use crate::status::{HistoryKind, HistoryPoint, SolveResult, SolveStatus};
use crate::stream::{region, RegionKey};
use mpgmres_backend::BackendScalar;
use mpgmres_la::givens::GivensLsq;

/// Restarted GMRES(m) in a single working precision `S`.
pub struct Gmres<'a, S: BackendScalar> {
    a: &'a GpuMatrix<S>,
    precond: &'a dyn Preconditioner<S>,
    cfg: GmresConfig,
}

impl<'a, S: BackendScalar> Solver<'a, S> for Gmres<'a, S> {
    /// Serve one [`SolveRequest`]. A plain native-path matrix operand
    /// runs this single-RHS driver directly; packed-storage requests
    /// route through the one-lane block driver, whose columns are
    /// bit-identical to this driver by the block parity contract — the
    /// outcome does not depend on the route.
    fn serve(
        ctx: &mut GpuContext,
        req: &SolveRequest<'a, '_, S>,
    ) -> Result<SolveOutcome<S>, SolveError> {
        req.validate()?;
        match (req.operator, req.store) {
            (Operator::Matrix(a), StorePath::Native) => {
                let solver = Self::try_new(a, req.precond, req.config)?;
                let n = a.n();
                let mut x = req
                    .x0
                    .map(|x| x.to_vec())
                    .unwrap_or_else(|| vec![S::zero(); n]);
                let start = ctx.elapsed();
                let result = solver.solve(ctx, req.rhs, &mut x);
                Ok(SolveOutcome {
                    id: RequestId(0),
                    x,
                    result: Some(result),
                    disposition: Disposition::Completed,
                    degraded: None,
                    queued_seconds: 0.0,
                    solve_seconds: ctx.elapsed() - start,
                })
            }
            _ => BlockGmres::serve(ctx, req),
        }
    }
}

impl<'a, S: BackendScalar> Gmres<'a, S> {
    /// Build a solver for `A x = b` with a right preconditioner.
    /// Panics on an invalid configuration; see [`Gmres::try_new`] for
    /// the typed-error variant.
    pub fn new(a: &'a GpuMatrix<S>, precond: &'a dyn Preconditioner<S>, cfg: GmresConfig) -> Self {
        Self::try_new(a, precond, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Gmres::new`] with the configuration checked into a typed
    /// [`SolveError`] instead of a panic.
    pub fn try_new(
        a: &'a GpuMatrix<S>,
        precond: &'a dyn Preconditioner<S>,
        cfg: GmresConfig,
    ) -> Result<Self, SolveError> {
        cfg.validate()?;
        Ok(Gmres { a, precond, cfg })
    }

    /// The configuration in use.
    pub fn config(&self) -> &GmresConfig {
        &self.cfg
    }

    /// Solve `A x = b` starting from the initial guess in `x`; the
    /// solution is written back into `x`.
    pub fn solve(&self, ctx: &mut GpuContext, b: &[S], x: &mut [S]) -> SolveResult {
        let n = self.a.n();
        // The request surface reports these as SolveError::DimensionMismatch;
        // callers reaching the raw driver keep the debug-build guard.
        debug_assert_eq!(b.len(), n, "rhs length mismatch");
        debug_assert_eq!(x.len(), n, "solution length mismatch");
        let m = self.cfg.m;

        let mut history: Vec<HistoryPoint> = Vec::new();
        // Basis storage path: Native is the classic full-width
        // MultiVector (bit-identical to the pre-BasisStore driver);
        // Compressed stores columns narrow and promotes on read. The
        // region tag is salted with the storage code so each path
        // replays its own recorded stream.
        let mut v = self.cfg.basis.store::<S>(n, m + 1);
        let basis_tag = v.code() << 5;
        // Scratch for promoting a compressed basis column before the
        // SpMV (a native basis borrows the column in place).
        let mut vj = vec![S::zero(); if v.is_native() { 0 } else { n }];
        let mut r = vec![S::zero(); n];
        let mut w = vec![S::zero(); n];
        let mut z = vec![S::zero(); n];
        let mut u = vec![S::zero(); n];
        let mut h1 = vec![S::zero(); m];
        let mut h2 = vec![S::zero(); m];
        let mut hcol = vec![S::zero(); m + 2];

        // Initial residual r0 = b - A x0 and reference norm (paper
        // normalizes by ||r0||; with the standard x0 = 0 this is ||b||).
        ctx.residual_as(mpgmres_gpusim::KernelClass::SpMV, self.a, b, x, &mut r);
        let mut gamma = ctx.norm2(&r);
        let r0_norm = gamma.to_f64();
        if !r0_norm.is_finite() {
            return SolveResult {
                status: SolveStatus::Breakdown,
                iterations: 0,
                restarts: 0,
                final_relative_residual: f64::NAN,
                history,
            };
        }
        if r0_norm == 0.0 {
            return SolveResult {
                status: SolveStatus::Converged,
                iterations: 0,
                restarts: 0,
                final_relative_residual: 0.0,
                history,
            };
        }
        let scale = r0_norm;
        let mut total_iters = 0usize;
        let mut restarts = 0usize;
        if self.cfg.record_history {
            history.push(HistoryPoint {
                iteration: 0,
                relative_residual: 1.0,
                kind: HistoryKind::Explicit,
            });
        }
        if self.cfg.rtol >= 1.0 {
            return SolveResult {
                status: SolveStatus::Converged,
                iterations: 0,
                restarts: 0,
                final_relative_residual: 1.0,
                history,
            };
        }

        let mut status: Option<SolveStatus> = None;
        let mut final_rel = 1.0f64;

        'outer: loop {
            if total_iters >= self.cfg.max_iters {
                status = Some(SolveStatus::MaxIters);
                break;
            }

            // Start a cycle: v1 = r / gamma.
            let inv_gamma = S::from_f64(1.0 / gamma.to_f64());
            ctx.basis_scal_copy(&mut v, 0, inv_gamma, &r);
            let mut lsq = GivensLsq::new(m, gamma);
            let mut j = 0usize;
            let mut implicit_claims_convergence = false;
            let mut lucky = false;

            while j < m && total_iters < self.cfg.max_iters {
                // Direction for w = A M^{-1} v_j (preconditioner
                // applications stay eager — they run their own kernels).
                // A native basis lends the column in place — the exact
                // pre-BasisStore path; a compressed basis promotes the
                // narrow column into scratch first (a charged cast).
                let dir: &[S] = match v.as_native() {
                    Some(nv) if self.precond.is_identity() => nv.col(j),
                    Some(nv) => {
                        self.precond.apply(ctx, Some(self.a), nv.col(j), &mut z);
                        &z
                    }
                    None => {
                        ctx.basis_promote_col(&v, j, &mut vj);
                        if self.precond.is_identity() {
                            &vj
                        } else {
                            self.precond.apply(ctx, Some(self.a), &vj, &mut z);
                            &z
                        }
                    }
                };

                // SpMV + orthogonalization of w against V_{j+1}. The
                // CGS passes form one recorded region: the ops chain
                // through w/h, so the DAG reproduces eager order (and
                // eager timing) exactly — this region is the parity
                // anchor for recorded single-RHS execution. The op
                // sequence is shape-stable in (n, ncols, ortho), so the
                // region records once per shape and replays the cached
                // graph on every later cycle (the steady-state GMRES(m)
                // iteration re-derives nothing).
                let ncols = j + 1;
                let mut hj1 = S::zero();
                match self.cfg.ortho {
                    OrthoMethod::Cgs2 => {
                        // Two classical passes: 2x (GEMV-T + GEMV-N).
                        let key = RegionKey::new(region::GMRES_CGS, n)
                            .with_ncols(ncols)
                            .with_k(2)
                            .with_tag(basis_tag);
                        let mut st = ctx.stream_for(key);
                        let ah = st.matrix(self.a);
                        let dh = st.slice(dir);
                        let vh = st.basis(&v);
                        let wh = st.slice_mut(&mut w);
                        let h1h = st.slice_mut(&mut h1);
                        let h2h = st.slice_mut(&mut h2);
                        let nh = st.val_mut(&mut hj1);
                        st.spmv(ah, dh, wh);
                        st.gemv_t(vh, ncols, wh.read(), h1h);
                        st.gemv_n_sub(vh, ncols, h1h.read(), wh);
                        st.gemv_t(vh, ncols, wh.read(), h2h);
                        st.gemv_n_sub(vh, ncols, h2h.read(), wh);
                        st.norm2_into(wh.read(), nh);
                        st.sync();
                        for i in 0..ncols {
                            hcol[i] = h1[i] + h2[i];
                        }
                    }
                    OrthoMethod::Cgs1 => {
                        let key = RegionKey::new(region::GMRES_CGS, n)
                            .with_ncols(ncols)
                            .with_k(1)
                            .with_tag(basis_tag);
                        let mut st = ctx.stream_for(key);
                        let ah = st.matrix(self.a);
                        let dh = st.slice(dir);
                        let vh = st.basis(&v);
                        let wh = st.slice_mut(&mut w);
                        let h1h = st.slice_mut(&mut h1);
                        let nh = st.val_mut(&mut hj1);
                        st.spmv(ah, dh, wh);
                        st.gemv_t(vh, ncols, wh.read(), h1h);
                        st.gemv_n_sub(vh, ncols, h1h.read(), wh);
                        st.norm2_into(wh.read(), nh);
                        st.sync();
                        hcol[..ncols].copy_from_slice(&h1[..ncols]);
                    }
                    OrthoMethod::Mgs => {
                        // 2j skinny kernels: stable, launch-heavy, and
                        // each dot feeds the next host decision — nothing
                        // to record.
                        // MGS reads columns through S-typed views, so it
                        // is native-only (validate() rejects the combo).
                        let nv = v.expect_native();
                        ctx.spmv(self.a, dir, &mut w);
                        for i in 0..ncols {
                            let hi = ctx.dot(nv.col(i), &w);
                            ctx.axpy(-hi, nv.col(i), &mut w);
                            hcol[i] = hi;
                        }
                        hj1 = ctx.norm2(&w);
                    }
                }
                hcol[ncols] = hj1;
                total_iters += 1;
                ctx.charge_iteration_host(j);

                if !hj1.is_finite() {
                    // Overflow/NaN (a real risk in fp16): stop absorbing
                    // columns and fall through to the update with what we
                    // have.
                    status = Some(SolveStatus::Breakdown);
                    break;
                }

                let implicit = lsq.push_column(&hcol[..ncols + 1]);
                let implicit_rel = implicit.to_f64() / scale;
                j += 1;

                if self.cfg.record_history {
                    history.push(HistoryPoint {
                        iteration: total_iters,
                        relative_residual: implicit_rel,
                        kind: HistoryKind::Implicit,
                    });
                }

                // Lucky breakdown: the Krylov space is invariant; the
                // least-squares solution over the current columns is exact.
                if hj1.to_f64() <= scale * f64::from(f32::MIN_POSITIVE) * f64::EPSILON {
                    lucky = true;
                    implicit_claims_convergence = true;
                    break;
                }
                // v_{j+1} = w / h_{j+1,j}.
                let inv = S::from_f64(1.0 / hj1.to_f64());
                ctx.basis_scal_copy(&mut v, j, inv, &w);

                if self.cfg.monitor_implicit && implicit_rel <= self.cfg.rtol {
                    implicit_claims_convergence = true;
                    break;
                }
            }

            // Assemble the update x += M^{-1} V_k y.
            let k = lsq.ncols();
            if k > 0 {
                if lsq.is_degenerate() {
                    status = Some(SolveStatus::Breakdown);
                } else {
                    let y = lsq.solve(k);
                    ctx.charge_restart_host(k);
                    for ui in u.iter_mut() {
                        *ui = S::zero();
                    }
                    ctx.basis_gemv_n_add(&v, k, &y, &mut u);
                    if self.precond.is_identity() {
                        ctx.axpy(S::one(), &u, x);
                    } else {
                        self.precond.apply(ctx, Some(self.a), &u, &mut z);
                        ctx.axpy(S::one(), &z, x);
                    }
                }
            }
            restarts += 1;

            // Explicit residual check (every restart, as in Belos).
            ctx.residual_as(mpgmres_gpusim::KernelClass::SpMV, self.a, b, x, &mut r);
            gamma = ctx.norm2(&r);
            let explicit_rel = gamma.to_f64() / scale;
            final_rel = explicit_rel;
            if self.cfg.record_history {
                history.push(HistoryPoint {
                    iteration: total_iters,
                    relative_residual: explicit_rel,
                    kind: HistoryKind::Explicit,
                });
            }

            if let Some(s) = status {
                // Breakdown paths: report convergence if the explicit
                // residual happens to clear the tolerance (lucky breakdown
                // usually does).
                if explicit_rel <= self.cfg.rtol {
                    status = Some(SolveStatus::Converged);
                } else {
                    status = Some(s);
                }
                break 'outer;
            }
            if !explicit_rel.is_finite() {
                status = Some(SolveStatus::Breakdown);
                break 'outer;
            }
            if explicit_rel <= self.cfg.rtol {
                status = Some(SolveStatus::Converged);
                break 'outer;
            }
            if (implicit_claims_convergence || lucky)
                && explicit_rel > self.cfg.loa_factor * self.cfg.rtol
            {
                // The implicit recurrence says "done" but the true
                // residual disagrees: Belos's loss-of-accuracy signal.
                status = Some(SolveStatus::LossOfAccuracy);
                break 'outer;
            }
            if total_iters >= self.cfg.max_iters {
                status = Some(SolveStatus::MaxIters);
                break 'outer;
            }
        }

        SolveResult {
            status: status.unwrap_or(SolveStatus::MaxIters),
            iterations: total_iters,
            restarts,
            final_relative_residual: final_rel,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::Identity;
    use mpgmres_gpusim::DeviceModel;
    use mpgmres_la::coo::Coo;
    use mpgmres_la::csr::Csr;
    use mpgmres_la::vec_ops::ReductionOrder;

    fn ctx() -> GpuContext {
        GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential)
    }

    fn laplace1d(n: usize) -> GpuMatrix<f64> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        GpuMatrix::new(coo.into_csr())
    }

    fn check_residual(a: &GpuMatrix<f64>, b: &[f64], x: &[f64], rtol: f64) {
        let mut r = vec![0.0; b.len()];
        a.csr().residual(b, x, &mut r);
        let rn = mpgmres_la::vec_ops::norm2(&r);
        let bn = mpgmres_la::vec_ops::norm2(b);
        assert!(
            rn <= rtol * bn * 1.01,
            "true residual {rn:e} vs {:e}",
            rtol * bn
        );
    }

    #[test]
    fn identity_system_converges_immediately() {
        let a = GpuMatrix::new(Csr::<f64>::identity(10));
        let b = vec![1.0; 10];
        let mut x = vec![0.0; 10];
        let g = Gmres::new(&a, &Identity, GmresConfig::default());
        let res = g.solve(&mut ctx(), &b, &mut x);
        assert_eq!(res.status, SolveStatus::Converged);
        assert!(res.iterations <= 1);
        check_residual(&a, &b, &x, 1e-10);
    }

    #[test]
    fn zero_rhs_trivially_converged() {
        let a = laplace1d(8);
        let b = vec![0.0; 8];
        let mut x = vec![0.0; 8];
        let res = Gmres::new(&a, &Identity, GmresConfig::default()).solve(&mut ctx(), &b, &mut x);
        assert_eq!(res.status, SolveStatus::Converged);
        assert_eq!(res.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn tridiagonal_system_converges_without_restart() {
        let n = 32;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let cfg = GmresConfig::default().with_m(n + 2);
        let res = Gmres::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x);
        assert_eq!(res.status, SolveStatus::Converged);
        assert!(res.iterations <= n + 1, "needed {}", res.iterations);
        check_residual(&a, &b, &x, 1e-10);
    }

    #[test]
    fn restarting_still_converges() {
        let n = 64;
        let a = laplace1d(n);
        let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let mut x = vec![0.0; n];
        let cfg = GmresConfig::default().with_m(8).with_max_iters(10_000);
        let res = Gmres::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x);
        assert_eq!(res.status, SolveStatus::Converged);
        assert!(res.restarts > 1, "restarts should occur with m = 8");
        check_residual(&a, &b, &x, 1e-10);
    }

    #[test]
    fn nonzero_initial_guess_is_used() {
        // Convergence is judged relative to ||r0|| (Alg. 1 of the paper),
        // so the check here is correctness: starting from a perturbed
        // guess must still land on the solution of the ORIGINAL system.
        let n = 16;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        let cfg = GmresConfig::default().with_m(n + 2);
        let mut x_ref = vec![0.0; n];
        Gmres::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x_ref);
        let mut x: Vec<f64> = x_ref
            .iter()
            .enumerate()
            .map(|(i, v)| v + ((i % 3) as f64 - 1.0))
            .collect();
        let res = Gmres::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x);
        assert_eq!(res.status, SolveStatus::Converged);
        check_residual(&a, &b, &x, 1e-9);
        for (xi, ri) in x.iter().zip(&x_ref) {
            assert!((xi - ri).abs() < 1e-6 * ri.abs().max(1.0));
        }
    }

    #[test]
    fn fp32_stalls_above_fp64_tolerance() {
        // The paper's Fig. 3: fp32 GMRES reaches ~5e-6 and stalls; it can
        // never certify 1e-10.
        let n = 64;
        let a64 = laplace1d(n);
        let a = a64.convert::<f32>();
        let b = vec![1.0f32; n];
        let mut x = vec![0.0f32; n];
        let cfg = GmresConfig::default().with_m(20).with_max_iters(2000);
        let res = Gmres::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x);
        assert_ne!(res.status, SolveStatus::Converged);
        // But it should get well below single-precision epsilon scale.
        assert!(res.best_residual() < 1e-4, "best {}", res.best_residual());
    }

    #[test]
    fn implicit_history_is_monotone_within_cycles() {
        let n = 48;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let cfg = GmresConfig::default().with_m(12);
        let res = Gmres::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x);
        let mut prev: Option<(usize, f64)> = None;
        for h in res
            .history
            .iter()
            .filter(|h| h.kind == HistoryKind::Implicit)
        {
            if let Some((pi, pr)) = prev {
                if h.iteration == pi + 1 {
                    assert!(
                        h.relative_residual <= pr * (1.0 + 1e-12),
                        "implicit residual rose within a cycle"
                    );
                }
            }
            prev = Some((h.iteration, h.relative_residual));
        }
    }

    #[test]
    fn max_iters_is_respected() {
        let n = 256;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let cfg = GmresConfig::default().with_m(10).with_max_iters(25);
        let res = Gmres::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x);
        assert_eq!(res.status, SolveStatus::MaxIters);
        assert!(
            res.iterations <= 25 + 10,
            "cap overshoot: {}",
            res.iterations
        );
    }

    #[test]
    fn kernel_mix_matches_cgs2_shape() {
        // Per iteration: 2 GEMV-T, 2 GEMV-N (+1 per restart), 1 SpMV
        // (+1 residual per restart), 1 norm (+1 per restart).
        let n = 40;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let mut c = ctx();
        let cfg = GmresConfig::default().with_m(50);
        let res = Gmres::new(&a, &Identity, cfg).solve(&mut c, &b, &mut x);
        let iters = res.iterations as u64;
        let restarts = res.restarts as u64;
        let rep = c.report();
        use mpgmres_gpusim::PaperCategory as P;
        assert_eq!(rep.categories[&P::GemvTrans].calls, 2 * iters);
        assert_eq!(rep.categories[&P::GemvNoTrans].calls, 2 * iters + restarts);
        assert_eq!(rep.categories[&P::SpMV].calls, iters + restarts + 1);
        assert_eq!(rep.categories[&P::Norm].calls, iters + restarts + 1);
    }

    #[test]
    fn all_ortho_methods_converge_in_fp64() {
        let n = 40;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        for ortho in [OrthoMethod::Cgs2, OrthoMethod::Cgs1, OrthoMethod::Mgs] {
            let mut x = vec![0.0; n];
            let cfg = GmresConfig::default()
                .with_m(12)
                .with_ortho(ortho)
                .with_max_iters(5_000);
            let res = Gmres::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x);
            assert_eq!(res.status, SolveStatus::Converged, "{ortho:?}");
            check_residual(&a, &b, &x, 1e-10);
        }
    }

    #[test]
    fn mgs_charges_skinny_kernels_cgs_charges_wide() {
        // MGS issues 2j Dot/Axpy kernels per iteration; CGS2 issues 4
        // GEMVs. The simulated-launch-overhead difference is the GPU
        // argument for CGS2 (paper §III-A).
        let n = 40;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        let count = |ortho: OrthoMethod| {
            let mut c = ctx();
            let mut x = vec![0.0; n];
            let cfg = GmresConfig::default()
                .with_m(10)
                .with_ortho(ortho)
                .with_max_iters(200);
            Gmres::new(&a, &Identity, cfg).solve(&mut c, &b, &mut x);
            let p = c.profiler();
            (
                p.class_stats(mpgmres_gpusim::KernelClass::GemvT).calls,
                p.class_stats(mpgmres_gpusim::KernelClass::Dot).calls,
            )
        };
        let (gemv_cgs, dot_cgs) = count(OrthoMethod::Cgs2);
        let (gemv_mgs, dot_mgs) = count(OrthoMethod::Mgs);
        assert!(gemv_cgs > 0 && dot_cgs == 0);
        assert!(gemv_mgs == 0 && dot_mgs > 0);
    }

    #[test]
    fn cgs1_is_no_more_accurate_than_cgs2_in_fp32() {
        // The reason the paper uses two passes: a single CGS pass loses
        // orthogonality in low precision. Compare the best residual both
        // reach within the same iteration budget.
        let n = 96;
        let a64 = laplace1d(n);
        let a = a64.convert::<f32>();
        let b = vec![1.0f32; n];
        let run = |ortho: OrthoMethod| {
            let mut x = vec![0.0f32; n];
            let cfg = GmresConfig::default()
                .with_m(24)
                .with_ortho(ortho)
                .with_max_iters(600);
            Gmres::new(&a, &Identity, cfg)
                .solve(&mut ctx(), &b, &mut x)
                .best_residual()
        };
        let cgs2 = run(OrthoMethod::Cgs2);
        let cgs1 = run(OrthoMethod::Cgs1);
        assert!(
            cgs1 >= cgs2 * 0.5,
            "single-pass CGS should not beat CGS2 materially: {cgs1:e} vs {cgs2:e}"
        );
    }

    #[test]
    fn singular_system_reports_breakdown_not_panic() {
        // Singular matrix (zero row): GMRES cannot converge; it must
        // terminate with a non-converged status and finite values.
        let mut coo = Coo::new(4, 4);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(2, 2, 1.0);
        // row 3 is zero
        coo.push(3, 3, 0.0);
        let a = GpuMatrix::new(coo.into_csr());
        let b = vec![1.0; 4];
        let mut x = vec![0.0; 4];
        let cfg = GmresConfig::default().with_m(6).with_max_iters(50);
        let res = Gmres::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x);
        assert_ne!(res.status, SolveStatus::Converged);
    }

    #[test]
    fn fp64_and_fp32_convergence_curves_track_early() {
        // Paper Fig. 3: the fp32 curve follows fp64 until ~1e-5. Compare
        // explicit residuals at matching restarts.
        let n = 100;
        let a64 = laplace1d(n);
        let a32 = a64.convert::<f32>();
        let b64 = vec![1.0f64; n];
        let b32 = vec![1.0f32; n];
        let cfg = GmresConfig::default().with_m(10).with_max_iters(300);
        let mut x64 = vec![0.0f64; n];
        let mut x32 = vec![0.0f32; n];
        let r64 = Gmres::new(&a64, &Identity, cfg).solve(&mut ctx(), &b64, &mut x64);
        let r32 = Gmres::new(&a32, &Identity, cfg).solve(&mut ctx(), &b32, &mut x32);
        let e64: Vec<f64> = r64
            .explicit_history()
            .map(|h| h.relative_residual)
            .collect();
        let e32: Vec<f64> = r32
            .explicit_history()
            .map(|h| h.relative_residual)
            .collect();
        for (a, b) in e64.iter().zip(&e32) {
            if *a < 1e-4 {
                break;
            }
            let ratio = b / a;
            assert!(
                (0.2..5.0).contains(&ratio),
                "curves diverged early: fp64 {a:e} vs fp32 {b:e}"
            );
        }
    }
}
