//! Block Jacobi preconditioner (paper §V-G).
//!
//! `M = blockdiag(A_11, A_22, ...)` with dense LU factors per block.
//! Embarrassingly parallel in both setup and application — the property
//! that makes it GPU-friendly where global triangular solves are not
//! (§II). The paper applies it after RCM reordering so strongly coupled
//! unknowns share a block (`mpgmres_la::rcm`).

use mpgmres_la::dense::{DenseMat, LuFactors};
use mpgmres_la::par;
use mpgmres_scalar::Scalar;

use crate::context::{GpuContext, GpuMatrix};
use crate::precond::Preconditioner;

/// Below this many blocks, setup and apply stay sequential (thread
/// spawn would dominate the tiny per-block work).
const PAR_BLOCK_THRESHOLD: usize = 64;

/// Block Jacobi with dense per-block LU factors.
#[derive(Clone, Debug)]
pub struct BlockJacobi<S> {
    factors: Vec<LuFactors<S>>,
    starts: Vec<usize>,
    block_size: usize,
    n: usize,
    singular_blocks: usize,
}

impl<S: Scalar> BlockJacobi<S> {
    /// Factor the diagonal blocks of `A` with the given block size (the
    /// last block may be smaller). Singular blocks fall back to the
    /// identity (counted in [`BlockJacobi::singular_blocks`]), matching
    /// the robust behaviour of production Jacobi smoothers.
    pub fn build(a: &GpuMatrix<S>, block_size: usize) -> Self {
        assert!(block_size >= 1, "block size must be >= 1");
        let n = a.n();
        let starts: Vec<usize> = (0..n).step_by(block_size).collect();
        // Each block factors independently: parallel setup is
        // deterministic (results depend on position only).
        let threads = if starts.len() >= PAR_BLOCK_THRESHOLD {
            par::default_threads()
        } else {
            1
        };
        let mut slots: Vec<Option<(LuFactors<S>, bool)>> = vec![None; starts.len()];
        par::for_each_slot_mut(threads, &mut slots, |i, slot| {
            let s = starts[i];
            let size = block_size.min(n - s);
            let block = DenseMat::from_col_major(size, size, a.csr().diag_block(s, size));
            *slot = Some(match LuFactors::factor(&block) {
                Ok(f) => (f, false),
                Err(_) => {
                    let f = LuFactors::factor(&DenseMat::identity(size))
                        .expect("identity always factors");
                    (f, true)
                }
            });
        });
        let results: Vec<(LuFactors<S>, bool)> = slots
            .into_iter()
            .map(|r| r.expect("every block factored"))
            .collect();
        let singular_blocks = results.iter().filter(|(_, bad)| *bad).count();
        let factors = results.into_iter().map(|(f, _)| f).collect();
        BlockJacobi {
            factors,
            starts,
            block_size,
            n,
            singular_blocks,
        }
    }

    /// Number of diagonal blocks.
    pub fn nblocks(&self) -> usize {
        self.factors.len()
    }

    /// Blocks that were singular and replaced by the identity.
    pub fn singular_blocks(&self) -> usize {
        self.singular_blocks
    }

    /// Configured block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }
}

impl<S: Scalar> Preconditioner<S> for BlockJacobi<S> {
    fn apply(&self, ctx: &mut GpuContext, _a: Option<&GpuMatrix<S>>, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        ctx.block_solve_charge::<S>(self.n, self.block_size);
        // Batched block solves: each block is an independent output, so
        // distributing them over the backend's workers cannot change any
        // result (parallel backend recovers wall-clock; reference backend
        // stays sequential; the simulated cost above is what the paper's
        // timings see either way).
        y.copy_from_slice(x);
        let ends: Vec<usize> = self
            .starts
            .iter()
            .skip(1)
            .copied()
            .chain(std::iter::once(self.n))
            .collect();
        let threads = if self.factors.len() >= PAR_BLOCK_THRESHOLD {
            ctx.backend().parallelism()
        } else {
            1
        };
        par::for_each_partition_mut(threads, y, &ends, |i, chunk| {
            self.factors[i].solve_in_place(chunk);
        });
    }

    fn describe(&self) -> String {
        format!("block-jacobi({})", self.block_size)
    }

    fn needs_matrix(&self) -> bool {
        // The factors were extracted at build time; application never
        // touches `A`, so block Jacobi works on packed storage paths too.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpgmres_gpusim::DeviceModel;
    use mpgmres_la::coo::Coo;
    use mpgmres_la::vec_ops::ReductionOrder;

    fn ctx() -> GpuContext {
        GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential)
    }

    /// Block-diagonal matrix with 2x2 blocks [[3,1],[1,3]].
    fn block_diag(nblocks: usize) -> GpuMatrix<f64> {
        let n = 2 * nblocks;
        let mut coo = Coo::new(n, n);
        for b in 0..nblocks {
            let s = 2 * b;
            coo.push(s, s, 3.0);
            coo.push(s, s + 1, 1.0);
            coo.push(s + 1, s, 1.0);
            coo.push(s + 1, s + 1, 3.0);
        }
        GpuMatrix::new(coo.into_csr())
    }

    #[test]
    fn exact_inverse_for_block_diagonal_matrix() {
        let a = block_diag(5);
        let bj = BlockJacobi::build(&a, 2);
        assert_eq!(bj.nblocks(), 5);
        assert_eq!(bj.singular_blocks(), 0);
        let x: Vec<f64> = (0..10).map(|i| i as f64 - 4.0).collect();
        let mut ax = vec![0.0; 10];
        a.csr().spmv(&x, &mut ax);
        let mut y = vec![0.0; 10];
        Preconditioner::apply(&bj, &mut ctx(), Some(&a), &ax, &mut y);
        for (yi, xi) in y.iter().zip(&x) {
            assert!((yi - xi).abs() < 1e-13, "M^-1 A x != x: {yi} vs {xi}");
        }
    }

    #[test]
    fn point_jacobi_scales_by_diagonal() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 2.0f64);
        coo.push(1, 1, 4.0);
        coo.push(2, 2, 8.0);
        coo.push(0, 1, 1.0); // off-diagonal ignored by J1
        let a = GpuMatrix::new(coo.into_csr());
        let bj = BlockJacobi::build(&a, 1);
        let mut y = vec![0.0; 3];
        Preconditioner::apply(&bj, &mut ctx(), Some(&a), &[2.0, 4.0, 8.0], &mut y);
        assert_eq!(y, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn ragged_last_block() {
        let a = block_diag(3); // n = 6
        let bj = BlockJacobi::build(&a, 4); // blocks of 4 and 2
        assert_eq!(bj.nblocks(), 2);
        let mut y = vec![0.0; 6];
        Preconditioner::apply(&bj, &mut ctx(), Some(&a), &[1.0; 6], &mut y);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn singular_block_falls_back_to_identity() {
        // Diagonal [1, 0, 1]: the middle 1x1 block is singular.
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1.0f64);
        coo.push(1, 1, 0.0);
        coo.push(2, 2, 1.0);
        let a = GpuMatrix::new(coo.into_csr());
        let bj = BlockJacobi::build(&a, 1);
        assert_eq!(bj.singular_blocks(), 1);
        let mut y = vec![0.0; 3];
        Preconditioner::apply(&bj, &mut ctx(), Some(&a), &[5.0, 7.0, 9.0], &mut y);
        assert_eq!(y, vec![5.0, 7.0, 9.0]); // identity fallback passes through
    }

    #[test]
    fn works_in_fp32() {
        let a = block_diag(4).convert::<f32>();
        let bj = BlockJacobi::build(&a, 2);
        let mut y = vec![0.0f32; 8];
        Preconditioner::apply(&bj, &mut ctx(), Some(&a), &[1.0f32; 8], &mut y);
        // [[3,1],[1,3]] solve of [1,1] is [0.25, 0.25].
        for v in &y {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn apply_charges_time() {
        let a = block_diag(4);
        let bj = BlockJacobi::build(&a, 2);
        let mut c = ctx();
        let mut y = vec![0.0; 8];
        Preconditioner::apply(&bj, &mut c, Some(&a), &[1.0; 8], &mut y);
        assert!(c.elapsed() > 0.0);
    }
}
