//! GMRES polynomial preconditioner (paper §III-D, ref. \[16\]).
//!
//! Builds `M = p(A) ~ A^{-1}` from a `d`-step Arnoldi process:
//!
//! 1. Run `d` Arnoldi steps on `(A, b)` to get the rectangular Hessenberg
//!    matrix `Hbar`.
//! 2. The roots of the degree-`d` GMRES *residual* polynomial are the
//!    **harmonic Ritz values** — eigenvalues of
//!    `H + h_{d+1,d}^2 (H^-T e_d) e_d^T`, still upper Hessenberg, solved
//!    with the Francis QR sweep from `mpgmres_la::eig`.
//! 3. Order the roots by **modified Leja ordering** (max-product spacing,
//!    conjugate pairs kept adjacent) for numerically stable application.
//! 4. Apply via the product form: with `R(z) = prod_i (1 - z/theta_i)`
//!    and `p(z) = (1 - R(z))/z`, accumulate
//!    `y += prod / theta_i ; prod -= (A prod)/theta_i`, fusing complex
//!    conjugate pairs into real quadratic updates.
//!
//! The polynomial costs `d - 1` SpMVs per application (plus the outer
//! solver's own SpMV), which is why polynomial preconditioning shifts the
//! timing profile toward SpMV (Fig. 7) — exactly where fp32 wins biggest.

use crate::context::{GpuContext, GpuMatrix};
use crate::precond::Preconditioner;
use mpgmres_backend::BackendScalar;
use mpgmres_la::dense::{DenseMat, LuFactors};
use mpgmres_la::eig::{hessenberg_eigenvalues, Complex};
use mpgmres_la::givens::GivensLsq;
use mpgmres_la::multivector::MultiVector;

/// Errors from polynomial construction.
#[derive(Clone, Debug, PartialEq)]
pub enum PolyError {
    /// Arnoldi broke down before reaching the requested degree with too
    /// few roots to build a useful polynomial.
    EarlyBreakdown {
        /// Steps completed before breakdown.
        steps: usize,
    },
    /// The projected eigenproblem failed (QR non-convergence) or produced
    /// a root at the origin (singular polynomial).
    BadSpectrum(String),
}

impl core::fmt::Display for PolyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PolyError::EarlyBreakdown { steps } => {
                write!(f, "Arnoldi broke down after {steps} steps")
            }
            PolyError::BadSpectrum(msg) => write!(f, "harmonic Ritz computation failed: {msg}"),
        }
    }
}

impl std::error::Error for PolyError {}

/// The GMRES polynomial preconditioner.
#[derive(Clone, Debug)]
pub struct PolyPreconditioner {
    /// Leja-ordered harmonic Ritz values; conjugate pairs adjacent with
    /// the positive-imaginary member first.
    roots: Vec<Complex>,
    /// Requested degree (== Arnoldi steps run).
    degree: usize,
    /// Simulated seconds spent in construction (reported separately; the
    /// paper excludes polynomial creation from solve times, §V-C).
    setup_seconds: f64,
    /// The Arnoldi least-squares residual `||b - A p(A) b|| / ||b||` the
    /// polynomial achieves on its own seed (in exact arithmetic the
    /// product form reproduces it; tests verify).
    seed_residual_rel: f64,
}

impl PolyPreconditioner {
    /// Build a degree-`degree` GMRES polynomial for `A`, seeding the
    /// Arnoldi process with a deterministic pseudo-random vector.
    ///
    /// A random seed is the practice of the Trilinos implementation the
    /// paper builds on (ref. \[16\]): a structured seed such as the
    /// right-hand side of a PDE problem is nearly deficient in
    /// high-frequency eigencomponents, which leaves the GMRES residual
    /// polynomial unconstrained on part of the spectrum — `A p(A)` then
    /// has wild or negative eigenvalues and the preconditioned solver
    /// stagnates. A random seed touches every eigendirection.
    pub fn build_auto_seed<S: BackendScalar>(
        ctx: &mut GpuContext,
        a: &GpuMatrix<S>,
        degree: usize,
    ) -> Result<Self, PolyError> {
        // Deterministic full-spectrum seed (splitmix64 stream).
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let seed: Vec<S> = (0..a.n())
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                S::from_f64((z >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
            })
            .collect();
        Self::build(ctx, a, degree, &seed)
    }

    /// Build a degree-`degree` GMRES polynomial for `A` with an explicit
    /// Arnoldi seed vector (see [`PolyPreconditioner::build_auto_seed`]
    /// for why the seed should have full spectral support).
    ///
    /// All vector work runs in precision `S` through the instrumented
    /// context (so an fp32 polynomial is "computed in fp32", §V-C), while
    /// the tiny projected eigenproblem is solved in f64.
    pub fn build<S: BackendScalar>(
        ctx: &mut GpuContext,
        a: &GpuMatrix<S>,
        degree: usize,
        b: &[S],
    ) -> Result<Self, PolyError> {
        assert!(degree >= 1, "polynomial degree must be >= 1");
        assert_eq!(b.len(), a.n(), "seed length mismatch");
        let t0 = ctx.elapsed();
        let n = a.n();
        let m = degree;

        // Arnoldi with CGS2 (same kernels as the solver).
        let mut v = MultiVector::<S>::zeros(n, m + 1);
        let mut w = vec![S::zero(); n];
        let mut h1 = vec![S::zero(); m];
        let mut h2 = vec![S::zero(); m];
        let mut hbar = DenseMat::<f64>::zeros(m + 1, m);

        let beta = ctx.norm2(b);
        if !(beta.to_f64() > 0.0) {
            return Err(PolyError::EarlyBreakdown { steps: 0 });
        }
        v.col_mut(0).copy_from_slice(b);
        ctx.scal(S::from_f64(1.0 / beta.to_f64()), v.col_mut(0));
        // The Givens recurrence is not needed for the roots, but running it
        // keeps a cheap sanity check on the LS residual.
        let mut lsq = GivensLsq::new(m, beta);

        let mut steps = 0usize;
        for j in 0..m {
            let (vj, wj) = (v.col(j), &mut w);
            ctx.spmv(a, vj, wj);
            let ncols = j + 1;
            ctx.gemv_t(&v, ncols, &w, &mut h1);
            ctx.gemv_n_sub(&v, ncols, &h1, &mut w);
            ctx.gemv_t(&v, ncols, &w, &mut h2);
            ctx.gemv_n_sub(&v, ncols, &h2, &mut w);
            let hj1 = ctx.norm2(&w);
            let mut hcol = vec![S::zero(); ncols + 1];
            for i in 0..ncols {
                hcol[i] = h1[i] + h2[i];
                hbar[(i, j)] = hcol[i].to_f64();
            }
            hcol[ncols] = hj1;
            hbar[(ncols, j)] = hj1.to_f64();
            lsq.push_column(&hcol);
            steps = j + 1;
            if hj1.to_f64() <= 0.0 || !hj1.is_finite() {
                break;
            }
            v.col_mut(j + 1).copy_from_slice(&w);
            ctx.scal(S::from_f64(1.0 / hj1.to_f64()), v.col_mut(j + 1));
        }
        if steps < 1 {
            return Err(PolyError::EarlyBreakdown { steps });
        }
        let d = steps;

        // Harmonic Ritz values: eig(H + h^2 * (H^-T e_d) e_d^T).
        let hd = DenseMat::from_fn(d, d, |r, c| hbar[(r, c)]);
        let ht = hd.transpose();
        let lu = LuFactors::factor(&ht)
            .map_err(|e| PolyError::BadSpectrum(format!("H^T singular: {e}")))?;
        let mut g = vec![0.0f64; d];
        g[d - 1] = 1.0;
        lu.solve_in_place(&mut g);
        let h2_corner = hbar[(d, d - 1)] * hbar[(d, d - 1)];
        let mut modified = hd.clone();
        for r in 0..d {
            modified[(r, d - 1)] += h2_corner * g[r];
        }
        ctx.charge_host_flops(2 * d * d * d / 3 + 10 * d * d);
        let mut roots =
            hessenberg_eigenvalues(&modified).map_err(|e| PolyError::BadSpectrum(e.to_string()))?;
        if roots
            .iter()
            .any(|r| r.abs() == 0.0 || !r.re.is_finite() || !r.im.is_finite())
        {
            return Err(PolyError::BadSpectrum(
                "root at origin or non-finite".into(),
            ));
        }
        normalize_conjugates(&mut roots);
        let roots = modified_leja_order(&roots);

        Ok(PolyPreconditioner {
            roots,
            degree,
            setup_seconds: ctx.elapsed() - t0,
            seed_residual_rel: lsq.implicit_residual().to_f64() / beta.to_f64(),
        })
    }

    /// The Leja-ordered harmonic Ritz values.
    pub fn roots(&self) -> &[Complex] {
        &self.roots
    }

    /// Requested polynomial degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Simulated seconds the construction took (the paper reports ~0.5 s
    /// for its degree-40 cases and excludes it from solve time).
    pub fn setup_seconds(&self) -> f64 {
        self.setup_seconds
    }

    /// The GMRES least-squares residual the degree-`d` polynomial attains
    /// on its Arnoldi seed, `||b - A p(A) b|| / ||b||`.
    pub fn seed_residual_rel(&self) -> f64 {
        self.seed_residual_rel
    }
}

/// Force exact conjugate pairing (QR output can differ in the last ulp)
/// and put the positive-imaginary member first.
fn normalize_conjugates(roots: &mut [Complex]) {
    let mut i = 0;
    while i < roots.len() {
        if roots[i].im != 0.0 && i + 1 < roots.len() {
            let (a, b) = (roots[i], roots[i + 1]);
            let re = 0.5 * (a.re + b.re);
            let im = 0.5 * (a.im.abs() + b.im.abs());
            roots[i] = Complex { re, im };
            roots[i + 1] = Complex { re, im: -im };
            i += 2;
        } else {
            i += 1;
        }
    }
}

/// Modified Leja ordering: greedily maximize the product of distances to
/// already-chosen points (in log space), keeping conjugate pairs adjacent.
fn modified_leja_order(roots: &[Complex]) -> Vec<Complex> {
    // Work on unique representatives: reals alone, complex pairs as the
    // positive-imaginary member.
    let mut items: Vec<Complex> = Vec::new();
    let mut i = 0;
    while i < roots.len() {
        let r = roots[i];
        if r.im != 0.0 {
            items.push(Complex {
                re: r.re,
                im: r.im.abs(),
            });
            i += 2;
        } else {
            items.push(r);
            i += 1;
        }
    }
    let mut chosen: Vec<Complex> = Vec::with_capacity(roots.len());
    let mut used = vec![false; items.len()];

    // Start from the largest magnitude.
    let first = (0..items.len())
        .max_by(|&a, &b| items[a].abs().partial_cmp(&items[b].abs()).unwrap())
        .unwrap();
    push_with_conjugate(&mut chosen, items[first]);
    used[first] = true;

    while used.iter().any(|&u| !u) {
        let mut best: Option<(usize, f64)> = None;
        for (idx, item) in items.iter().enumerate() {
            if used[idx] {
                continue;
            }
            // Sum of log-distances to every already-chosen point.
            let mut score = 0.0f64;
            for c in &chosen {
                let d = ((item.re - c.re).powi(2) + (item.im - c.im).powi(2)).sqrt();
                score += d.max(1e-300).ln();
            }
            if best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((idx, score));
            }
        }
        let (idx, _) = best.expect("unused item must exist");
        push_with_conjugate(&mut chosen, items[idx]);
        used[idx] = true;
    }
    chosen
}

fn push_with_conjugate(chosen: &mut Vec<Complex>, z: Complex) {
    chosen.push(z);
    if z.im != 0.0 {
        chosen.push(Complex {
            re: z.re,
            im: -z.im,
        });
    }
}

impl<S: BackendScalar> Preconditioner<S> for PolyPreconditioner {
    fn apply(&self, ctx: &mut GpuContext, a: Option<&GpuMatrix<S>>, x: &[S], y: &mut [S]) {
        let a = a.expect("polynomial preconditioner needs the plain matrix");
        let n = x.len();
        debug_assert_eq!(y.len(), n);
        let mut prod = x.to_vec();
        let mut t = vec![S::zero(); n];
        for yi in y.iter_mut() {
            *yi = S::zero();
        }
        let d = self.roots.len();
        let mut i = 0;
        while i < d {
            let theta = self.roots[i];
            let last_real = i + 1 >= d;
            let last_pair = i + 2 >= d;
            if theta.im == 0.0 {
                let inv = S::from_f64(1.0 / theta.re);
                // y += prod / theta.
                ctx.axpy(inv, &prod, y);
                if !last_real {
                    // prod -= (A prod) / theta.
                    ctx.spmv(a, &prod, &mut t);
                    ctx.axpy(S::from_f64(-1.0 / theta.re), &t, &mut prod);
                }
                i += 1;
            } else {
                // Conjugate pair: combine into real arithmetic.
                let two_a = 2.0 * theta.re;
                let mag2 = theta.abs2();
                ctx.spmv(a, &prod, &mut t);
                // y += (2a * prod - A prod) / |theta|^2.
                ctx.axpy(S::from_f64(two_a / mag2), &prod, y);
                ctx.axpy(S::from_f64(-1.0 / mag2), &t, y);
                if !last_pair {
                    // prod -= (2a * (A prod) - A^2 prod) / |theta|^2.
                    let mut t2 = vec![S::zero(); n];
                    ctx.spmv(a, &t, &mut t2);
                    ctx.axpy(S::from_f64(-two_a / mag2), &t, &mut prod);
                    ctx.axpy(S::from_f64(1.0 / mag2), &t2, &mut prod);
                }
                i += 2;
            }
        }
    }

    fn describe(&self) -> String {
        format!("poly({})", self.degree)
    }

    fn spmvs_per_apply(&self) -> usize {
        // Real roots cost one SpMV each except the last; a conjugate pair
        // costs two except the trailing pair which costs one.
        self.degree.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpgmres_gpusim::DeviceModel;
    use mpgmres_la::coo::Coo;
    use mpgmres_la::vec_ops::{norm2, ReductionOrder};

    fn ctx() -> GpuContext {
        GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential)
    }

    fn spd_tridiag(n: usize) -> GpuMatrix<f64> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        GpuMatrix::new(coo.into_csr())
    }

    fn nonsym(n: usize) -> GpuMatrix<f64> {
        // Tridiagonal Toeplitz with opposite-sign off-diagonals: its
        // spectrum is genuinely complex (4 + 2 sqrt(ac) cos(..) with
        // ac < 0).
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i > 0 {
                coo.push(i, i - 1, -1.8);
            }
            if i + 1 < n {
                coo.push(i, i + 1, 0.4);
            }
        }
        GpuMatrix::new(coo.into_csr())
    }

    /// Diagonally dominant SPD tridiagonal: GMRES converges fast, so a
    /// modest-degree polynomial is already a strong approximate inverse.
    fn dd_tridiag(n: usize) -> GpuMatrix<f64> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        GpuMatrix::new(coo.into_csr())
    }

    #[test]
    fn full_degree_polynomial_is_exact_inverse() {
        // With degree = n, the harmonic Ritz values are the eigenvalues,
        // R(A) annihilates the Krylov space of b, so A p(A) b = b.
        let n = 10;
        let a = spd_tridiag(n);
        let b = vec![1.0f64; n];
        let mut c = ctx();
        let p = PolyPreconditioner::build(&mut c, &a, n, &b).unwrap();
        let mut pb = vec![0.0; n];
        Preconditioner::apply(&p, &mut c, Some(&a), &b, &mut pb);
        let mut apb = vec![0.0; n];
        a.csr().spmv(&pb, &mut apb);
        let err: f64 = apb
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-7 * norm2(&b), "A p(A) b != b: err {err:e}");
    }

    #[test]
    fn nonsymmetric_matrix_gets_complex_roots_and_still_works() {
        let n = 12;
        let a = nonsym(n);
        let b = vec![1.0f64; n];
        let mut c = ctx();
        let p = PolyPreconditioner::build(&mut c, &a, n, &b).unwrap();
        // Conjugate pairs must be adjacent and exact conjugates.
        let roots = p.roots();
        let mut i = 0;
        let mut saw_complex = false;
        while i < roots.len() {
            if roots[i].im != 0.0 {
                saw_complex = true;
                assert!(i + 1 < roots.len(), "dangling complex root");
                assert_eq!(roots[i].re, roots[i + 1].re);
                assert_eq!(roots[i].im, -roots[i + 1].im);
                i += 2;
            } else {
                i += 1;
            }
        }
        // This lopsided operator genuinely has complex harmonic Ritz values.
        assert!(saw_complex, "expected complex roots for nonsymmetric A");
        let mut pb = vec![0.0; n];
        Preconditioner::apply(&p, &mut c, Some(&a), &b, &mut pb);
        let mut apb = vec![0.0; n];
        a.csr().spmv(&pb, &mut apb);
        let err: f64 = apb
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(
            err < 1e-6 * norm2(&b),
            "complex-pair application broken: {err:e}"
        );
    }

    #[test]
    fn low_degree_polynomial_reduces_condition() {
        // On a well-conditioned system, a modest-degree polynomial is a
        // strong approximate inverse: ||b - A p(A) b|| << ||b||.
        let n = 64;
        let a = dd_tridiag(n);
        let b = vec![1.0f64; n];
        let mut c = ctx();
        let p = PolyPreconditioner::build(&mut c, &a, 12, &b).unwrap();
        let mut pb = vec![0.0; n];
        Preconditioner::apply(&p, &mut c, Some(&a), &b, &mut pb);
        let mut apb = vec![0.0; n];
        a.csr().spmv(&pb, &mut apb);
        let err: f64 = apb
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(
            err < 1e-4 * norm2(&b),
            "degree-12 polynomial too weak: {err:e}"
        );
    }

    #[test]
    fn product_form_reproduces_arnoldi_ls_residual() {
        // In exact arithmetic the GMRES residual polynomial has its roots
        // at the harmonic Ritz values, so applying the product form to the
        // seed must reproduce the Arnoldi least-squares residual:
        // ||b - A p(A) b|| == lsq residual. This validates the whole
        // harmonic-Ritz -> Leja -> conjugate-pair-application chain.
        for (name, a) in [
            ("spd", spd_tridiag(40)),
            ("nonsym", nonsym(40)),
            ("dd", dd_tridiag(40)),
        ] {
            let n = a.n();
            let b = vec![1.0f64; n];
            let mut c = ctx();
            let p = PolyPreconditioner::build(&mut c, &a, 9, &b).unwrap();
            let mut pb = vec![0.0; n];
            Preconditioner::apply(&p, &mut c, Some(&a), &b, &mut pb);
            let mut apb = vec![0.0; n];
            a.csr().spmv(&pb, &mut apb);
            let err: f64 = apb
                .iter()
                .zip(&b)
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f64>()
                .sqrt()
                / norm2(&b);
            let expect = p.seed_residual_rel();
            assert!(
                (err - expect).abs() <= 1e-8 + 0.02 * expect,
                "{name}: product form {err:e} vs LS residual {expect:e}"
            );
        }
    }

    #[test]
    fn leja_order_starts_at_max_magnitude() {
        let roots = vec![
            Complex { re: 1.0, im: 0.0 },
            Complex { re: 5.0, im: 0.0 },
            Complex { re: 2.0, im: 0.0 },
            Complex { re: 3.0, im: 0.0 },
        ];
        let ordered = modified_leja_order(&roots);
        assert_eq!(ordered[0].re, 5.0);
        // Second pick maximizes distance from 5 -> 1.
        assert_eq!(ordered[1].re, 1.0);
        assert_eq!(ordered.len(), 4);
    }

    #[test]
    fn leja_keeps_pairs_adjacent() {
        let roots = vec![
            Complex { re: 1.0, im: 2.0 },
            Complex { re: 1.0, im: -2.0 },
            Complex { re: 4.0, im: 0.0 },
            Complex { re: 0.5, im: 1.0 },
            Complex { re: 0.5, im: -1.0 },
        ];
        let ordered = modified_leja_order(&roots);
        assert_eq!(ordered.len(), 5);
        let mut i = 0;
        while i < ordered.len() {
            if ordered[i].im != 0.0 {
                assert_eq!(ordered[i].im, -ordered[i + 1].im);
                i += 2;
            } else {
                i += 1;
            }
        }
    }

    #[test]
    fn spmv_count_per_apply() {
        let n = 24;
        let a = spd_tridiag(n);
        let b = vec![1.0f64; n];
        let mut c = ctx();
        let p = PolyPreconditioner::build(&mut c, &a, 8, &b).unwrap();
        c.reset_profile();
        let mut y = vec![0.0; n];
        Preconditioner::apply(&p, &mut c, Some(&a), &b, &mut y);
        let spmvs = c
            .profiler()
            .class_stats(mpgmres_gpusim::KernelClass::SpMV)
            .calls;
        // degree-8 with real spectrum: 7 SpMVs (last root skips the update).
        assert_eq!(spmvs, 7);
        assert_eq!(
            <PolyPreconditioner as Preconditioner<f64>>::spmvs_per_apply(&p),
            7
        );
    }

    #[test]
    fn setup_time_recorded_separately() {
        let n = 16;
        let a = spd_tridiag(n);
        let b = vec![1.0f64; n];
        let mut c = ctx();
        let p = PolyPreconditioner::build(&mut c, &a, 6, &b).unwrap();
        assert!(p.setup_seconds() > 0.0);
    }

    #[test]
    fn zero_seed_errors() {
        let n = 8;
        let a = spd_tridiag(n);
        let b = vec![0.0f64; n];
        let mut c = ctx();
        let err = PolyPreconditioner::build(&mut c, &a, 4, &b).unwrap_err();
        assert!(matches!(err, PolyError::EarlyBreakdown { .. }));
    }

    #[test]
    fn fp32_polynomial_builds() {
        let n = 32;
        let a = spd_tridiag(n).convert::<f32>();
        let b = vec![1.0f32; n];
        let mut c = ctx();
        let p = PolyPreconditioner::build(&mut c, &a, 10, &b).unwrap();
        let mut y = vec![0.0f32; n];
        Preconditioner::apply(&p, &mut c, Some(&a), &b, &mut y);
        assert!(y.iter().all(|v| v.is_finite()));
    }
}
