//! Chebyshev polynomial preconditioner.
//!
//! The classic fixed-polynomial alternative to the GMRES polynomial of
//! [`crate::precond::poly`] for SPD operators: given bounds
//! `[lambda_min, lambda_max]` on the spectrum, the degree-d Chebyshev
//! polynomial minimizes the max-norm of the residual polynomial over the
//! interval. Like the GMRES polynomial it is pure SpMV + AXPY — exactly
//! the kernel mix that profits most from fp32 on the simulated GPU — and
//! unlike it, no Arnoldi process or eigensolve is needed, only the two
//! bounds (estimated here with a short power iteration, Gershgorin for
//! the lower end).
//!
//! This is an extension beyond the paper (its follow-up work compares
//! GMRES vs Chebyshev polynomials); included for the ablation studies.

use mpgmres_backend::BackendScalar;

use crate::context::{GpuContext, GpuMatrix};
use crate::precond::Preconditioner;

/// Error from Chebyshev construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChebyshevError {
    /// The spectral bound estimate collapsed (zero or non-finite).
    BadBounds {
        /// Estimated lower bound.
        lo: f64,
        /// Estimated upper bound.
        hi: f64,
    },
}

impl core::fmt::Display for ChebyshevError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChebyshevError::BadBounds { lo, hi } => {
                write!(f, "unusable spectral bounds [{lo}, {hi}]")
            }
        }
    }
}

impl std::error::Error for ChebyshevError {}

/// Chebyshev polynomial approximation of `A^{-1}` on `[lo, hi]`.
#[derive(Clone, Debug)]
pub struct ChebyshevPreconditioner {
    degree: usize,
    lo: f64,
    hi: f64,
}

impl ChebyshevPreconditioner {
    /// Build with explicit spectral bounds `0 < lo <= hi`.
    pub fn with_bounds(degree: usize, lo: f64, hi: f64) -> Result<Self, ChebyshevError> {
        if !(lo > 0.0 && hi >= lo && hi.is_finite()) {
            return Err(ChebyshevError::BadBounds { lo, hi });
        }
        assert!(degree >= 1);
        Ok(ChebyshevPreconditioner { degree, lo, hi })
    }

    /// Build by estimating the bounds: `hi` from a few power-iteration
    /// steps (inflated 5%), `lo` as `hi / kappa_guess` with the standard
    /// smoother convention `kappa_guess = 30` unless a tighter guess is
    /// supplied.
    pub fn build<S: BackendScalar>(
        ctx: &mut GpuContext,
        a: &GpuMatrix<S>,
        degree: usize,
        kappa_guess: Option<f64>,
    ) -> Result<Self, ChebyshevError> {
        let n = a.n();
        let mut v: Vec<S> = (0..n)
            .map(|i| S::from_f64(if i % 2 == 0 { 1.0 } else { -0.7 } / (n as f64).sqrt()))
            .collect();
        let mut w = vec![S::zero(); n];
        let mut hi_est = 0.0f64;
        for _ in 0..12 {
            ctx.spmv(a, &v, &mut w);
            let norm = ctx.norm2(&w).to_f64();
            if !(norm > 0.0) || !norm.is_finite() {
                return Err(ChebyshevError::BadBounds { lo: 0.0, hi: norm });
            }
            hi_est = norm;
            let inv = S::from_f64(1.0 / norm);
            for (vi, &wi) in v.iter_mut().zip(&w) {
                *vi = wi * inv;
            }
        }
        let hi = hi_est * 1.05;
        let lo = hi / kappa_guess.unwrap_or(30.0);
        Self::with_bounds(degree, lo, hi)
    }

    /// The interval the polynomial targets.
    pub fn bounds(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Polynomial degree.
    pub fn degree(&self) -> usize {
        self.degree
    }
}

impl<S: BackendScalar> Preconditioner<S> for ChebyshevPreconditioner {
    fn apply(&self, ctx: &mut GpuContext, a: Option<&GpuMatrix<S>>, x: &[S], y: &mut [S]) {
        let a = a.expect("chebyshev preconditioner needs the plain matrix");
        // Standard Chebyshev iteration applied to A y = x from y0 = 0;
        // after `degree` steps, y = p(A) x with the Chebyshev residual
        // polynomial on [lo, hi].
        let n = x.len();
        let theta = 0.5 * (self.hi + self.lo);
        let delta = 0.5 * (self.hi - self.lo);
        let mut r = x.to_vec(); // r0 = x - A*0 = x
        let mut d = vec![S::zero(); n];
        let mut t = vec![S::zero(); n];
        for yi in y.iter_mut() {
            *yi = S::zero();
        }

        let mut alpha = 1.0 / theta;
        // d0 = r0 / theta.
        for (di, &ri) in d.iter_mut().zip(&r) {
            *di = ri * S::from_f64(alpha);
        }
        let sigma = theta / delta.max(1e-300);
        let mut rho = 1.0 / sigma;
        for k in 0..self.degree {
            // y += d; r -= A d.
            ctx.axpy(S::one(), &d, y);
            if k + 1 == self.degree {
                break;
            }
            ctx.spmv(a, &d, &mut t);
            ctx.axpy(-S::one(), &t, &mut r);
            let rho_next = 1.0 / (2.0 * sigma - rho);
            let beta = rho * rho_next;
            alpha = 2.0 * rho_next / delta;
            // d = alpha * r + beta * d.
            for (di, &ri) in d.iter_mut().zip(&r) {
                *di = S::from_f64(alpha) * ri + S::from_f64(beta) * *di;
            }
            ctx.charge_host_flops(2 * n);
            rho = rho_next;
        }
    }

    fn describe(&self) -> String {
        format!("chebyshev({})", self.degree)
    }

    fn spmvs_per_apply(&self) -> usize {
        self.degree.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GmresConfig;
    use crate::gmres::Gmres;
    use crate::precond::Identity;
    use crate::status::SolveStatus;
    use mpgmres_gpusim::DeviceModel;
    use mpgmres_la::coo::Coo;
    use mpgmres_la::vec_ops::ReductionOrder;

    fn ctx() -> GpuContext {
        GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential)
    }

    fn laplace1d(n: usize) -> GpuMatrix<f64> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        GpuMatrix::new(coo.into_csr())
    }

    #[test]
    fn bounds_validation() {
        assert!(ChebyshevPreconditioner::with_bounds(5, 0.0, 1.0).is_err());
        assert!(ChebyshevPreconditioner::with_bounds(5, 2.0, 1.0).is_err());
        assert!(ChebyshevPreconditioner::with_bounds(5, 0.1, 4.0).is_ok());
    }

    #[test]
    fn power_iteration_finds_lambda_max() {
        // 1D Laplacian: lambda_max = 2 + 2 cos(pi/(n+1)) -> just under 4.
        let a = laplace1d(64);
        let mut c = ctx();
        let ch = ChebyshevPreconditioner::build(&mut c, &a, 8, None).unwrap();
        let (_, hi) = ch.bounds();
        assert!((3.5..=4.4).contains(&hi), "lambda_max estimate {hi}");
    }

    #[test]
    fn exact_interval_makes_strong_preconditioner() {
        // With true spectral bounds, Chebyshev(10) should cut GMRES
        // iterations by several-fold on the 1D Laplacian.
        let n = 128;
        let a = laplace1d(n);
        let b = vec![1.0f64; n];
        let lam_min = 2.0 - 2.0 * (std::f64::consts::PI / (n as f64 + 1.0)).cos();
        let ch = ChebyshevPreconditioner::with_bounds(10, lam_min, 4.0).unwrap();
        let cfg = GmresConfig::default().with_m(40).with_max_iters(10_000);
        let mut x = vec![0.0f64; n];
        let plain = Gmres::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x);
        let mut xc = vec![0.0f64; n];
        let prec = Gmres::new(&a, &ch, cfg).solve(&mut ctx(), &b, &mut xc);
        assert_eq!(prec.status, SolveStatus::Converged);
        assert!(
            prec.iterations * 3 <= plain.iterations,
            "chebyshev too weak: {} vs {}",
            prec.iterations,
            plain.iterations
        );
        // Both solutions solve the same system.
        let mut r = vec![0.0; n];
        a.csr().residual(&b, &xc, &mut r);
        assert!(mpgmres_la::vec_ops::norm2(&r) <= 1e-9 * (n as f64).sqrt());
    }

    #[test]
    fn spmv_count_matches_contract() {
        let a = laplace1d(32);
        let ch = ChebyshevPreconditioner::with_bounds(6, 0.01, 4.0).unwrap();
        let mut c = ctx();
        let x = vec![1.0f64; 32];
        let mut y = vec![0.0f64; 32];
        Preconditioner::apply(&ch, &mut c, Some(&a), &x, &mut y);
        let spmvs = c
            .profiler()
            .class_stats(mpgmres_gpusim::KernelClass::SpMV)
            .calls;
        assert_eq!(
            spmvs as usize,
            <ChebyshevPreconditioner as Preconditioner<f64>>::spmvs_per_apply(&ch)
        );
    }

    #[test]
    fn works_in_fp32_under_ir() {
        use crate::config::IrConfig;
        use crate::ir::GmresIr;
        let n = 96;
        let a = laplace1d(n);
        let b = vec![1.0f64; n];
        let lam_min = 2.0 - 2.0 * (std::f64::consts::PI / (n as f64 + 1.0)).cos();
        let ch = ChebyshevPreconditioner::with_bounds(8, lam_min, 4.0).unwrap();
        let mut x = vec![0.0f64; n];
        let res = GmresIr::<f32, f64>::new(&a, &ch, IrConfig::default().with_m(20)).solve(
            &mut ctx(),
            &b,
            &mut x,
        );
        assert_eq!(res.status, SolveStatus::Converged);
    }
}
