//! Preconditioners (paper §III-D).
//!
//! The paper deliberately avoids LU-type preconditioning (fill, memory,
//! and non-parallelizable triangular solves make it a poor fit for GPUs)
//! and studies GPU-friendly alternatives instead: the GMRES polynomial
//! ([`poly`]) and block Jacobi ([`block_jacobi`]). Right preconditioning
//! `A M^{-1} (M x) = b` is used everywhere so preconditioned residuals
//! match unpreconditioned ones in exact arithmetic.
//!
//! [`mixed`] provides §III-D case (a): an fp32 preconditioner applied
//! inside an fp64 solve, casting on every application.

pub mod block_jacobi;
pub mod chebyshev;
pub mod mixed;
pub mod poly;

use mpgmres_scalar::Scalar;

use crate::context::{GpuContext, GpuMatrix};

/// A right preconditioner `M^{-1}`.
///
/// `apply` computes `y = M^{-1} x`. The operator `A` is passed in so that
/// matrix-polynomial preconditioners can run their SpMVs through the
/// instrumented context without owning the matrix. It is `None` when the
/// solver holds the operator only as a packed [`crate::MatrixStore`]
/// (non-Native [`crate::StorePath`]s): preconditioners that report
/// `needs_matrix() == false` (block Jacobi, the identity, cast wrappers
/// that own their low-precision copy) must work in that case, applying in
/// working precision while the SpMVs stream narrow values.
pub trait Preconditioner<S: Scalar>: Send + Sync {
    /// `y = M^{-1} x`. Implementations with `needs_matrix() == true` may
    /// unwrap `a`; the solver boundary guarantees it is `Some` for them.
    fn apply(&self, ctx: &mut GpuContext, a: Option<&GpuMatrix<S>>, x: &[S], y: &mut [S]);

    /// Human-readable description for reports (e.g. `"poly(40)"`).
    fn describe(&self) -> String;

    /// `true` for the identity (lets the solver skip the apply and its
    /// buffer traffic entirely).
    fn is_identity(&self) -> bool {
        false
    }

    /// `true` when `apply` dereferences the `A` passed to it (polynomial
    /// preconditioners running their own SpMVs). Such preconditioners are
    /// rejected with [`crate::SolveError::UnsupportedCombination`] on
    /// non-Native storage paths, where no plain matrix exists.
    fn needs_matrix(&self) -> bool {
        true
    }

    /// SpMV applications of `A` per preconditioner application (drives
    /// the arithmetic-complexity discussion of §V-F).
    fn spmvs_per_apply(&self) -> usize {
        0
    }
}

/// No preconditioning.
#[derive(Clone, Copy, Debug, Default)]
pub struct Identity;

impl<S: Scalar> Preconditioner<S> for Identity {
    fn apply(&self, _ctx: &mut GpuContext, _a: Option<&GpuMatrix<S>>, x: &[S], y: &mut [S]) {
        y.copy_from_slice(x);
    }

    fn describe(&self) -> String {
        "none".to_string()
    }

    fn is_identity(&self) -> bool {
        true
    }

    fn needs_matrix(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpgmres_gpusim::DeviceModel;
    use mpgmres_la::csr::Csr;

    #[test]
    fn identity_copies_and_charges_nothing() {
        let a = GpuMatrix::new(Csr::<f64>::identity(4));
        let mut ctx = GpuContext::new(DeviceModel::v100_belos());
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 4];
        Preconditioner::apply(&Identity, &mut ctx, Some(&a), &x, &mut y);
        assert_eq!(x, y);
        assert_eq!(ctx.elapsed(), 0.0);
        assert!(Preconditioner::<f64>::is_identity(&Identity));
        assert!(!Preconditioner::<f64>::needs_matrix(&Identity));
        assert_eq!(Preconditioner::<f64>::spmvs_per_apply(&Identity), 0);
    }
}
