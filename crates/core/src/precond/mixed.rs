//! Mixed-precision preconditioner wrapper (paper §III-D, case a).
//!
//! "Each time an fp32 preconditioner M is applied to an fp64 vector x,
//! we must cast x to fp32, multiply it by M in fp32, and cast the result
//! back to fp64." This wrapper owns the low-precision matrix copy and the
//! inner preconditioner and performs exactly those casts through the
//! instrumented context (they are why the "Other" bar grows slightly in
//! Figure 7's middle configuration).

use core::marker::PhantomData;

use mpgmres_scalar::Scalar;
use parking_lot::Mutex;

use crate::context::{GpuContext, GpuMatrix};
use crate::precond::Preconditioner;

/// Applies a low-precision preconditioner inside a higher-precision solve.
pub struct CastPreconditioner<Hi: Scalar, Lo: Scalar, P: Preconditioner<Lo>> {
    a_lo: GpuMatrix<Lo>,
    inner: P,
    // Reusable low-precision buffers (interior mutability because
    // Preconditioner::apply takes &self).
    bufs: Mutex<(Vec<Lo>, Vec<Lo>)>,
    _hi: PhantomData<fn() -> Hi>,
}

impl<Hi: Scalar, Lo: Scalar, P: Preconditioner<Lo>> CastPreconditioner<Hi, Lo, P> {
    /// Wrap `inner` (built for the `Lo`-precision copy `a_lo`).
    pub fn new(a_lo: GpuMatrix<Lo>, inner: P) -> Self {
        let n = a_lo.n();
        CastPreconditioner {
            a_lo,
            inner,
            bufs: Mutex::new((vec![Lo::zero(); n], vec![Lo::zero(); n])),
            _hi: PhantomData,
        }
    }

    /// The inner preconditioner.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The low-precision matrix copy.
    pub fn matrix_lo(&self) -> &GpuMatrix<Lo> {
        &self.a_lo
    }
}

impl<Hi: Scalar, Lo: Scalar, P: Preconditioner<Lo>> Preconditioner<Hi>
    for CastPreconditioner<Hi, Lo, P>
{
    fn apply(&self, ctx: &mut GpuContext, _a: Option<&GpuMatrix<Hi>>, x: &[Hi], y: &mut [Hi]) {
        let mut bufs = self.bufs.lock();
        let (x_lo, y_lo) = &mut *bufs;
        ctx.cast_device(x, x_lo);
        self.inner.apply(ctx, Some(&self.a_lo), x_lo, y_lo);
        ctx.cast_device(y_lo, y);
    }

    fn describe(&self) -> String {
        format!("{}[{}]", self.inner.describe(), Lo::NAME)
    }

    fn needs_matrix(&self) -> bool {
        // The wrapper owns its low-precision matrix copy and never touches
        // the high-precision operand it is handed.
        false
    }

    fn spmvs_per_apply(&self) -> usize {
        self.inner.spmvs_per_apply()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::poly::PolyPreconditioner;
    use crate::precond::Identity;
    use mpgmres_gpusim::{DeviceModel, KernelClass};
    use mpgmres_la::coo::Coo;
    use mpgmres_la::vec_ops::ReductionOrder;

    fn ctx() -> GpuContext {
        GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential)
    }

    fn spd(n: usize) -> GpuMatrix<f64> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        GpuMatrix::new(coo.into_csr())
    }

    #[test]
    fn casts_happen_per_application() {
        let a = spd(16);
        let a32 = a.convert::<f32>();
        let wrap: CastPreconditioner<f64, f32, Identity> = CastPreconditioner::new(a32, Identity);
        let mut c = ctx();
        let x = vec![1.0f64; 16];
        let mut y = vec![0.0f64; 16];
        wrap.apply(&mut c, Some(&a), &x, &mut y);
        assert_eq!(y, x); // identity through fp32 of exact values
        let casts = c.profiler().class_stats(KernelClass::CastDevice).calls;
        assert_eq!(casts, 2, "down-cast and up-cast per application");
    }

    #[test]
    fn fp32_polynomial_under_fp64_solve_approximates_inverse() {
        let n = 32;
        let a = spd(n);
        let a32 = a.convert::<f32>();
        let mut c = ctx();
        let b32 = vec![1.0f32; n];
        let poly = PolyPreconditioner::build(&mut c, &a32, 10, &b32).unwrap();
        let wrap: CastPreconditioner<f64, f32, PolyPreconditioner> =
            CastPreconditioner::new(a32, poly);
        let x = vec![1.0f64; n];
        let mut y = vec![0.0f64; n];
        wrap.apply(&mut c, Some(&a), &x, &mut y);
        let mut ay = vec![0.0f64; n];
        a.csr().spmv(&y, &mut ay);
        // fp32 polynomial: expect rough inverse, fp32-level accuracy.
        let err: f64 = ay
            .iter()
            .zip(&x)
            .map(|(p, q)| (p - q).powi(2))
            .sum::<f64>()
            .sqrt();
        let scale = (n as f64).sqrt();
        assert!(err < 0.8 * scale, "too inaccurate: {err}");
        assert!(err > 0.0, "suspiciously exact for fp32");
    }

    #[test]
    fn describe_reports_precision() {
        let a = spd(8);
        let wrap: CastPreconditioner<f64, f32, Identity> =
            CastPreconditioner::new(a.convert::<f32>(), Identity);
        assert_eq!(Preconditioner::<f64>::describe(&wrap), "none[fp32]");
    }
}
