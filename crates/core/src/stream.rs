//! The command recorder: solver regions register buffers into an
//! arena, record kernel ops against stable handles, and `sync` submits
//! the dependency DAG — re-deriving it on a cache miss, replaying a
//! cached shape-identical graph otherwise.
//!
//! [`Stream`] is the recorded counterpart of [`GpuContext`]'s eager
//! kernel methods. A region opens a stream, **registers** each buffer
//! it will touch exactly once (obtaining a `Copy` handle), then records
//! kernel calls against the handles. Each record call validates shapes
//! and charges the profiler exactly like its eager twin (the two share
//! the same cost specs, so the per-class accounting of a recorded run
//! is bit-identical to an eager run of the same call sequence); the op
//! itself is a [`Span`]-shaped node in a payload-free graph plus a
//! plain-data payload binding. At [`Stream::sync`] (or drop) the
//! graph's wavefronts of mutually independent ready ops go to
//! [`Backend::execute_batch`](mpgmres_backend::Backend), which may run
//! them concurrently.
//!
//! # Safety story (why the record methods are safe functions)
//!
//! Every registration method ties the buffer's borrow to the stream's
//! lifetime: `slice_mut(&'c mut [S])` keeps the buffer exclusively
//! borrowed until the stream syncs, so the host *cannot* touch it
//! mid-region, and the arena pointer derived once at registration stays
//! valid under Stacked Borrows (nothing ever reborrows the owner while
//! the stream lives). Ops hold handles, not pointers — the
//! Miri-flagged pattern of PR 3 (per-op raw views derived from `&mut`
//! borrows that the next record call's reborrow invalidated) is gone,
//! and with it the `unsafe fn` record surface and the per-region
//! `// SAFETY` comments in the solvers. The borrow checker now proves
//! the old stream contract: buffers outlive sync, and the host neither
//! reads nor writes them in between.
//!
//! # Graph replay (record once, rebind every iteration)
//!
//! A GMRES iteration records the same shape-stable op sequence every
//! cycle — the situation CUDA Graphs exploits. [`GpuContext::stream_for`]
//! takes a [`RegionKey`] (region id + problem/shape dimensions); the
//! first recording under a key derives the DAG (O(R²) span scans) and
//! caches the finalized payload-free graph, and every later recording
//! under the same key *replays* it: each record call is verified
//! against the cached node's shape (an O(spans) equality check) and
//! only the payload binding — kernel fn pointer + handle/offset args —
//! is refilled into a reused buffer. A replayed region allocates no
//! graph nodes and no boxed payloads. If the recorded sequence ever
//! deviates from the cached shape, the stream transparently falls back
//! to a fresh derivation and replaces the cache entry, so a key
//! collision costs time, never correctness. [`GpuContext::stream_stats`]
//! exposes hit/miss/node counters.
//!
//! Two things distinguish a recorded region from eager execution, and
//! bit-identical results are *not* one of them (see the determinism
//! notes in [`mpgmres_backend::stream`]):
//!
//! - independent ops may execute concurrently on a parallel backend;
//! - the profiler charges each op on the overlap-aware timeline at the
//!   finish time of its dependencies, so the report's critical path can
//!   drop below the serial sum. For a chain-shaped region the two
//!   timelines agree bit-for-bit.
//!
//! With [`GpuContext::set_streaming`] turned off, every record call
//! executes eagerly in place (record + immediate sync), which is the
//! reference behavior the parity suite compares against. Reading a
//! result slot (e.g. a [`Stream::norm2_into`] target) is only possible
//! after `sync` releases the registration borrows, at which point the
//! value is defined — the type system enforces the old "don't read
//! before sync" rule too.

use std::marker::PhantomData;
use std::sync::Arc;

use mpgmres_backend::stream::{BoundOp, ExecFn, OpArgs, OpGraph, OpKind, Span};
use mpgmres_backend::{Backend, BackendScalar};
use mpgmres_gpusim::KernelClass;
use mpgmres_la::basis::BasisStore;
use mpgmres_la::multivec::MultiVec;
use mpgmres_la::raw::BufferArena;
use mpgmres_la::shard::{self, ShardPlan};
use mpgmres_scalar::Scalar;

use crate::context::{GpuContext, GpuMatrix, GpuStore, ShardedMatOp};

/// Well-known region ids for [`RegionKey`]. Solvers pick one id per
/// textual recording region; the rest of the key carries the shape.
pub mod region {
    /// `Gmres` CGS1/CGS2 SpMV + orthogonalization region.
    pub const GMRES_CGS: u32 = 1;
    /// `BlockGmres` initial residuals + fused norm region.
    pub const BLOCK_INIT: u32 = 2;
    /// `BlockGmres` SpMM + blocked CGS2 region.
    pub const BLOCK_CGS: u32 = 3;
    /// `BlockGmres` SpMM + blocked CGS1 region (one projection pass, so
    /// a different shape than [`BLOCK_CGS`]).
    pub const BLOCK_CGS1: u32 = 4;
    /// `BlockGmres` cycle-barrier region (identity preconditioner: the
    /// fused per-lane update + explicit-residual chains). Keys pack the
    /// update-lane mask into `ncols` and the cycle-lane mask into
    /// `lanes`; the per-lane update widths live only in the payload —
    /// the width-padded coefficient spans keep the shape stable.
    pub const BLOCK_BARRIER: u32 = 5;
    /// Preconditioned cycle barrier, update half (per-lane GEMV-N).
    pub const BLOCK_BARRIER_UPD: u32 = 6;
    /// Preconditioned cycle barrier, residual half (residual + norm).
    pub const BLOCK_BARRIER_RES: u32 = 7;
    /// Pipelined `BlockGmres` iteration region: deferred host steps of
    /// the previous iteration + basis extension + SpMM + blocked CGS2.
    pub const BLOCK_PIPE_CGS: u32 = 8;
    /// Pipelined iteration region, CGS1 variant.
    pub const BLOCK_PIPE_CGS1: u32 = 9;
    /// Pipelined cycle barrier (drained host steps + per-lane
    /// least-squares host nodes + update/residual chains). Keys pack
    /// the update-lane mask into `ncols`, the drained iteration count
    /// into `k`, and the cycle-lane mask into `lanes`.
    pub const BLOCK_PIPE_BARRIER: u32 = 10;
    /// Pipelined preconditioned pre-region (drained host steps + basis
    /// extension, recorded before the eager preconditioner applies).
    pub const BLOCK_PIPE_DRAIN: u32 = 11;
    /// `GmresIr` outer refinement region (fp64 residual + norm).
    pub const IR_OUTER: u32 = 12;
    /// `GmresIr3` outer refinement region (fp64 residual + norm).
    pub const IR3_OUTER: u32 = 13;
    /// Serving-engine lane admission (per-admitted-slot residual +
    /// reference norm at a cycle barrier). Keys pack the admitted-slot
    /// set into `lanes` and a tenant/admission discriminator hash into
    /// the spare `k` bits — the same convention the pipelined regions
    /// use for deflation-transition masks — so each admission shape
    /// replays its own cached graph.
    pub const BLOCK_ADMIT: u32 = 14;
}

/// Cache key of one shape-stable recording region: a region id plus
/// every dimension that determines the recorded op sequence's shape
/// (problem size, basis width, block width, active lane set). Two
/// recordings with equal keys are expected — and verified op-by-op — to
/// have identical graphs up to the bound buffer values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RegionKey {
    /// Region id (see [`region`]).
    pub region: u32,
    /// Problem dimension (rows).
    pub n: usize,
    /// Basis column count (`ncols`), 0 when irrelevant.
    pub ncols: usize,
    /// Block width (`k`), 0 when irrelevant.
    pub k: usize,
    /// Active-lane bitmask, 0 when irrelevant.
    pub lanes: u64,
    /// Matrix-storage precision tag ([`PrecisionTag::code`]), 0 for
    /// untagged regions. A solver that switches its operator between
    /// storage precisions mid-run records distinct graphs per tag —
    /// the cached replay of an fp64 recording is never reused for the
    /// fp32-shadow shape of the same region.
    ///
    /// [`PrecisionTag::code`]: mpgmres_scalar::PrecisionTag::code
    pub tag: u8,
    /// Backend shard count (0 or 1 for unsharded backends; saturates at
    /// 255). Sharded backends expand matrix ops into per-shard halo /
    /// interior / boundary chains, so the same region shape records a
    /// structurally different graph per shard count —
    /// [`GpuContext::stream_for`](crate::GpuContext::stream_for) salts
    /// every key with the active backend's count automatically.
    pub shards: u8,
}

impl RegionKey {
    /// Key for `region` at problem size `n`.
    pub fn new(region: u32, n: usize) -> Self {
        RegionKey {
            region,
            n,
            ncols: 0,
            k: 0,
            lanes: 0,
            tag: 0,
            shards: 0,
        }
    }

    /// Set the basis column count.
    pub fn with_ncols(mut self, ncols: usize) -> Self {
        self.ncols = ncols;
        self
    }

    /// Set the block width.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Set the active-lane bitmask.
    pub fn with_lanes(mut self, lanes: u64) -> Self {
        self.lanes = lanes;
        self
    }

    /// Set the storage-precision tag (see [`RegionKey::tag`]).
    pub fn with_tag(mut self, tag: u8) -> Self {
        self.tag = tag;
        self
    }

    /// Set the backend shard count (see [`RegionKey::shards`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = u8::try_from(shards).unwrap_or(u8::MAX);
        self
    }

    /// Bitmask of a lane-index set, or `None` when a lane id does not
    /// fit the 64-bit mask (callers then fall back to an uncached
    /// stream).
    pub fn lane_mask(lanes: &[usize]) -> Option<u64> {
        let mut mask = 0u64;
        for &l in lanes {
            if l >= 64 {
                return None;
            }
            mask |= 1u64 << l;
        }
        Some(mask)
    }
}

/// Hit/miss/allocation counters of the recorded-graph cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Keyed regions replayed from a cached graph (no node allocation,
    /// no span scans).
    pub hits: u64,
    /// Keyed regions that derived (or re-derived) their graph.
    pub misses: u64,
    /// Total graph nodes ever allocated by this context's streams
    /// (cached and uncached); flat across replayed iterations.
    pub nodes_allocated: u64,
}

// ----- typed buffer handles -------------------------------------------

/// Handle of a registered [`GpuMatrix`].
#[derive(Clone, Copy, Debug)]
pub struct MatRef<S> {
    id: u32,
    _s: PhantomData<fn() -> S>,
}

/// Handle of a registered [`GpuStore`] (a matrix in a possibly
/// low-precision storage path).
#[derive(Clone, Copy, Debug)]
pub struct StoreRef<S> {
    id: u32,
    _s: PhantomData<fn() -> S>,
}

/// Handle of a registered Krylov basis ([`BasisStore`]): native
/// working-precision columns or a compressed (fp32/fp16) column array.
/// The handle carries the store's element width so recorded reads
/// declare the exact narrow byte span a kernel streams, and charges are
/// priced with the store's own traffic.
#[derive(Clone, Copy, Debug)]
pub struct BasisRef<S> {
    id: u32,
    n: u32,
    ncap: u32,
    ebytes: u32,
    _s: PhantomData<fn() -> S>,
}

impl<S: Scalar> BasisRef<S> {
    fn is_native(self) -> bool {
        self.ebytes as usize == std::mem::size_of::<S>()
    }

    /// Read span of the first `ncols` stored columns: native bases keep
    /// the whole-object span the pre-`BasisStore` recorder declared (so
    /// cached graphs are node-for-node identical); compressed bases
    /// declare the exact narrow element prefix one GEMV pass streams.
    fn read_span(self, ncols: u32) -> Span {
        if self.is_native() {
            Span::whole(self.id)
        } else {
            Span::elems(self.id, 0, ncols * self.n, self.ebytes as usize)
        }
    }

    /// Read view of basis column `j` (native-only: column views are
    /// working-precision slices, which a compressed store does not
    /// expose — the native-only pipelined drivers are the only users).
    pub fn col(self, j: usize) -> ArgSlice<S> {
        assert!(self.is_native(), "basis column views are native-only");
        let j = u32::try_from(j).expect("basis column");
        assert!(j < self.ncap, "basis column out of range");
        ArgSlice {
            buf: self.id,
            off: j * self.n,
            len: self.n,
            _s: PhantomData,
        }
    }
}

/// Handle of a *mutably* registered Krylov basis: the pipelined
/// `BlockGmres` regions read the basis whole (batched CGS kernels)
/// while the recorded basis extension writes one column — the mixed
/// access pattern that needs a single exclusive registration with
/// column-granular spans.
#[derive(Clone, Copy, Debug)]
pub struct BasisMut<S> {
    id: u32,
    n: u32,
    ncap: u32,
    _s: PhantomData<fn() -> S>,
}

impl<S: Scalar> BasisMut<S> {
    /// Read view of the whole basis (batched CGS kernels). Mutable
    /// registrations are native-only (see [`Stream::basis_mut`]), so
    /// the element width is the working precision's.
    pub fn read(self) -> BasisRef<S> {
        BasisRef {
            id: self.id,
            n: self.n,
            ncap: self.ncap,
            ebytes: std::mem::size_of::<S>() as u32,
            _s: PhantomData,
        }
    }

    /// Read view of basis column `j`.
    pub fn col(self, j: usize) -> ArgSlice<S> {
        self.read().col(j)
    }

    /// Write view of basis column `j` (the recorded basis extension).
    pub fn col_mut(self, j: usize) -> ArgSliceMut<S> {
        let c = self.col(j);
        ArgSliceMut {
            buf: c.buf,
            off: c.off,
            len: c.len,
            _s: PhantomData,
        }
    }
}

/// Handle list of a per-lane basis set (the batched kernels' `vs`),
/// uniform in shape and storage width across the lanes.
#[derive(Clone, Copy, Debug)]
pub struct BasisList<S> {
    start: u32,
    len: u32,
    n: u32,
    ncap: u32,
    ebytes: u32,
    _s: PhantomData<fn() -> S>,
}

impl<S> BasisList<S> {
    /// Number of bases in the list.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Read view of (part of) a registered slice or block column.
#[derive(Clone, Copy, Debug)]
pub struct ArgSlice<S> {
    buf: u32,
    off: u32,
    len: u32,
    _s: PhantomData<fn() -> S>,
}

/// Write view of (part of) a mutably registered slice or block column.
#[derive(Clone, Copy, Debug)]
pub struct ArgSliceMut<S> {
    buf: u32,
    off: u32,
    len: u32,
    _s: PhantomData<fn() -> S>,
}

/// Write view of a single scalar result slot.
#[derive(Clone, Copy, Debug)]
pub struct ArgValMut<S> {
    buf: u32,
    off: u32,
    _s: PhantomData<fn() -> S>,
}

impl<S: Scalar> ArgSlice<S> {
    /// Read view of `len` elements starting at element `off` within
    /// this view (the pipelined driver's lagged per-lane sub-spans).
    pub fn sub(self, off: usize, len: usize) -> ArgSlice<S> {
        let off = u32::try_from(off).expect("arg offset");
        let len = u32::try_from(len).expect("arg length");
        assert!(off + len <= self.len, "arg sub-view out of range");
        ArgSlice {
            buf: self.buf,
            off: self.off + off,
            len,
            _s: PhantomData,
        }
    }

    fn span(&self) -> Span {
        Span::elems(self.buf, self.off, self.len, std::mem::size_of::<S>())
    }
}

impl<S: Scalar> ArgSliceMut<S> {
    /// Read view of the same elements.
    pub fn read(self) -> ArgSlice<S> {
        ArgSlice {
            buf: self.buf,
            off: self.off,
            len: self.len,
            _s: PhantomData,
        }
    }

    /// Write view of the single element at `i` (per-lane result slots).
    pub fn at(self, i: usize) -> ArgValMut<S> {
        let i = u32::try_from(i).expect("arg index");
        assert!(i < self.len, "arg slot out of range");
        ArgValMut {
            buf: self.buf,
            off: self.off + i,
            _s: PhantomData,
        }
    }

    fn span(&self) -> Span {
        Span::elems(self.buf, self.off, self.len, std::mem::size_of::<S>())
    }

    fn prefix_span(&self, len: u32) -> Span {
        debug_assert!(len <= self.len);
        Span::elems(self.buf, self.off, len, std::mem::size_of::<S>())
    }
}

impl<S: Scalar> ArgValMut<S> {
    fn span(&self) -> Span {
        Span::elems(self.buf, self.off, 1, std::mem::size_of::<S>())
    }
}

/// Handle of a read-registered right-hand-side block ([`MultiVec`]):
/// addressable as a whole (batched kernels) or per column.
#[derive(Clone, Copy, Debug)]
pub struct BlockRef<S> {
    id: u32,
    n: u32,
    k: u32,
    _s: PhantomData<fn() -> S>,
}

/// Handle of a mutably registered block.
#[derive(Clone, Copy, Debug)]
pub struct BlockMut<S> {
    id: u32,
    n: u32,
    k: u32,
    _s: PhantomData<fn() -> S>,
}

impl<S: Scalar> BlockRef<S> {
    /// Read view of column `j`.
    pub fn col(self, j: usize) -> ArgSlice<S> {
        let j = u32::try_from(j).expect("block column");
        assert!(j < self.k, "block column out of range");
        ArgSlice {
            buf: self.id,
            off: j * self.n,
            len: self.n,
            _s: PhantomData,
        }
    }
}

impl<S: Scalar> BlockMut<S> {
    /// Read view of the whole block (batched kernels).
    pub fn read(self) -> BlockRef<S> {
        BlockRef {
            id: self.id,
            n: self.n,
            k: self.k,
            _s: PhantomData,
        }
    }

    /// Read view of column `j`.
    pub fn col(self, j: usize) -> ArgSlice<S> {
        self.read().col(j)
    }

    /// Write view of column `j`.
    pub fn col_mut(self, j: usize) -> ArgSliceMut<S> {
        let c = self.col(j);
        ArgSliceMut {
            buf: c.buf,
            off: c.off,
            len: c.len,
            _s: PhantomData,
        }
    }
}

// ----- the recorder ----------------------------------------------------

enum Mode {
    /// Streaming disabled: every record call executes eagerly in place.
    Eager,
    /// First recording under this shape (or uncached region): derive
    /// the graph op by op.
    Build(OpGraph),
    /// Cached graph: verify shapes, bind payloads, allocate nothing.
    Replay { graph: Arc<OpGraph>, pos: usize },
}

/// A recording session on a [`GpuContext`]. See the module docs; obtain
/// one with [`GpuContext::stream`] (ad-hoc region) or
/// [`GpuContext::stream_for`] (cached/replayed region).
pub struct Stream<'c> {
    ctx: &'c mut GpuContext,
    mode: Mode,
    key: Option<RegionKey>,
    base: f64,
}

impl<'c> Stream<'c> {
    pub(crate) fn begin(ctx: &'c mut GpuContext, key: Option<RegionKey>) -> Self {
        let base = ctx.profiler().critical_seconds();
        ctx.scratch_reset();
        let mode = if !ctx.streaming() {
            Mode::Eager
        } else if let Some(graph) = key.as_ref().and_then(|k| ctx.cached_graph(k)) {
            Mode::Replay { graph, pos: 0 }
        } else {
            Mode::Build(OpGraph::new())
        };
        Stream {
            ctx,
            mode,
            key,
            base,
        }
    }

    /// Ops recorded so far (0 in eager mode — everything already ran).
    pub fn recorded(&self) -> usize {
        self.ctx.scratch().bindings.len()
    }

    fn eager(&self) -> bool {
        matches!(self.mode, Mode::Eager)
    }

    fn arena(&self) -> &BufferArena {
        &self.ctx.scratch().arena
    }

    // ----- buffer registration ---------------------------------------
    //
    // Each method derives the buffer's arena pointer exactly once from
    // a borrow held for the stream's whole lifetime — the Miri-clean
    // discipline the arena documents. The borrow checker guarantees
    // mutable registrations are disjoint from every other registration.

    /// Register the system matrix (read-only).
    pub fn matrix<S: Scalar>(&mut self, a: &'c GpuMatrix<S>) -> MatRef<S> {
        // SAFETY: `a` stays borrowed until the stream's sync/drop.
        let id = unsafe { self.ctx.arena_mut().register_obj(a as *const GpuMatrix<S>) };
        MatRef {
            id,
            _s: PhantomData,
        }
    }

    /// Register a storage-path system matrix (read-only).
    pub fn store<S: Scalar>(&mut self, a: &'c GpuStore<S>) -> StoreRef<S> {
        // SAFETY: `a` stays borrowed until the stream's sync/drop.
        let id = unsafe { self.ctx.arena_mut().register_obj(a as *const GpuStore<S>) };
        StoreRef {
            id,
            _s: PhantomData,
        }
    }

    /// Register a Krylov basis store (read-only). Native stores are
    /// registered whole-object (recorded reads keep the pre-refactor
    /// whole-buffer spans); compressed stores also register their
    /// narrow element array so reads can declare the exact byte span a
    /// kernel streams.
    pub fn basis<S: Scalar>(&mut self, v: &'c BasisStore<S>) -> BasisRef<S> {
        let (n, ncap) = (v.n(), v.max_cols());
        // SAFETY: `v` stays borrowed until the stream's sync/drop; the
        // compressed data pointer is derived from the same shared
        // borrow, keeping one provenance chain.
        let id = unsafe {
            let obj = v as *const BasisStore<S>;
            match v {
                BasisStore::Native(_) => self.ctx.arena_mut().register_obj(obj),
                BasisStore::F32(cb) => {
                    let d = cb.data();
                    self.ctx
                        .arena_mut()
                        .register_obj_with_data(obj, d.as_ptr(), d.len())
                }
                BasisStore::F16(cb) => {
                    let d = cb.data();
                    self.ctx
                        .arena_mut()
                        .register_obj_with_data(obj, d.as_ptr(), d.len())
                }
            }
        };
        BasisRef {
            id,
            n: u32::try_from(n).expect("basis rows"),
            ncap: u32::try_from(ncap).expect("basis cols"),
            ebytes: u32::try_from(v.elem_bytes()).expect("basis elem bytes"),
            _s: PhantomData,
        }
    }

    /// Register an exclusively borrowed Krylov basis. Within one region
    /// the recorder addresses it column-wise for writes (the recorded
    /// basis extension) and whole-value for the batched CGS reads — the
    /// RAW span overlap is exactly the edge that orders the extension
    /// before the projections. Native-only: recorded basis *writes*
    /// exist only in the pipelined drivers, which reject compressed
    /// storage up front (column write views are working-precision).
    pub fn basis_mut<S: Scalar>(&mut self, v: &'c mut BasisStore<S>) -> BasisMut<S> {
        let (n, ncap) = (v.n(), v.max_cols());
        let (obj, data, len) = v.arena_parts();
        assert!(
            !data.is_null(),
            "stream basis_mut: recorded basis writes are native-only"
        );
        // SAFETY: `v` stays exclusively borrowed until sync/drop; the
        // data pointer is derived through the object pointer (see
        // `BasisStore::arena_parts`), keeping one provenance chain.
        let id = unsafe { self.ctx.arena_mut().register_obj_mut(obj, data, len) };
        BasisMut {
            id,
            n: u32::try_from(n).expect("basis rows"),
            ncap: u32::try_from(ncap).expect("basis cols"),
            _s: PhantomData,
        }
    }

    /// Register a per-lane basis set mutably (all the same shape),
    /// returning one [`BasisMut`] per lane in order.
    pub fn bases_mut<S: Scalar>(&mut self, vs: Vec<&'c mut BasisStore<S>>) -> Vec<BasisMut<S>> {
        assert!(!vs.is_empty(), "stream bases_mut: empty lane set");
        let (n, ncap) = (vs[0].n(), vs[0].max_cols());
        vs.into_iter()
            .map(|v| {
                assert_eq!(v.n(), n, "stream bases_mut: ragged lane set");
                assert_eq!(v.max_cols(), ncap, "stream bases_mut: ragged lane set");
                self.basis_mut(v)
            })
            .collect()
    }

    /// Build a [`BasisList`] (the batched kernels' per-column basis
    /// argument) from already-registered basis handles — the pipelined
    /// regions register their lane bases mutably once, then hand a
    /// subset to the CGS kernels by reference.
    pub fn basis_list<S: Scalar>(&mut self, refs: &[BasisRef<S>]) -> BasisList<S> {
        assert!(!refs.is_empty(), "stream basis_list: empty lane set");
        let (n, ncap, ebytes) = (refs[0].n, refs[0].ncap, refs[0].ebytes);
        for r in refs {
            assert_eq!(r.n, n, "stream basis_list: ragged lane set");
            assert_eq!(r.ncap, ncap, "stream basis_list: ragged lane set");
            assert_eq!(r.ebytes, ebytes, "stream basis_list: mixed storage widths");
        }
        let (start, len) = self.ctx.arena_mut().push_list(refs.iter().map(|r| r.id));
        BasisList {
            start,
            len,
            n,
            ncap,
            ebytes,
            _s: PhantomData,
        }
    }

    /// Register a per-lane basis set (read-only, all the same shape and
    /// storage width).
    pub fn bases<S: Scalar>(&mut self, vs: &[&'c BasisStore<S>]) -> BasisList<S> {
        assert!(!vs.is_empty(), "stream bases: empty lane set");
        let refs: Vec<BasisRef<S>> = vs.iter().map(|v| self.basis(v)).collect();
        self.basis_list(&refs)
    }

    /// Register a read-only vector.
    pub fn slice<S: Scalar>(&mut self, x: &'c [S]) -> ArgSlice<S> {
        // SAFETY: `x` stays borrowed until the stream's sync/drop.
        let buf = unsafe { self.ctx.arena_mut().register_slice(x.as_ptr(), x.len()) };
        ArgSlice {
            buf,
            off: 0,
            len: u32::try_from(x.len()).expect("slice length"),
            _s: PhantomData,
        }
    }

    /// Register an exclusively borrowed vector.
    pub fn slice_mut<S: Scalar>(&mut self, x: &'c mut [S]) -> ArgSliceMut<S> {
        let (ptr, len) = (x.as_mut_ptr(), x.len());
        // SAFETY: `x` stays exclusively borrowed until sync/drop, and
        // the pointer is derived exactly once here.
        let buf = unsafe { self.ctx.arena_mut().register_slice_mut(ptr, len) };
        ArgSliceMut {
            buf,
            off: 0,
            len: u32::try_from(len).expect("slice length"),
            _s: PhantomData,
        }
    }

    /// Register an exclusively borrowed scalar result slot.
    pub fn val_mut<S: Scalar>(&mut self, x: &'c mut S) -> ArgValMut<S> {
        let ptr: *mut S = x;
        // SAFETY: as [`Stream::slice_mut`], for one element.
        let buf = unsafe { self.ctx.arena_mut().register_slice_mut(ptr, 1) };
        ArgValMut {
            buf,
            off: 0,
            _s: PhantomData,
        }
    }

    /// Register a read-only right-hand-side block.
    pub fn block<S: Scalar>(&mut self, x: &'c MultiVec<S>) -> BlockRef<S> {
        let (n, k) = (x.n(), x.k());
        let data = x.data();
        // SAFETY: `x` stays borrowed until sync/drop; both pointers are
        // derived from the same shared borrow.
        let id = unsafe {
            self.ctx.arena_mut().register_obj_with_data(
                x as *const MultiVec<S>,
                data.as_ptr(),
                data.len(),
            )
        };
        BlockRef {
            id,
            n: u32::try_from(n).expect("block rows"),
            k: u32::try_from(k).expect("block cols"),
            _s: PhantomData,
        }
    }

    /// Register an exclusively borrowed block. Within one region the
    /// recorder addresses it either as a whole value (chained batched
    /// kernels) or column-wise (independent per-lane ops) — the
    /// discipline the arena contract requires.
    pub fn block_mut<S: Scalar>(&mut self, x: &'c mut MultiVec<S>) -> BlockMut<S> {
        let (n, k) = (x.n(), x.k());
        let (obj, data, len) = x.arena_parts();
        // SAFETY: `x` stays exclusively borrowed until sync/drop; the
        // data pointer is derived through the object pointer (see
        // `MultiVec::arena_parts`), keeping one provenance chain.
        let id = unsafe { self.ctx.arena_mut().register_obj_mut(obj, data, len) };
        BlockMut {
            id,
            n: u32::try_from(n).expect("block rows"),
            k: u32::try_from(k).expect("block cols"),
            _s: PhantomData,
        }
    }

    // ----- recording core --------------------------------------------

    /// One kernel call must not read and write overlapping memory (its
    /// launch would materialize aliasing `&`/`&mut` views). The borrow
    /// checker proved this for the old reference-taking API; with
    /// `Copy` handles it is checked here, in both eager and recorded
    /// mode, before anything executes.
    fn assert_noalias(label: &str, reads: &[Span], writes: &[Span]) {
        for w in writes {
            assert!(
                !reads.iter().any(|r| r.overlaps(w)),
                "stream {label}: an operand is both read and written"
            );
            assert!(
                writes.iter().filter(|x| x.overlaps(w)).count() == 1,
                "stream {label}: overlapping write operands"
            );
        }
    }

    /// Append one op: derive (build) or verify (replay) its graph node,
    /// charge the profiler at the op's DAG-ready time, and bind its
    /// payload.
    fn record(
        &mut self,
        label: &'static str,
        reads: &[Span],
        writes: &[Span],
        charge: Option<(KernelClass, f64, usize)>,
        exec: ExecFn,
        args: OpArgs,
    ) {
        self.record_kind(label, OpKind::Device, reads, writes, charge, exec, args);
    }

    /// As [`Stream::record`], for an explicit [`OpKind`] (deferred host
    /// steps record as [`OpKind::Host`] nodes).
    #[allow(clippy::too_many_arguments)]
    fn record_kind(
        &mut self,
        label: &'static str,
        kind: OpKind,
        reads: &[Span],
        writes: &[Span],
        charge: Option<(KernelClass, f64, usize)>,
        exec: ExecFn,
        args: OpArgs,
    ) {
        let idx = self.advance(label, kind, reads, writes);
        let mut ready = self.base;
        {
            let preds = match &self.mode {
                Mode::Build(graph) => graph.preds(idx),
                Mode::Replay { graph, .. } => graph.preds(idx),
                Mode::Eager => unreachable!("record in eager mode"),
            };
            let finish = &self.ctx.scratch().finish;
            for &p in preds {
                if finish[p] > ready {
                    ready = finish[p];
                }
            }
        }
        let fin = match charge {
            Some((class, t, bytes)) => self.ctx.profiler_mut().charge_ready(class, t, bytes, ready),
            None => ready,
        };
        let scratch = self.ctx.scratch_mut();
        scratch.finish.push(fin);
        scratch.bindings.push(BoundOp { exec, args });
    }

    /// Build/replay step for one op shape; falls back from replay to a
    /// fresh build when the recorded sequence deviates from the cached
    /// graph (a key collision or a solver-shape bug — costs a
    /// re-derivation, never correctness).
    fn advance(
        &mut self,
        label: &'static str,
        kind: OpKind,
        reads: &[Span],
        writes: &[Span],
    ) -> usize {
        if let Mode::Replay { graph, pos } = &mut self.mode {
            // A sequence that runs past the cached graph's end is a
            // shape deviation too (key collision with an extension of
            // the cached sequence) — fall back instead of indexing
            // out of bounds.
            if *pos < graph.len() && graph.matches(*pos, label, kind, reads, writes) {
                let idx = *pos;
                *pos += 1;
                return idx;
            }
            let verified = *pos;
            self.fallback_to_build(verified);
        }
        match &mut self.mode {
            Mode::Build(graph) => {
                self.ctx.bump_nodes_allocated(1);
                graph.push_kind(label, kind, reads, writes)
            }
            _ => unreachable!("advance in eager mode"),
        }
    }

    /// Replace replay mode with a build whose prefix re-derives the
    /// already-verified cached nodes.
    fn fallback_to_build(&mut self, verified: usize) {
        let old = match std::mem::replace(&mut self.mode, Mode::Build(OpGraph::new())) {
            Mode::Replay { graph, .. } => graph,
            _ => unreachable!(),
        };
        if let Mode::Build(g) = &mut self.mode {
            for i in 0..verified {
                let nd = old.node(i);
                g.push_kind(nd.label, nd.kind, &nd.reads, &nd.writes);
            }
            self.ctx.bump_nodes_allocated(verified as u64);
        }
    }

    fn finish(&mut self) {
        match std::mem::replace(&mut self.mode, Mode::Eager) {
            Mode::Eager => {}
            Mode::Build(mut graph) => {
                // Empty region: no graph setup, no submission, no cache
                // traffic, no profiler charge — sync is free.
                if graph.is_empty() {
                    return;
                }
                graph.finalize();
                let graph = Arc::new(graph);
                self.ctx.submit_recorded(&graph);
                if let Some(key) = self.key {
                    self.ctx.store_graph(key, graph);
                    self.ctx.bump_misses();
                }
            }
            Mode::Replay { graph, pos } => {
                if pos == graph.len() {
                    self.ctx.submit_recorded(&graph);
                    self.ctx.bump_hits();
                } else {
                    // The region recorded a strict prefix of the cached
                    // shape: re-derive that prefix and replace the entry.
                    self.fallback_to_build(pos);
                    self.finish();
                }
            }
        }
    }

    /// Submit everything recorded and wait for completion. Dropping the
    /// stream does the same; `sync` just makes the barrier explicit at
    /// the point where the registration borrows end and the host may
    /// read results.
    pub fn sync(self) {}

    // ----- recordable kernels ----------------------------------------

    /// Record `y = A x` (charged as a solver SpMV).
    pub fn spmv<S: BackendScalar>(&mut self, a: MatRef<S>, x: ArgSlice<S>, y: ArgSliceMut<S>) {
        // SAFETY: registered borrows are live for the stream's lifetime.
        let am: &GpuMatrix<S> = unsafe { self.arena().obj(a.id) };
        assert_eq!(x.len as usize, am.n(), "stream spmv: x length");
        assert_eq!(y.len as usize, am.n(), "stream spmv: y length");
        Self::assert_noalias("spmv", &[x.span()], &[y.span()]);
        if self.eager() {
            // SAFETY: as above; no other view of y exists during the call.
            let (xs, ys) = unsafe {
                (
                    self.arena().slice::<S>(x.buf, x.off, x.len),
                    self.arena().slice_mut::<S>(y.buf, y.off, y.len),
                )
            };
            self.ctx.spmv(am, xs, ys);
            return;
        }
        if let Some(plan) = self.ctx.shard_plan_for(am) {
            self.record_sharded_matvec::<S>(
                KernelClass::SpMV,
                ShardedMatOp::Spmv,
                &plan,
                am,
                a.id,
                None,
                (x.buf, x.off, 0),
                (y.buf, y.off, 0),
                1,
            );
            return;
        }
        let (t, bytes) = self.ctx.spmv_spec::<S>(am);
        self.record(
            "spmv",
            &[x.span()],
            &[y.span()],
            Some((KernelClass::SpMV, t, bytes)),
            exec_spmv::<S>,
            OpArgs {
                bufs: [a.id, x.buf, y.buf, 0],
                offs: [0, x.off, y.off, 0],
                lens: [0, x.len, y.len, 0],
                ..OpArgs::default()
            },
        );
    }

    /// Expand one matrix op over a sharded backend into per-shard op
    /// chains: an optional halo exchange (the remote x-entries the
    /// shard's boundary rows read, copied into pooled scratch and
    /// charged as [`KernelClass::Halo`] interconnect traffic), an
    /// interior kernel over rows reading only owned columns (no edge to
    /// the exchange — it overlaps the comm on the timeline), and a
    /// boundary kernel gated on the halo buffer by a real RAW span
    /// dependency. The piece sequence and its skip rules mirror the
    /// eager `GpuContext::charge_sharded` walk exactly, so eager and
    /// recorded charge sequences stay bit-identical; execution order
    /// within and across shards is free to overlap because every node
    /// declares exact element spans.
    ///
    /// `x`/`y` are `(buffer, base element offset, column stride)` —
    /// stride 0 for single vectors, the block's row count for
    /// multi-RHS ops addressed column-wise. `b` is the residual
    /// right-hand side (single-vector ops only).
    #[allow(clippy::too_many_arguments)]
    fn record_sharded_matvec<S: BackendScalar>(
        &mut self,
        class: KernelClass,
        op: ShardedMatOp,
        plan: &Arc<ShardPlan>,
        am: &GpuMatrix<S>,
        a_id: u32,
        b: Option<(u32, u32)>,
        x: (u32, u32, u32),
        y: (u32, u32, u32),
        k: usize,
    ) {
        // SAFETY: the plan Arc is held alive by the context's plan
        // cache (entries are never evicted), outliving the region.
        let plan_id = unsafe { self.ctx.arena_mut().register_obj(Arc::as_ptr(plan)) };
        let row_ptr = am.csr().row_ptr();
        let kk = u32::try_from(k).expect("sharded: block width");
        let (xb, xo, xs) = x;
        let (yb, yo, ys) = y;
        let (bb, bo) = b.unwrap_or((0, 0));
        let (interior_exec, boundary_exec): (ExecFn, ExecFn) = match op {
            ShardedMatOp::Residual => (
                exec_shard_residual_interior::<S>,
                exec_shard_residual_boundary::<S>,
            ),
            _ => (exec_shard_mat_interior::<S>, exec_shard_mat_boundary::<S>),
        };
        let span32 = |v: usize| u32::try_from(v).expect("sharded: span bound");
        for (s, region) in plan.regions.iter().enumerate() {
            if region.rows() == 0 {
                continue;
            }
            let (lo, hi, ilo, ihi) = (region.lo, region.hi, region.ilo, region.ihi);
            let halo_len = region.halo_len();
            let halo_id = if halo_len > 0 {
                self.ctx.register_halo::<S>(halo_len * k)
            } else {
                0
            };
            let (ls, ll) = self.ctx.arena_mut().push_list([plan_id, halo_id]);
            let args = OpArgs {
                bufs: [a_id, xb, yb, bb],
                offs: [0, xo, yo, bo],
                lens: [kk, xs, ys, 0],
                n0: u32::try_from(s).expect("sharded: shard index"),
                list: [ls, ll],
                ..OpArgs::default()
            };
            if halo_len > 0 {
                let (t, bytes) = self.ctx.halo_spec::<S>(halo_len, k);
                let mut reads = Vec::with_capacity(k * region.halo_spans.len());
                for j in 0..kk {
                    for sp in &region.halo_spans {
                        reads.push(Span::elems(
                            xb,
                            xo + j * xs + span32(sp.col),
                            span32(sp.len),
                            S::BYTES,
                        ));
                    }
                }
                self.record(
                    "shard_halo",
                    &reads,
                    &[Span::elems(halo_id, 0, span32(halo_len * k), S::BYTES)],
                    Some((KernelClass::Halo, t, bytes)),
                    exec_shard_halo::<S>,
                    args,
                );
            }
            // Per-column owned-x read spans, shared by both kernels.
            let x_reads: Vec<Span> = (0..kk)
                .map(|j| Span::elems(xb, xo + j * xs + span32(lo), span32(hi - lo), S::BYTES))
                .collect();
            if ihi > ilo {
                let nnz = row_ptr[ihi] - row_ptr[ilo];
                let (t, bytes) = self.ctx.sharded_piece_spec::<S>(am, ihi - ilo, nnz, k, op);
                let mut reads = x_reads.clone();
                if op == ShardedMatOp::Residual {
                    reads.push(Span::elems(
                        bb,
                        bo + span32(ilo),
                        span32(ihi - ilo),
                        S::BYTES,
                    ));
                }
                let writes: Vec<Span> = (0..kk)
                    .map(|j| {
                        Span::elems(yb, yo + j * ys + span32(ilo), span32(ihi - ilo), S::BYTES)
                    })
                    .collect();
                self.record(
                    "shard_interior",
                    &reads,
                    &writes,
                    Some((class, t, bytes)),
                    interior_exec,
                    args,
                );
            }
            let brows = (ilo - lo) + (hi - ihi);
            if brows > 0 {
                let bnnz = (row_ptr[ilo] - row_ptr[lo]) + (row_ptr[hi] - row_ptr[ihi]);
                let (t, bytes) = self.ctx.sharded_piece_spec::<S>(am, brows, bnnz, k, op);
                let mut reads = x_reads;
                if halo_len > 0 {
                    reads.push(Span::elems(halo_id, 0, span32(halo_len * k), S::BYTES));
                }
                if op == ShardedMatOp::Residual {
                    if ilo > lo {
                        reads.push(Span::elems(bb, bo + span32(lo), span32(ilo - lo), S::BYTES));
                    }
                    if hi > ihi {
                        reads.push(Span::elems(
                            bb,
                            bo + span32(ihi),
                            span32(hi - ihi),
                            S::BYTES,
                        ));
                    }
                }
                let mut writes = Vec::with_capacity(2 * k);
                for j in 0..kk {
                    if ilo > lo {
                        writes.push(Span::elems(
                            yb,
                            yo + j * ys + span32(lo),
                            span32(ilo - lo),
                            S::BYTES,
                        ));
                    }
                    if hi > ihi {
                        writes.push(Span::elems(
                            yb,
                            yo + j * ys + span32(ihi),
                            span32(hi - ihi),
                            S::BYTES,
                        ));
                    }
                }
                self.record(
                    "shard_boundary",
                    &reads,
                    &writes,
                    Some((class, t, bytes)),
                    boundary_exec,
                    args,
                );
            }
        }
    }

    /// Record the fused residual `r = b - A x`, charged to `class`.
    pub fn residual_as<S: BackendScalar>(
        &mut self,
        class: KernelClass,
        a: MatRef<S>,
        b: ArgSlice<S>,
        x: ArgSlice<S>,
        r: ArgSliceMut<S>,
    ) {
        // SAFETY: registered borrows are live for the stream's lifetime.
        let am: &GpuMatrix<S> = unsafe { self.arena().obj(a.id) };
        assert_eq!(b.len as usize, am.n(), "stream residual: b length");
        assert_eq!(x.len as usize, am.n(), "stream residual: x length");
        assert_eq!(r.len as usize, am.n(), "stream residual: r length");
        Self::assert_noalias("residual", &[b.span(), x.span()], &[r.span()]);
        if self.eager() {
            // SAFETY: as above.
            let (bs, xs, rs) = unsafe {
                (
                    self.arena().slice::<S>(b.buf, b.off, b.len),
                    self.arena().slice::<S>(x.buf, x.off, x.len),
                    self.arena().slice_mut::<S>(r.buf, r.off, r.len),
                )
            };
            self.ctx.residual_as(class, am, bs, xs, rs);
            return;
        }
        if let Some(plan) = self.ctx.shard_plan_for(am) {
            self.record_sharded_matvec::<S>(
                class,
                ShardedMatOp::Residual,
                &plan,
                am,
                a.id,
                Some((b.buf, b.off)),
                (x.buf, x.off, 0),
                (r.buf, r.off, 0),
                1,
            );
            return;
        }
        let (t, bytes) = self.ctx.residual_spec::<S>(am);
        self.record(
            "residual",
            &[b.span(), x.span()],
            &[r.span()],
            Some((class, t, bytes)),
            exec_residual::<S>,
            OpArgs {
                bufs: [a.id, b.buf, x.buf, r.buf],
                offs: [0, b.off, x.off, r.off],
                lens: [0, b.len, x.len, r.len],
                ..OpArgs::default()
            },
        );
    }

    /// Record the storage-path fused residual `r = b - A x`, charged to
    /// `class` with the store's own traffic model (low-precision value
    /// stream, working-precision vectors).
    pub fn store_residual_as<S: BackendScalar>(
        &mut self,
        class: KernelClass,
        a: StoreRef<S>,
        b: ArgSlice<S>,
        x: ArgSlice<S>,
        r: ArgSliceMut<S>,
    ) {
        // SAFETY: registered borrows are live for the stream's lifetime.
        let am: &GpuStore<S> = unsafe { self.arena().obj(a.id) };
        assert_eq!(b.len as usize, am.n(), "stream store_residual: b length");
        assert_eq!(x.len as usize, am.n(), "stream store_residual: x length");
        assert_eq!(r.len as usize, am.n(), "stream store_residual: r length");
        Self::assert_noalias("store_residual", &[b.span(), x.span()], &[r.span()]);
        if self.eager() {
            // SAFETY: as above.
            let (bs, xs, rs) = unsafe {
                (
                    self.arena().slice::<S>(b.buf, b.off, b.len),
                    self.arena().slice::<S>(x.buf, x.off, x.len),
                    self.arena().slice_mut::<S>(r.buf, r.off, r.len),
                )
            };
            self.ctx.store_residual_as(class, am, bs, xs, rs);
            return;
        }
        let (t, bytes) = self.ctx.store_residual_spec::<S>(am);
        self.record(
            "store_residual",
            &[b.span(), x.span()],
            &[r.span()],
            Some((class, t, bytes)),
            exec_store_residual::<S>,
            OpArgs {
                bufs: [a.id, b.buf, x.buf, r.buf],
                offs: [0, b.off, x.off, r.off],
                lens: [0, b.len, x.len, r.len],
                ..OpArgs::default()
            },
        );
    }

    /// Record `h = V^T w` over the first `ncols` basis columns.
    pub fn gemv_t<S: BackendScalar>(
        &mut self,
        v: BasisRef<S>,
        ncols: usize,
        w: ArgSlice<S>,
        h: ArgSliceMut<S>,
    ) {
        let nc = u32::try_from(ncols).expect("ncols");
        assert!(nc <= v.ncap, "stream gemv_t: ncols over basis capacity");
        assert_eq!(w.len, v.n, "stream gemv_t: w length");
        assert!(h.len >= nc, "stream gemv_t: h too short");
        Self::assert_noalias("gemv_t", &[w.span()], &[h.prefix_span(nc)]);
        if self.eager() {
            // SAFETY: registered borrows are live for the stream's lifetime.
            let (vm, ws, hs) = unsafe {
                (
                    self.arena().obj::<BasisStore<S>>(v.id),
                    self.arena().slice::<S>(w.buf, w.off, w.len),
                    self.arena().slice_mut::<S>(h.buf, h.off, h.len),
                )
            };
            self.ctx.basis_gemv_t(vm, ncols, ws, hs);
            return;
        }
        let (t, bytes) = self
            .ctx
            .basis_gemv_t_spec::<S>(v.n as usize, ncols, v.ebytes as usize);
        self.record(
            "gemv_t",
            &[v.read_span(nc), w.span()],
            &[h.prefix_span(nc)],
            Some((KernelClass::GemvT, t, bytes)),
            exec_gemv_t::<S>,
            OpArgs {
                bufs: [v.id, w.buf, h.buf, 0],
                offs: [0, w.off, h.off, 0],
                lens: [0, w.len, nc, 0],
                n0: nc,
                order: self.ctx.reduction(),
                ..OpArgs::default()
            },
        );
    }

    /// Record `w -= V h` (GEMV No-Trans).
    pub fn gemv_n_sub<S: BackendScalar>(
        &mut self,
        v: BasisRef<S>,
        ncols: usize,
        h: ArgSlice<S>,
        w: ArgSliceMut<S>,
    ) {
        self.gemv_n(v, ncols, h, w, false);
    }

    /// Record `y += V h` (GEMV No-Trans; the solution update).
    pub fn gemv_n_add<S: BackendScalar>(
        &mut self,
        v: BasisRef<S>,
        ncols: usize,
        h: ArgSlice<S>,
        y: ArgSliceMut<S>,
    ) {
        self.gemv_n(v, ncols, h, y, true);
    }

    fn gemv_n<S: BackendScalar>(
        &mut self,
        v: BasisRef<S>,
        ncols: usize,
        h: ArgSlice<S>,
        w: ArgSliceMut<S>,
        add: bool,
    ) {
        let nc = u32::try_from(ncols).expect("ncols");
        assert!(nc <= v.ncap, "stream gemv_n: ncols over basis capacity");
        assert_eq!(w.len, v.n, "stream gemv_n: vector length");
        assert!(h.len >= nc, "stream gemv_n: h too short");
        {
            let h_read = ArgSlice::<S> {
                buf: h.buf,
                off: h.off,
                len: nc,
                _s: PhantomData,
            };
            Self::assert_noalias("gemv_n", &[h_read.span()], &[w.span()]);
        }
        if self.eager() {
            // SAFETY: registered borrows are live for the stream's lifetime.
            let (vm, hs, ws) = unsafe {
                (
                    self.arena().obj::<BasisStore<S>>(v.id),
                    self.arena().slice::<S>(h.buf, h.off, h.len),
                    self.arena().slice_mut::<S>(w.buf, w.off, w.len),
                )
            };
            if add {
                self.ctx.basis_gemv_n_add(vm, ncols, hs, ws);
            } else {
                self.ctx.basis_gemv_n_sub(vm, ncols, hs, ws);
            }
            return;
        }
        let (t, bytes) = self
            .ctx
            .basis_gemv_n_spec::<S>(v.n as usize, ncols, v.ebytes as usize);
        let h_read = ArgSlice::<S> {
            buf: h.buf,
            off: h.off,
            len: nc,
            _s: PhantomData,
        };
        self.record(
            if add { "gemv_n_add" } else { "gemv_n_sub" },
            &[v.read_span(nc), h_read.span()],
            &[w.span()],
            Some((KernelClass::GemvN, t, bytes)),
            if add {
                exec_gemv_n_add::<S>
            } else {
                exec_gemv_n_sub::<S>
            },
            OpArgs {
                bufs: [v.id, h.buf, w.buf, 0],
                offs: [0, h.off, w.off, 0],
                lens: [0, nc, w.len, 0],
                n0: nc,
                ..OpArgs::default()
            },
        );
    }

    /// Record `y += alpha x`.
    pub fn axpy<S: BackendScalar>(&mut self, alpha: S, x: ArgSlice<S>, y: ArgSliceMut<S>) {
        assert_eq!(x.len, y.len, "stream axpy: length mismatch");
        Self::assert_noalias("axpy", &[x.span()], &[y.span()]);
        if self.eager() {
            // SAFETY: registered borrows are live for the stream's lifetime.
            let (xs, ys) = unsafe {
                (
                    self.arena().slice::<S>(x.buf, x.off, x.len),
                    self.arena().slice_mut::<S>(y.buf, y.off, y.len),
                )
            };
            self.ctx.axpy(alpha, xs, ys);
            return;
        }
        let (t, bytes) = self.ctx.axpy_spec::<S>(x.len as usize);
        self.record(
            "axpy",
            &[x.span()],
            &[y.span()],
            Some((KernelClass::Axpy, t, bytes)),
            exec_axpy::<S>,
            OpArgs {
                bufs: [x.buf, y.buf, 0, 0],
                offs: [x.off, y.off, 0, 0],
                lens: [x.len, y.len, 0, 0],
                alpha: alpha.to_f64(),
                ..OpArgs::default()
            },
        );
    }

    /// Record `x *= alpha`.
    pub fn scal<S: BackendScalar>(&mut self, alpha: S, x: ArgSliceMut<S>) {
        if self.eager() {
            // SAFETY: registered borrows are live for the stream's lifetime.
            let xs = unsafe { self.arena().slice_mut::<S>(x.buf, x.off, x.len) };
            self.ctx.scal(alpha, xs);
            return;
        }
        let (t, bytes) = self.ctx.scal_spec::<S>(x.len as usize);
        self.record(
            "scal",
            &[],
            &[x.span()],
            Some((KernelClass::Scal, t, bytes)),
            exec_scal::<S>,
            OpArgs {
                bufs: [x.buf, 0, 0, 0],
                offs: [x.off, 0, 0, 0],
                lens: [x.len, 0, 0, 0],
                alpha: alpha.to_f64(),
                ..OpArgs::default()
            },
        );
    }

    /// Record a device-resident copy (uncharged, like
    /// [`GpuContext::copy`]; still a DAG node so dependent ops order).
    pub fn copy<S: BackendScalar>(&mut self, src: ArgSlice<S>, dst: ArgSliceMut<S>) {
        assert_eq!(src.len, dst.len, "stream copy: length mismatch");
        Self::assert_noalias("copy", &[src.span()], &[dst.span()]);
        if self.eager() {
            // SAFETY: registered borrows are live for the stream's lifetime.
            let (ss, ds) = unsafe {
                (
                    self.arena().slice::<S>(src.buf, src.off, src.len),
                    self.arena().slice_mut::<S>(dst.buf, dst.off, dst.len),
                )
            };
            self.ctx.copy(ss, ds);
            return;
        }
        self.record(
            "copy",
            &[src.span()],
            &[dst.span()],
            None,
            exec_copy::<S>,
            OpArgs {
                bufs: [src.buf, dst.buf, 0, 0],
                offs: [src.off, dst.off, 0, 0],
                lens: [src.len, dst.len, 0, 0],
                ..OpArgs::default()
            },
        );
    }

    /// Record a Euclidean norm whose result lands in `out` after sync
    /// (the recordable form of [`GpuContext::norm2`]).
    pub fn norm2_into<S: BackendScalar>(&mut self, x: ArgSlice<S>, out: ArgValMut<S>) {
        self.norm2_into_as(KernelClass::Norm, x, out);
    }

    /// As [`Stream::norm2_into`], charged to `class` (the IR outer loop
    /// books its convergence-check norms under
    /// [`KernelClass::ResidualHi`], matching the eager
    /// [`GpuContext::norm2_as`]).
    pub fn norm2_into_as<S: BackendScalar>(
        &mut self,
        class: KernelClass,
        x: ArgSlice<S>,
        out: ArgValMut<S>,
    ) {
        Self::assert_noalias("norm2", &[x.span()], &[out.span()]);
        if self.eager() {
            // SAFETY: registered borrows are live for the stream's lifetime.
            let (xs, os) = unsafe {
                (
                    self.arena().slice::<S>(x.buf, x.off, x.len),
                    self.arena().value_mut::<S>(out.buf, out.off),
                )
            };
            *os = self.ctx.norm2_as(class, xs);
            return;
        }
        let (t, bytes) = self.ctx.norm_spec::<S>(x.len as usize);
        self.record(
            "norm2",
            &[x.span()],
            &[out.span()],
            Some((class, t, bytes)),
            exec_norm2::<S>,
            OpArgs {
                bufs: [x.buf, out.buf, 0, 0],
                offs: [x.off, out.off, 0, 0],
                lens: [x.len, 1, 0, 0],
                order: self.ctx.reduction(),
                ..OpArgs::default()
            },
        );
    }

    // ----- deferred host steps (software pipelining) -----------------

    /// Record one lane's deferred Givens/update bookkeeping for a PAST
    /// iteration `j` (the software-pipelined `BlockGmres` host step).
    /// The arithmetic already ran on the host when it consumed the
    /// synced results, so the node executes nothing; it carries the
    /// host-dense charge at its DAG-ready time instead — which is how
    /// the timeline shows the host latency hidden behind the *current*
    /// iteration's device kernels. `lagged` are the previous-parity
    /// norm/coefficient spans the step consumed (they conflict with
    /// nothing the current iteration writes — the DAG proves the
    /// one-iteration lag safe), and `token` is the lane's host-state
    /// slot: consecutive host steps of one lane chain through it (WAW),
    /// keeping the Givens recurrence ordered per lane while distinct
    /// lanes overlap freely.
    pub fn host_givens<S: BackendScalar>(
        &mut self,
        j: usize,
        lagged: &[ArgSlice<S>],
        token: ArgValMut<S>,
    ) {
        let t = self.ctx.host_iter_spec(j);
        self.host_node("host_givens", t, lagged, &[token.span()]);
    }

    /// Record one lane's deferred least-squares solve at the cycle
    /// barrier: charged as the per-restart host cost for `kc` columns,
    /// writing the lane's (width-padded) update-coefficient column and
    /// its host-state token. The write on `y` is what orders the lane's
    /// device update chain (GEMV-N reading `y`) after this host step,
    /// and the token WAW orders it after the lane's drained Givens
    /// steps — per-lane host→device chains that overlap across lanes.
    pub fn host_lsq<S: BackendScalar>(
        &mut self,
        kc: usize,
        token: ArgValMut<S>,
        y: ArgSliceMut<S>,
    ) {
        let t = self.ctx.host_restart_spec(kc);
        self.host_node::<S>("host_lsq", t, &[], &[token.span(), y.span()]);
    }

    fn host_node<S: BackendScalar>(
        &mut self,
        label: &'static str,
        seconds: f64,
        reads: &[ArgSlice<S>],
        writes: &[Span],
    ) {
        let read_spans: Vec<Span> = reads.iter().map(|r| r.span()).collect();
        Self::assert_noalias(label, &read_spans, writes);
        if self.eager() {
            // The arithmetic already happened on the host; only the
            // charge remains, serialized like every eager charge.
            self.ctx
                .profiler_mut()
                .charge(KernelClass::HostDense, seconds, 0);
            return;
        }
        self.record_kind(
            label,
            OpKind::Host,
            &read_spans,
            writes,
            Some((KernelClass::HostDense, seconds, 0)),
            exec_host_step,
            OpArgs::default(),
        );
    }

    // ----- fused lane-set kernels (recorded forms) -------------------

    /// Record the fused per-lane normalize-and-store
    /// `dsts[c] = alphas[c] * srcs[c]` (the recorded twin of
    /// [`GpuContext::lane_scal_copy`], charged identically as a
    /// width-`k` block scaling). `alphas` must be a registered view
    /// holding one coefficient per lane; sources and destinations are
    /// arbitrary registered column views of one shared length.
    pub fn lane_scal_copy<S: BackendScalar>(
        &mut self,
        alphas: ArgSlice<S>,
        srcs: &[ArgSlice<S>],
        dsts: &[ArgSliceMut<S>],
    ) {
        let k = srcs.len();
        assert_eq!(k, dsts.len(), "stream lane_scal_copy: lane count");
        assert!(k >= 1, "stream lane_scal_copy: empty lane set");
        assert!(alphas.len as usize >= k, "stream lane_scal_copy: alphas");
        let n = srcs[0].len;
        let (t, bytes) = self.ctx.block_scal_spec::<S>(n as usize, k);
        self.lane_op(
            "lane_scal_copy",
            Some((alphas, (KernelClass::Scal, t, bytes))),
            srcs,
            dsts,
            exec_lane_scal_copy::<S>,
        );
    }

    /// Record the fused per-lane copy `dsts[c] = srcs[c]` (the recorded
    /// twin of [`GpuContext::lane_copy`]; uncharged, like every copy).
    pub fn lane_copy<S: BackendScalar>(&mut self, srcs: &[ArgSlice<S>], dsts: &[ArgSliceMut<S>]) {
        assert_eq!(srcs.len(), dsts.len(), "stream lane_copy: lane count");
        assert!(!srcs.is_empty(), "stream lane_copy: empty lane set");
        self.lane_op("lane_copy", None, srcs, dsts, exec_lane_copy::<S>);
    }

    fn lane_op<S: BackendScalar>(
        &mut self,
        label: &'static str,
        alphas: Option<(ArgSlice<S>, (KernelClass, f64, usize))>,
        srcs: &[ArgSlice<S>],
        dsts: &[ArgSliceMut<S>],
        exec: ExecFn,
    ) {
        let k = srcs.len();
        let n = srcs[0].len;
        let mut reads: Vec<Span> = Vec::with_capacity(k + 1);
        if let Some((a, _)) = &alphas {
            reads.push(a.sub(0, k).span());
        }
        let mut writes: Vec<Span> = Vec::with_capacity(k);
        for (s, d) in srcs.iter().zip(dsts) {
            assert_eq!(s.len, n, "stream {label}: ragged source lanes");
            assert_eq!(d.len, n, "stream {label}: ragged destination lanes");
            reads.push(s.span());
            writes.push(d.span());
        }
        Self::assert_noalias(label, &reads, &writes);
        if self.eager() {
            // SAFETY: registered borrows are live for the stream's
            // lifetime; each dst is the sole live view of its span.
            unsafe {
                let ss: Vec<&[S]> = srcs
                    .iter()
                    .map(|s| self.arena().slice::<S>(s.buf, s.off, s.len))
                    .collect();
                let mut ds: Vec<&mut [S]> = dsts
                    .iter()
                    .map(|d| self.arena().slice_mut::<S>(d.buf, d.off, d.len))
                    .collect();
                match alphas {
                    Some((a, _)) => {
                        let al = self.arena().slice::<S>(a.buf, a.off, a.len);
                        self.ctx.lane_scal_copy(&al[..k], &ss, &mut ds);
                    }
                    None => self.ctx.lane_copy(&ss, &mut ds),
                }
            }
            return;
        }
        let quads: Vec<u32> = srcs
            .iter()
            .zip(dsts)
            .flat_map(|(s, d)| [s.buf, s.off, d.buf, d.off])
            .collect();
        let (start, len) = self.ctx.arena_mut().push_list(quads);
        let (abuf, aoff, charge) = match alphas {
            Some((a, charge)) => (a.buf, a.off, Some(charge)),
            None => (0, 0, None),
        };
        self.record(
            label,
            &reads,
            &writes,
            charge,
            exec,
            OpArgs {
                bufs: [abuf, 0, 0, 0],
                offs: [aoff, 0, 0, 0],
                lens: [u32::try_from(k).expect("lane count"), n, 0, 0],
                n0: u32::try_from(k).expect("lane count"),
                list: [start, len],
                ..OpArgs::default()
            },
        );
    }

    /// Record `y += V h[..ncols]`, declaring the read span over the
    /// WHOLE registered `h` view rather than its `ncols` prefix. With
    /// the coefficient column padded to a fixed width (zeros beyond
    /// `ncols`), the op's *shape* no longer depends on the per-lane
    /// update width — what makes the `BlockGmres` cycle-barrier regions
    /// shape-stable and replay-cacheable (ROADMAP learning (c)). The
    /// execution and the charge still use the true `ncols`, so results
    /// and accounting are bit-identical to [`Stream::gemv_n_add`].
    pub fn gemv_n_add_padded<S: BackendScalar>(
        &mut self,
        v: BasisRef<S>,
        ncols: usize,
        h: ArgSlice<S>,
        y: ArgSliceMut<S>,
    ) {
        let nc = u32::try_from(ncols).expect("ncols");
        assert!(nc <= v.ncap, "stream gemv_n: ncols over basis capacity");
        assert_eq!(y.len, v.n, "stream gemv_n: vector length");
        assert!(h.len >= nc, "stream gemv_n: h too short");
        Self::assert_noalias("gemv_n", &[h.span()], &[y.span()]);
        if self.eager() {
            // SAFETY: registered borrows are live for the stream's lifetime.
            let (vm, hs, ys) = unsafe {
                (
                    self.arena().obj::<BasisStore<S>>(v.id),
                    self.arena().slice::<S>(h.buf, h.off, h.len),
                    self.arena().slice_mut::<S>(y.buf, y.off, y.len),
                )
            };
            self.ctx.basis_gemv_n_add(vm, ncols, hs, ys);
            return;
        }
        let (t, bytes) = self
            .ctx
            .basis_gemv_n_spec::<S>(v.n as usize, ncols, v.ebytes as usize);
        // The read span stays whole-buffer on BOTH storage paths: the
        // padded form exists to keep the barrier regions' shape
        // independent of the per-lane update width, and an
        // `ncols`-exact span would reintroduce that dependence for
        // compressed bases. The charge still uses the true `ncols`.
        self.record(
            "gemv_n_add",
            &[Span::whole(v.id), h.span()],
            &[y.span()],
            Some((KernelClass::GemvN, t, bytes)),
            exec_gemv_n_add::<S>,
            OpArgs {
                bufs: [v.id, h.buf, y.buf, 0],
                offs: [0, h.off, y.off, 0],
                lens: [0, h.len, y.len, 0],
                n0: nc,
                ..OpArgs::default()
            },
        );
    }

    // ----- batched multi-RHS kernels ---------------------------------

    /// Record the batched SpMM `Y[:, ..k] = A X[:, ..k]`.
    pub fn spmm<S: BackendScalar>(
        &mut self,
        a: MatRef<S>,
        x: BlockRef<S>,
        k: usize,
        y: BlockMut<S>,
    ) {
        // SAFETY: registered borrows are live for the stream's lifetime.
        let am: &GpuMatrix<S> = unsafe { self.arena().obj(a.id) };
        let kk = u32::try_from(k).expect("block width");
        assert!(kk >= 1 && kk <= x.k && kk <= y.k, "stream spmm: width");
        assert_eq!(x.n as usize, am.n(), "stream spmm: X rows");
        assert_eq!(y.n as usize, am.n(), "stream spmm: Y rows");
        Self::assert_noalias("spmm", &[Span::whole(x.id)], &[Span::whole(y.id)]);
        if self.eager() {
            // SAFETY: as above; y's sole view during the call.
            let (xm, ym) = unsafe {
                (
                    self.arena().obj::<MultiVec<S>>(x.id),
                    self.arena().obj_mut::<MultiVec<S>>(y.id),
                )
            };
            self.ctx.spmm(am, xm, k, ym);
            return;
        }
        if let Some(plan) = self.ctx.shard_plan_for(am) {
            // Column stride of a MultiVec is its row count; per-column
            // element spans keep the per-shard hazard tracking exact.
            self.record_sharded_matvec::<S>(
                KernelClass::SpMV,
                ShardedMatOp::Spmm,
                &plan,
                am,
                a.id,
                None,
                (x.id, 0, x.n),
                (y.id, 0, y.n),
                k,
            );
            return;
        }
        let (t, bytes) = self.ctx.spmm_spec::<S>(am, k);
        self.record(
            "spmm",
            &[Span::whole(x.id)],
            &[Span::whole(y.id)],
            Some((KernelClass::SpMV, t, bytes)),
            exec_spmm::<S>,
            OpArgs {
                bufs: [a.id, x.id, y.id, 0],
                n0: kk,
                ..OpArgs::default()
            },
        );
    }

    /// Record the storage-path batched SpMM `Y[:, ..k] = A X[:, ..k]`,
    /// charged with the store's traffic model.
    pub fn store_spmm<S: BackendScalar>(
        &mut self,
        a: StoreRef<S>,
        x: BlockRef<S>,
        k: usize,
        y: BlockMut<S>,
    ) {
        // SAFETY: registered borrows are live for the stream's lifetime.
        let am: &GpuStore<S> = unsafe { self.arena().obj(a.id) };
        let kk = u32::try_from(k).expect("block width");
        assert!(
            kk >= 1 && kk <= x.k && kk <= y.k,
            "stream store_spmm: width"
        );
        assert_eq!(x.n as usize, am.n(), "stream store_spmm: X rows");
        assert_eq!(y.n as usize, am.n(), "stream store_spmm: Y rows");
        Self::assert_noalias("store_spmm", &[Span::whole(x.id)], &[Span::whole(y.id)]);
        if self.eager() {
            // SAFETY: as above; y's sole view during the call.
            let (xm, ym) = unsafe {
                (
                    self.arena().obj::<MultiVec<S>>(x.id),
                    self.arena().obj_mut::<MultiVec<S>>(y.id),
                )
            };
            self.ctx.store_spmm(am, xm, k, ym);
            return;
        }
        let (t, bytes) = self.ctx.store_spmm_spec::<S>(am, k);
        self.record(
            "store_spmm",
            &[Span::whole(x.id)],
            &[Span::whole(y.id)],
            Some((KernelClass::SpMV, t, bytes)),
            exec_store_spmm::<S>,
            OpArgs {
                bufs: [a.id, x.id, y.id, 0],
                n0: kk,
                ..OpArgs::default()
            },
        );
    }

    /// Record the batched GEMV-Trans over one basis per block column.
    pub fn block_gemv_t<S: BackendScalar>(
        &mut self,
        vs: BasisList<S>,
        ncols: usize,
        w: BlockRef<S>,
        h: ArgSliceMut<S>,
    ) {
        let nc = u32::try_from(ncols).expect("ncols");
        let k = vs.len;
        assert!(nc <= vs.ncap, "stream block_gemv_t: ncols over capacity");
        assert_eq!(vs.n, w.n, "stream block_gemv_t: basis/block rows");
        assert!(k <= w.k, "stream block_gemv_t: more bases than columns");
        assert!(h.len >= k * nc, "stream block_gemv_t: h too short");
        Self::assert_noalias(
            "block_gemv_t",
            &[Span::whole(w.id)],
            &[h.prefix_span(k * nc)],
        );
        if self.eager() {
            self.eager_block_gemv(vs, ncols, h, w.id, BlockGemvKind::T);
            return;
        }
        let (t, bytes) =
            self.ctx
                .basis_gemm_t_spec::<S>(w.n as usize, ncols, k as usize, vs.ebytes as usize);
        let mut reads: Vec<Span> = self.basis_spans(vs, nc);
        reads.push(Span::whole(w.id));
        self.record(
            "block_gemv_t",
            &reads,
            &[h.prefix_span(k * nc)],
            Some((KernelClass::GemvT, t, bytes)),
            exec_block_gemv_t::<S>,
            OpArgs {
                bufs: [w.id, h.buf, 0, 0],
                offs: [0, h.off, 0, 0],
                lens: [0, k * nc, 0, 0],
                n0: nc,
                list: [vs.start, vs.len],
                order: self.ctx.reduction(),
                ..OpArgs::default()
            },
        );
    }

    /// Record the batched GEMV-NoTrans `w_c -= V_c h_c`.
    pub fn block_gemv_n_sub<S: BackendScalar>(
        &mut self,
        vs: BasisList<S>,
        ncols: usize,
        h: ArgSlice<S>,
        w: BlockMut<S>,
    ) {
        let nc = u32::try_from(ncols).expect("ncols");
        let k = vs.len;
        assert!(nc <= vs.ncap, "stream block_gemv_n: ncols over capacity");
        assert_eq!(vs.n, w.n, "stream block_gemv_n: basis/block rows");
        assert!(k <= w.k, "stream block_gemv_n: more bases than columns");
        assert!(h.len >= k * nc, "stream block_gemv_n: h too short");
        {
            let h_read = ArgSlice::<S> {
                buf: h.buf,
                off: h.off,
                len: k * nc,
                _s: PhantomData,
            };
            Self::assert_noalias("block_gemv_n", &[h_read.span()], &[Span::whole(w.id)]);
        }
        if self.eager() {
            let hm = ArgSliceMut::<S> {
                buf: h.buf,
                off: h.off,
                len: h.len,
                _s: PhantomData,
            };
            self.eager_block_gemv(vs, ncols, hm, w.id, BlockGemvKind::NSub);
            return;
        }
        let (t, bytes) =
            self.ctx
                .basis_gemm_n_spec::<S>(w.n as usize, ncols, k as usize, vs.ebytes as usize);
        let h_read = ArgSlice::<S> {
            buf: h.buf,
            off: h.off,
            len: k * nc,
            _s: PhantomData,
        };
        let mut reads: Vec<Span> = self.basis_spans(vs, nc);
        reads.push(h_read.span());
        self.record(
            "block_gemv_n_sub",
            &reads,
            &[Span::whole(w.id)],
            Some((KernelClass::GemvN, t, bytes)),
            exec_block_gemv_n_sub::<S>,
            OpArgs {
                bufs: [w.id, h.buf, 0, 0],
                offs: [0, h.off, 0, 0],
                lens: [0, k * nc, 0, 0],
                n0: nc,
                list: [vs.start, vs.len],
                ..OpArgs::default()
            },
        );
    }

    /// Record fused column norms whose results land in `out[..k]` after
    /// sync.
    pub fn block_norm2_into<S: BackendScalar>(
        &mut self,
        x: BlockRef<S>,
        k: usize,
        out: ArgSliceMut<S>,
    ) {
        let kk = u32::try_from(k).expect("block width");
        assert!(kk >= 1 && kk <= x.k, "stream block_norm2: width");
        assert!(out.len >= kk, "stream block_norm2: out too short");
        Self::assert_noalias("block_norm2", &[Span::whole(x.id)], &[out.prefix_span(kk)]);
        if self.eager() {
            // SAFETY: registered borrows are live for the stream's lifetime.
            let (xm, os) = unsafe {
                (
                    self.arena().obj::<MultiVec<S>>(x.id),
                    self.arena().slice_mut::<S>(out.buf, out.off, out.len),
                )
            };
            self.ctx.block_norm2(xm, k, os);
            return;
        }
        let (t, bytes) = self.ctx.block_norm_spec::<S>(x.n as usize, k);
        self.record(
            "block_norm2",
            &[Span::whole(x.id)],
            &[out.prefix_span(kk)],
            Some((KernelClass::Norm, t, bytes)),
            exec_block_norm2::<S>,
            OpArgs {
                bufs: [x.id, out.buf, 0, 0],
                offs: [0, out.off, 0, 0],
                lens: [0, kk, 0, 0],
                n0: kk,
                order: self.ctx.reduction(),
                ..OpArgs::default()
            },
        );
    }

    /// Per-lane read spans of a basis list: whole-object for native
    /// lanes (pre-refactor DAG shape), exact narrow element prefixes
    /// for compressed ones (see [`BasisRef::read_span`]).
    fn basis_spans<S: Scalar>(&self, vs: BasisList<S>, nc: u32) -> Vec<Span> {
        let native = vs.ebytes as usize == std::mem::size_of::<S>();
        self.arena()
            .list(vs.start, vs.len)
            .iter()
            .map(|&id| {
                if native {
                    Span::whole(id)
                } else {
                    Span::elems(id, 0, nc * vs.n, vs.ebytes as usize)
                }
            })
            .collect()
    }

    fn eager_block_gemv<S: BackendScalar>(
        &mut self,
        vs: BasisList<S>,
        ncols: usize,
        h: ArgSliceMut<S>,
        w_id: u32,
        kind: BlockGemvKind,
    ) {
        // SAFETY: registered borrows are live for the stream's lifetime.
        unsafe {
            let bases: Vec<&BasisStore<S>> = self
                .arena()
                .list(vs.start, vs.len)
                .iter()
                .map(|&id| self.arena().obj::<BasisStore<S>>(id))
                .collect();
            match kind {
                BlockGemvKind::T => {
                    let wm = self.arena().obj::<MultiVec<S>>(w_id);
                    let hs = self.arena().slice_mut::<S>(h.buf, h.off, h.len);
                    self.ctx.basis_block_gemv_t(&bases, ncols, wm, hs);
                }
                BlockGemvKind::NSub => {
                    let hs = self.arena().slice::<S>(h.buf, h.off, h.len);
                    let wm = self.arena().obj_mut::<MultiVec<S>>(w_id);
                    self.ctx.basis_block_gemv_n_sub(&bases, ncols, hs, wm);
                }
            }
        }
    }
}

enum BlockGemvKind {
    T,
    NSub,
}

impl Drop for Stream<'_> {
    fn drop(&mut self) {
        // A record call's contract assert can fire mid-region; running
        // the half-recorded graph while unwinding would risk a
        // double-panic abort that masks the original message. Pending
        // ops are simply abandoned in that case.
        if std::thread::panicking() {
            return;
        }
        self.finish();
    }
}

// ----- monomorphized kernel launches -----------------------------------
//
// One function per kernel shape, resolving operands from the arena via
// the plain-data args. Discipline (the arena contract): materialize a
// `&mut` only for memory the op declared a write span on, a `&` only
// for declared reads; the DAG guarantees no conflicting op runs
// concurrently, and the recorder keeps every registration borrowed
// until after submit.

fn exec_spmv<S: BackendScalar>(b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract (above).
    unsafe {
        let m: &GpuMatrix<S> = arena.obj(a.bufs[0]);
        let x = arena.slice::<S>(a.bufs[1], a.offs[1], a.lens[1]);
        let y = arena.slice_mut::<S>(a.bufs[2], a.offs[2], a.lens[2]);
        S::view(b).spmv(m.csr(), x, y);
    }
}

fn exec_residual<S: BackendScalar>(b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract.
    unsafe {
        let m: &GpuMatrix<S> = arena.obj(a.bufs[0]);
        let bb = arena.slice::<S>(a.bufs[1], a.offs[1], a.lens[1]);
        let x = arena.slice::<S>(a.bufs[2], a.offs[2], a.lens[2]);
        let r = arena.slice_mut::<S>(a.bufs[3], a.offs[3], a.lens[3]);
        S::view(b).residual(m.csr(), bb, x, r);
    }
}

fn exec_store_residual<S: BackendScalar>(b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract.
    unsafe {
        let m: &GpuStore<S> = arena.obj(a.bufs[0]);
        let bb = arena.slice::<S>(a.bufs[1], a.offs[1], a.lens[1]);
        let x = arena.slice::<S>(a.bufs[2], a.offs[2], a.lens[2]);
        let r = arena.slice_mut::<S>(a.bufs[3], a.offs[3], a.lens[3]);
        S::view(b).store_residual(m.store(), bb, x, r);
    }
}

fn exec_gemv_t<S: BackendScalar>(b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract.
    unsafe {
        let v: &BasisStore<S> = arena.obj(a.bufs[0]);
        let w = arena.slice::<S>(a.bufs[1], a.offs[1], a.lens[1]);
        let h = arena.slice_mut::<S>(a.bufs[2], a.offs[2], a.lens[2]);
        S::view(b).basis_gemv_t(v, a.n0 as usize, w, h, a.order);
    }
}

fn exec_gemv_n_sub<S: BackendScalar>(b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract.
    unsafe {
        let v: &BasisStore<S> = arena.obj(a.bufs[0]);
        let h = arena.slice::<S>(a.bufs[1], a.offs[1], a.lens[1]);
        let w = arena.slice_mut::<S>(a.bufs[2], a.offs[2], a.lens[2]);
        S::view(b).basis_gemv_n_sub(v, a.n0 as usize, h, w);
    }
}

fn exec_gemv_n_add<S: BackendScalar>(b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract.
    unsafe {
        let v: &BasisStore<S> = arena.obj(a.bufs[0]);
        let h = arena.slice::<S>(a.bufs[1], a.offs[1], a.lens[1]);
        let y = arena.slice_mut::<S>(a.bufs[2], a.offs[2], a.lens[2]);
        S::view(b).basis_gemv_n_add(v, a.n0 as usize, h, y);
    }
}

fn exec_axpy<S: BackendScalar>(b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract.
    unsafe {
        let x = arena.slice::<S>(a.bufs[0], a.offs[0], a.lens[0]);
        let y = arena.slice_mut::<S>(a.bufs[1], a.offs[1], a.lens[1]);
        S::view(b).axpy(S::from_f64(a.alpha), x, y);
    }
}

fn exec_scal<S: BackendScalar>(b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract.
    unsafe {
        let x = arena.slice_mut::<S>(a.bufs[0], a.offs[0], a.lens[0]);
        S::view(b).scal(S::from_f64(a.alpha), x);
    }
}

fn exec_copy<S: BackendScalar>(b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract.
    unsafe {
        let src = arena.slice::<S>(a.bufs[0], a.offs[0], a.lens[0]);
        let dst = arena.slice_mut::<S>(a.bufs[1], a.offs[1], a.lens[1]);
        S::view(b).copy(src, dst);
    }
}

fn exec_norm2<S: BackendScalar>(b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract.
    unsafe {
        let x = arena.slice::<S>(a.bufs[0], a.offs[0], a.lens[0]);
        *arena.value_mut::<S>(a.bufs[1], a.offs[1]) = S::view(b).norm2(x, a.order);
    }
}

/// Deferred host step: the arithmetic already ran on the host when it
/// consumed the synced results; the node exists for its DAG edges and
/// its ready-time charge, so its launch is a no-op.
fn exec_host_step(_b: &dyn Backend, _arena: &BufferArena, _a: &OpArgs) {}

fn exec_lane_scal_copy<S: BackendScalar>(b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract; each destination quad names a distinct
    // declared write span.
    unsafe {
        let k = a.n0 as usize;
        let n = a.lens[1];
        let alphas = arena.slice::<S>(a.bufs[0], a.offs[0], a.lens[0]);
        let quads = arena.list(a.list[0], a.list[1]);
        let srcs: Vec<&[S]> = (0..k)
            .map(|c| arena.slice::<S>(quads[4 * c], quads[4 * c + 1], n))
            .collect();
        let mut dsts: Vec<&mut [S]> = (0..k)
            .map(|c| arena.slice_mut::<S>(quads[4 * c + 2], quads[4 * c + 3], n))
            .collect();
        S::view(b).lane_scal_copy(alphas, &srcs, &mut dsts);
    }
}

fn exec_lane_copy<S: BackendScalar>(b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract; as `exec_lane_scal_copy`.
    unsafe {
        let k = a.n0 as usize;
        let n = a.lens[1];
        let quads = arena.list(a.list[0], a.list[1]);
        let srcs: Vec<&[S]> = (0..k)
            .map(|c| arena.slice::<S>(quads[4 * c], quads[4 * c + 1], n))
            .collect();
        let mut dsts: Vec<&mut [S]> = (0..k)
            .map(|c| arena.slice_mut::<S>(quads[4 * c + 2], quads[4 * c + 3], n))
            .collect();
        S::view(b).lane_copy(&srcs, &mut dsts);
    }
}

fn exec_spmm<S: BackendScalar>(b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract; the write span covers all of y, so the
    // whole-object `&mut` aliases nothing.
    unsafe {
        let m: &GpuMatrix<S> = arena.obj(a.bufs[0]);
        let x: &MultiVec<S> = arena.obj(a.bufs[1]);
        let y: &mut MultiVec<S> = arena.obj_mut(a.bufs[2]);
        S::view(b).spmm(m.csr(), x, a.n0 as usize, y);
    }
}

// Sharded matrix-op launches. Args layout (see
// `Stream::record_sharded_matvec`): bufs = [matrix, x, y, b],
// offs = [0, x base, y base, b base], lens = [k, x stride, y stride, 0],
// n0 = shard index, list = [plan handle, halo handle].

fn exec_shard_halo<S: BackendScalar>(_b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract; the copies materialize exactly the
    // declared per-span x reads and the halo write span.
    unsafe {
        let ids = arena.list(a.list[0], a.list[1]);
        let plan: &ShardPlan = arena.obj(ids[0]);
        let region = &plan.regions[a.n0 as usize];
        let hl = region.halo_len();
        let k = a.lens[0] as usize;
        let stride = a.lens[1] as usize;
        let halo = arena.slice_mut::<S>(ids[1], 0, (hl * k) as u32);
        for j in 0..k {
            let base = a.offs[1] + (j * stride) as u32;
            let hj = &mut halo[j * hl..(j + 1) * hl];
            for sp in &region.halo_spans {
                let src = arena.slice::<S>(a.bufs[1], base + sp.col as u32, sp.len as u32);
                hj[sp.dst..sp.dst + sp.len].copy_from_slice(src);
            }
        }
    }
}

fn exec_shard_mat_interior<S: BackendScalar>(_b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract; per-column views match the declared
    // owned-x read spans and interior-row write spans.
    unsafe {
        let ids = arena.list(a.list[0], a.list[1]);
        let plan: &ShardPlan = arena.obj(ids[0]);
        let m: &GpuMatrix<S> = arena.obj(a.bufs[0]);
        let region = &plan.regions[a.n0 as usize];
        let (lo, hi, ilo, ihi) = (region.lo, region.hi, region.ilo, region.ihi);
        let k = a.lens[0] as usize;
        let (xs, ys) = (a.lens[1] as usize, a.lens[2] as usize);
        for j in 0..k {
            let x_owned = arena.slice::<S>(
                a.bufs[1],
                a.offs[1] + (j * xs + lo) as u32,
                (hi - lo) as u32,
            );
            let yj = arena.slice_mut::<S>(
                a.bufs[2],
                a.offs[2] + (j * ys + ilo) as u32,
                (ihi - ilo) as u32,
            );
            shard::spmv_rows_local(m.csr(), ilo, ihi, lo, x_owned, yj);
        }
    }
}

fn exec_shard_mat_boundary<S: BackendScalar>(_b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract; per-column views match the declared
    // owned-x/halo read spans and lead/trail write spans.
    unsafe {
        let ids = arena.list(a.list[0], a.list[1]);
        let plan: &ShardPlan = arena.obj(ids[0]);
        let m: &GpuMatrix<S> = arena.obj(a.bufs[0]);
        let region = &plan.regions[a.n0 as usize];
        let (lo, hi, ilo, ihi) = (region.lo, region.hi, region.ilo, region.ihi);
        let hl = region.halo_len();
        let k = a.lens[0] as usize;
        let (xs, ys) = (a.lens[1] as usize, a.lens[2] as usize);
        let halo_all: &[S] = if hl > 0 {
            arena.slice::<S>(ids[1], 0, (hl * k) as u32)
        } else {
            &[]
        };
        for j in 0..k {
            let x_owned = arena.slice::<S>(
                a.bufs[1],
                a.offs[1] + (j * xs + lo) as u32,
                (hi - lo) as u32,
            );
            let halo = if hl > 0 {
                &halo_all[j * hl..(j + 1) * hl]
            } else {
                halo_all
            };
            if ilo > lo {
                let yj = arena.slice_mut::<S>(
                    a.bufs[2],
                    a.offs[2] + (j * ys + lo) as u32,
                    (ilo - lo) as u32,
                );
                shard::spmv_rows_ghost(m.csr(), lo, ilo, &region.ghost_lead, x_owned, halo, yj);
            }
            if hi > ihi {
                let yj = arena.slice_mut::<S>(
                    a.bufs[2],
                    a.offs[2] + (j * ys + ihi) as u32,
                    (hi - ihi) as u32,
                );
                shard::spmv_rows_ghost(m.csr(), ihi, hi, &region.ghost_trail, x_owned, halo, yj);
            }
        }
    }
}

fn exec_shard_residual_interior<S: BackendScalar>(
    _b: &dyn Backend,
    arena: &BufferArena,
    a: &OpArgs,
) {
    // SAFETY: arena contract; views match the declared spans.
    unsafe {
        let ids = arena.list(a.list[0], a.list[1]);
        let plan: &ShardPlan = arena.obj(ids[0]);
        let m: &GpuMatrix<S> = arena.obj(a.bufs[0]);
        let region = &plan.regions[a.n0 as usize];
        let (lo, hi, ilo, ihi) = (region.lo, region.hi, region.ilo, region.ihi);
        let x_owned = arena.slice::<S>(a.bufs[1], a.offs[1] + lo as u32, (hi - lo) as u32);
        let b_rows = arena.slice::<S>(a.bufs[3], a.offs[3] + ilo as u32, (ihi - ilo) as u32);
        let r = arena.slice_mut::<S>(a.bufs[2], a.offs[2] + ilo as u32, (ihi - ilo) as u32);
        shard::residual_rows_local(m.csr(), ilo, ihi, lo, b_rows, x_owned, r);
    }
}

fn exec_shard_residual_boundary<S: BackendScalar>(
    _b: &dyn Backend,
    arena: &BufferArena,
    a: &OpArgs,
) {
    // SAFETY: arena contract; views match the declared spans.
    unsafe {
        let ids = arena.list(a.list[0], a.list[1]);
        let plan: &ShardPlan = arena.obj(ids[0]);
        let m: &GpuMatrix<S> = arena.obj(a.bufs[0]);
        let region = &plan.regions[a.n0 as usize];
        let (lo, hi, ilo, ihi) = (region.lo, region.hi, region.ilo, region.ihi);
        let hl = region.halo_len();
        let x_owned = arena.slice::<S>(a.bufs[1], a.offs[1] + lo as u32, (hi - lo) as u32);
        let halo: &[S] = if hl > 0 {
            arena.slice::<S>(ids[1], 0, hl as u32)
        } else {
            &[]
        };
        if ilo > lo {
            let b_rows = arena.slice::<S>(a.bufs[3], a.offs[3] + lo as u32, (ilo - lo) as u32);
            let r = arena.slice_mut::<S>(a.bufs[2], a.offs[2] + lo as u32, (ilo - lo) as u32);
            shard::residual_rows_ghost(
                m.csr(),
                lo,
                ilo,
                &region.ghost_lead,
                b_rows,
                x_owned,
                halo,
                r,
            );
        }
        if hi > ihi {
            let b_rows = arena.slice::<S>(a.bufs[3], a.offs[3] + ihi as u32, (hi - ihi) as u32);
            let r = arena.slice_mut::<S>(a.bufs[2], a.offs[2] + ihi as u32, (hi - ihi) as u32);
            shard::residual_rows_ghost(
                m.csr(),
                ihi,
                hi,
                &region.ghost_trail,
                b_rows,
                x_owned,
                halo,
                r,
            );
        }
    }
}

fn exec_store_spmm<S: BackendScalar>(b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract; the write span covers all of y, so the
    // whole-object `&mut` aliases nothing.
    unsafe {
        let m: &GpuStore<S> = arena.obj(a.bufs[0]);
        let x: &MultiVec<S> = arena.obj(a.bufs[1]);
        let y: &mut MultiVec<S> = arena.obj_mut(a.bufs[2]);
        S::view(b).store_spmm(m.store(), x, a.n0 as usize, y);
    }
}

fn exec_block_gemv_t<S: BackendScalar>(b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract.
    unsafe {
        let vs: Vec<&BasisStore<S>> = arena
            .list(a.list[0], a.list[1])
            .iter()
            .map(|&id| arena.obj::<BasisStore<S>>(id))
            .collect();
        let w: &MultiVec<S> = arena.obj(a.bufs[0]);
        let h = arena.slice_mut::<S>(a.bufs[1], a.offs[1], a.lens[1]);
        S::view(b).basis_block_gemv_t(&vs, a.n0 as usize, w, h, a.order);
    }
}

fn exec_block_gemv_n_sub<S: BackendScalar>(b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract; the write span covers all of w.
    unsafe {
        let vs: Vec<&BasisStore<S>> = arena
            .list(a.list[0], a.list[1])
            .iter()
            .map(|&id| arena.obj::<BasisStore<S>>(id))
            .collect();
        let h = arena.slice::<S>(a.bufs[1], a.offs[1], a.lens[1]);
        let w: &mut MultiVec<S> = arena.obj_mut(a.bufs[0]);
        S::view(b).basis_block_gemv_n_sub(&vs, a.n0 as usize, h, w);
    }
}

fn exec_block_norm2<S: BackendScalar>(b: &dyn Backend, arena: &BufferArena, a: &OpArgs) {
    // SAFETY: arena contract.
    unsafe {
        let x: &MultiVec<S> = arena.obj(a.bufs[0]);
        let out = arena.slice_mut::<S>(a.bufs[1], a.offs[1], a.lens[1]);
        S::view(b).block_norm2(x, a.n0 as usize, out, a.order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpgmres_gpusim::DeviceModel;
    use mpgmres_la::coo::Coo;
    use mpgmres_la::vec_ops::ReductionOrder;

    fn small_matrix() -> GpuMatrix<f64> {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(0, 1, -1.0);
        coo.push(1, 0, -1.0);
        coo.push(1, 1, 2.0);
        coo.push(1, 2, -1.0);
        coo.push(2, 1, -1.0);
        coo.push(2, 2, 2.0);
        GpuMatrix::new(coo.into_csr())
    }

    #[test]
    fn recorded_chain_matches_eager_bitwise() {
        let a = small_matrix();
        let run = |streaming: bool| {
            let mut ctx =
                GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential);
            ctx.set_streaming(streaming);
            let x = [1.0, 2.0, 3.0];
            let mut y = [0.0f64; 3];
            let mut nrm = 0.0f64;
            {
                let mut st = ctx.stream();
                let ah = st.matrix(&a);
                let xh = st.slice(&x);
                let yh = st.slice_mut(&mut y);
                let nh = st.val_mut(&mut nrm);
                st.spmv(ah, xh, yh);
                st.norm2_into(yh.read(), nh);
                st.sync();
            }
            (y, nrm, ctx.elapsed(), ctx.profiler().critical_seconds())
        };
        let (y_r, n_r, t_r, c_r) = run(true);
        let (y_e, n_e, t_e, c_e) = run(false);
        assert_eq!(y_r, y_e);
        assert_eq!(n_r.to_bits(), n_e.to_bits());
        assert_eq!(t_r.to_bits(), t_e.to_bits());
        // A pure chain has critical == serial in both modes.
        assert_eq!(c_r.to_bits(), t_r.to_bits());
        assert_eq!(c_e.to_bits(), t_e.to_bits());
    }

    #[test]
    fn independent_recorded_ops_overlap_on_the_timeline() {
        let run_streaming = |streaming: bool| {
            let mut ctx =
                GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential);
            ctx.set_streaming(streaming);
            let x = vec![1.0f64; 64];
            let mut y1 = vec![2.0f64; 64];
            let mut y2 = vec![3.0f64; 64];
            {
                let mut st = ctx.stream();
                let xh = st.slice(&x);
                let y1h = st.slice_mut(&mut y1);
                let y2h = st.slice_mut(&mut y2);
                st.axpy(1.5, xh, y1h);
                st.axpy(-0.5, xh, y2h); // independent of the first
                st.sync();
            }
            (y1, y2, ctx.elapsed(), ctx.profiler().critical_seconds())
        };
        let (y1, y2, serial, critical) = run_streaming(true);
        let (e1, e2, serial_e, critical_e) = run_streaming(false);
        assert_eq!(y1, e1);
        assert_eq!(y2, e2);
        assert_eq!(serial.to_bits(), serial_e.to_bits());
        // Eager mode serializes; recorded mode overlaps the two axpys.
        assert_eq!(critical_e.to_bits(), serial_e.to_bits());
        assert!(critical < serial, "{critical} !< {serial}");
    }

    #[test]
    fn war_hazard_orders_recorded_ops() {
        // op1 reads w, op2 overwrites w: the DAG must execute op1 first
        // even though op2 carries no data from it (write-after-read).
        let mut ctx =
            GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential);
        let mut w = vec![3.0f64, 4.0];
        let mut h = vec![0.0f64; 2];
        {
            let mut st = ctx.stream();
            let wh = st.slice_mut(&mut w);
            let hh = st.slice_mut(&mut h);
            st.axpy(2.0, wh.read(), hh); // reads the original w
            st.scal(0.5, wh); // then clobbers it
            st.sync();
        }
        assert_eq!(h, vec![6.0, 8.0], "axpy must see w before the scal");
        assert_eq!(w, vec![1.5, 2.0]);
    }

    #[test]
    fn raw_and_waw_hazards_order_recorded_ops() {
        let a = small_matrix();
        let mut ctx =
            GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential);
        let x = [1.0f64, 1.0, 1.0];
        let mut y = [0.0f64; 3];
        let mut nrm = 0.0f64;
        {
            let mut st = ctx.stream();
            let ah = st.matrix(&a);
            let xh = st.slice(&x);
            let yh = st.slice_mut(&mut y);
            let nh = st.val_mut(&mut nrm);
            st.spmv(ah, xh, yh); // writes y
            st.scal(2.0, yh); // WAW + RAW on y
            st.norm2_into(yh.read(), nh); // RAW on y
            st.sync();
        }
        // A 1D Laplacian row sums: y = [1, 0, 1] then doubled.
        assert_eq!(y, [2.0, 0.0, 2.0]);
        assert_eq!(nrm, (8.0f64).sqrt());
    }

    /// Satellite: syncing an empty recorded region must be free — no
    /// graph setup, no submission, no profiler charge, no cache entry.
    #[test]
    fn empty_region_sync_is_free() {
        let mut ctx =
            GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential);
        // Charge something first so "unchanged" is a bitwise statement
        // about non-zero totals.
        let x = vec![1.0f64; 8];
        let mut y = vec![0.0f64; 8];
        ctx.axpy(1.0, &x, &mut y);
        let (total, critical) = (ctx.elapsed(), ctx.profiler().critical_seconds());
        let stats = ctx.stream_stats();
        {
            let st = ctx.stream();
            assert_eq!(st.recorded(), 0);
            st.sync();
        }
        {
            let st = ctx.stream_for(RegionKey::new(99, 8));
            st.sync();
        }
        assert_eq!(ctx.elapsed().to_bits(), total.to_bits());
        assert_eq!(
            ctx.profiler().critical_seconds().to_bits(),
            critical.to_bits()
        );
        assert_eq!(ctx.stream_stats(), stats, "empty regions touch no cache");
    }

    /// A keyed region records once, then replays: the second recording
    /// is a cache hit, allocates no graph nodes, and produces
    /// bit-identical results and charges.
    #[test]
    fn keyed_region_replays_from_cache() {
        let a = small_matrix();
        let mut ctx =
            GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential);
        let x = [1.0, 2.0, 3.0];
        let key = RegionKey::new(region::GMRES_CGS, a.n()).with_ncols(1);
        let run = |ctx: &mut GpuContext| {
            let mut y = [0.0f64; 3];
            let mut nrm = 0.0f64;
            ctx.reset_profile();
            {
                let mut st = ctx.stream_for(key);
                let ah = st.matrix(&a);
                let xh = st.slice(&x);
                let yh = st.slice_mut(&mut y);
                let nh = st.val_mut(&mut nrm);
                st.spmv(ah, xh, yh);
                st.norm2_into(yh.read(), nh);
                st.sync();
            }
            (y, nrm, ctx.elapsed())
        };
        let s0 = ctx.stream_stats();
        let (y1, n1, t1) = run(&mut ctx);
        let s1 = ctx.stream_stats();
        assert_eq!(s1.misses, s0.misses + 1);
        assert_eq!(s1.hits, s0.hits);
        let (y2, n2, t2) = run(&mut ctx);
        let s2 = ctx.stream_stats();
        assert_eq!(s2.hits, s1.hits + 1, "second recording must replay");
        assert_eq!(s2.misses, s1.misses);
        assert_eq!(
            s2.nodes_allocated, s1.nodes_allocated,
            "replay allocates no graph nodes"
        );
        assert_eq!(y1, y2);
        assert_eq!(n1.to_bits(), n2.to_bits());
        assert_eq!(t1.to_bits(), t2.to_bits(), "replayed charges identical");
    }

    /// A shape that deviates from the cached graph under the same key
    /// falls back to a fresh derivation and replaces the entry —
    /// results stay correct, the region counts as a miss.
    #[test]
    fn replay_shape_mismatch_falls_back_and_replaces() {
        let mut ctx =
            GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential);
        let key = RegionKey::new(7, 16);
        let x = vec![1.0f64; 16];
        // First shape: one axpy.
        let mut y = vec![0.0f64; 16];
        {
            let mut st = ctx.stream_for(key);
            let xh = st.slice(&x);
            let yh = st.slice_mut(&mut y);
            st.axpy(1.0, xh, yh);
            st.sync();
        }
        // Same key, different shape: a different op first (scal) to hit
        // the mid-sequence mismatch, then one more op than cached.
        let mut z = vec![2.0f64; 16];
        {
            let mut st = ctx.stream_for(key);
            let xh = st.slice(&x);
            let zh = st.slice_mut(&mut z);
            st.scal(0.5, zh);
            st.axpy(3.0, xh, zh);
            st.sync();
        }
        assert_eq!(z, vec![4.0f64; 16], "0.5*2 + 3*1");
        let s = ctx.stream_stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 2);
        // Shorter-than-cached sequences also fall back (prefix replay).
        let mut w = vec![1.0f64; 16];
        {
            let mut st = ctx.stream_for(key);
            let wh = st.slice_mut(&mut w);
            st.scal(3.0, wh);
            st.sync();
        }
        assert_eq!(w, vec![3.0f64; 16]);
        assert_eq!(ctx.stream_stats().misses, 3);
        // And so do sequences that EXTEND the cached one (the cached
        // graph is now the single scal; match it, then keep recording).
        let mut v = vec![1.0f64; 16];
        {
            let mut st = ctx.stream_for(key);
            let xh = st.slice(&x);
            let vh = st.slice_mut(&mut v);
            st.scal(2.0, vh);
            st.axpy(1.0, xh, vh);
            st.sync();
        }
        assert_eq!(v, vec![3.0f64; 16], "2*1 + 1");
        assert_eq!(ctx.stream_stats().misses, 4);
        assert_eq!(ctx.stream_stats().hits, 0);
    }

    /// The pipelined building blocks — a deferred host node, a recorded
    /// fused lane normalize-and-store, and a recorded lane copy — are
    /// bit-identical eager vs recorded (values AND charges), replay
    /// from cache when keyed, and the host node's latency hides under
    /// the independent device work on the overlap timeline.
    #[test]
    fn host_nodes_and_lane_ops_record_replay_and_overlap() {
        let run = |streaming: bool| {
            let mut ctx =
                GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential);
            ctx.set_streaming(streaming);
            let alphas = [2.0f64, -1.0];
            let xs = [1.0f64, 2.0, 3.0, 4.0]; // two source lanes of length 2
            let mut ys = [0.0f64; 4];
            let mut zs = [0.0f64; 2];
            let mut token = 0.0f64;
            let mut criticals = Vec::new();
            for _ in 0..2 {
                let (y0, y1) = ys.split_at_mut(2);
                let mut st = ctx.stream_for(RegionKey::new(42, 2));
                let ah = st.slice(&alphas);
                let xh = st.slice(&xs);
                let y0h = st.slice_mut(y0);
                let y1h = st.slice_mut(y1);
                let zh = st.slice_mut(&mut zs);
                let th = st.val_mut(&mut token);
                // Deferred host step reading a lagged span the device
                // ops below never touch: independent, so it overlaps.
                st.host_givens(3, &[xh.sub(0, 2)], th);
                st.lane_scal_copy(ah, &[xh.sub(0, 2), xh.sub(2, 2)], &[y0h, y1h]);
                st.lane_copy(&[y0h.read()], &[zh]);
                st.sync();
                criticals.push(ctx.profiler().critical_seconds());
            }
            (ys, zs, ctx.elapsed(), criticals, ctx.stream_stats())
        };
        let (ys_r, zs_r, t_r, crit_r, stats) = run(true);
        let (ys_e, zs_e, t_e, _, _) = run(false);
        assert_eq!(ys_r, [2.0, 4.0, -3.0, -4.0]);
        assert_eq!(zs_r, [2.0, 4.0]);
        assert_eq!(ys_r, ys_e);
        assert_eq!(zs_r, zs_e);
        assert_eq!(t_r.to_bits(), t_e.to_bits(), "charges identical");
        // Second pass replayed the keyed region (host node included).
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        // The host node overlapped the lane kernels on the recorded
        // timeline: critical < serial after the first region (the two
        // regions charge identical sums, so serial-after-first is
        // exactly half the final total).
        assert!(
            crit_r[0] < t_r / 2.0,
            "host node must hide: {} !< {}",
            crit_r[0],
            t_r / 2.0
        );
    }

    /// The initial-residual shape of `BlockGmres`: independent
    /// per-column writes through a block's data pointer followed by a
    /// whole-block fused norm through its object pointer — the mixed
    /// access pattern the arena's dual-pointer registration exists for.
    #[test]
    fn block_columns_and_fused_norm_share_one_registration() {
        let a = small_matrix();
        let n = a.n();
        let k = 2;
        let run = |streaming: bool| {
            let mut ctx =
                GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential);
            ctx.set_streaming(streaming);
            let b = MultiVec::from_columns(&[&[1.0f64, 0.0, 1.0][..], &[0.0f64, 2.0, 0.0][..]]);
            let x = MultiVec::<f64>::zeros(n, k);
            let mut r = MultiVec::<f64>::zeros(n, k);
            let mut norms = vec![0.0f64; k];
            {
                let mut st = ctx.stream();
                let ah = st.matrix(&a);
                let bh = st.block(&b);
                let xh = st.block(&x);
                let rh = st.block_mut(&mut r);
                let nh = st.slice_mut(&mut norms);
                for l in 0..k {
                    st.residual_as(KernelClass::SpMV, ah, bh.col(l), xh.col(l), rh.col_mut(l));
                }
                st.block_norm2_into(rh.read(), k, nh);
                st.sync();
            }
            (r, norms, ctx.elapsed(), ctx.profiler().critical_seconds())
        };
        let (r_r, n_r, t_r, c_r) = run(true);
        let (r_e, n_e, t_e, _) = run(false);
        assert_eq!(r_r.data(), r_e.data());
        for (a, b) in n_r.iter().zip(&n_e) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(t_r.to_bits(), t_e.to_bits());
        // The two residual columns overlap on the recorded timeline.
        assert!(c_r < t_r, "independent columns must overlap: {c_r} {t_r}");
    }

    // ----- sharded-backend recording ---------------------------------

    fn laplacian(n: usize) -> GpuMatrix<f64> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        GpuMatrix::new(coo.into_csr())
    }

    /// One keyed spmv + residual region under every shard count must be
    /// bit-identical to the reference backend; at >= 2 shards the
    /// per-shard pieces (and the halo exchange behind the interior
    /// kernels) must overlap on the timeline, and the Halo class must
    /// carry the interconnect traffic.
    #[test]
    fn sharded_region_matches_reference_and_overlaps() {
        use mpgmres_backend::BackendKind;
        let n = 64;
        let a = laplacian(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let run = |kind: BackendKind, streaming: bool| {
            let mut ctx = GpuContext::with_backend_kind(
                DeviceModel::v100_belos(),
                ReductionOrder::Sequential,
                kind,
            );
            ctx.set_streaming(streaming);
            let mut y = vec![0.0f64; n];
            let mut r = vec![0.0f64; n];
            {
                let mut st = ctx.stream_for(RegionKey::new(90, n));
                let ah = st.matrix(&a);
                let xh = st.slice(&x);
                let bh = st.slice(&b);
                let yh = st.slice_mut(&mut y);
                let rh = st.slice_mut(&mut r);
                st.spmv(ah, xh, yh);
                st.residual_as(KernelClass::ResidualHi, ah, bh, yh.read(), rh);
                st.sync();
            }
            let halo = ctx.profiler().class_stats(KernelClass::Halo);
            (y, r, ctx.elapsed(), ctx.profiler().critical_seconds(), halo)
        };
        let (y_ref, r_ref, _, _, halo_ref) = run(BackendKind::Reference, true);
        assert_eq!(halo_ref.bytes, 0, "reference backend must not touch Halo");
        for shards in [1usize, 2, 3, 4] {
            let (y_s, r_s, serial, critical, halo) = run(BackendKind::Sharded { shards }, true);
            for (p, q) in y_s.iter().zip(&y_ref) {
                assert_eq!(p.to_bits(), q.to_bits(), "spmv parity at {shards} shards");
            }
            for (p, q) in r_s.iter().zip(&r_ref) {
                assert_eq!(
                    p.to_bits(),
                    q.to_bits(),
                    "residual parity at {shards} shards"
                );
            }
            if shards >= 2 {
                assert!(
                    critical < serial,
                    "{shards} shards must overlap: {critical} !< {serial}"
                );
                assert!(halo.bytes > 0, "halo traffic must be charged");
            }
        }
        // Eager and recorded sharded runs charge the same decomposed
        // piece sequence — serial totals agree bit-for-bit.
        let (y_rec, _, t_rec, _, halo_rec) = run(BackendKind::Sharded { shards: 3 }, true);
        let (y_eag, _, t_eag, _, halo_eag) = run(BackendKind::Sharded { shards: 3 }, false);
        assert_eq!(y_rec, y_eag);
        assert_eq!(t_rec.to_bits(), t_eag.to_bits());
        assert_eq!(halo_rec.bytes, halo_eag.bytes);
    }

    /// A warm sharded region replays its cached graph: one hit, zero
    /// new nodes, and the pooled halo scratch allocates nothing new.
    #[test]
    fn sharded_region_replays_with_zero_node_allocation() {
        use mpgmres_backend::BackendKind;
        let n = 48;
        let a = laplacian(n);
        let x = vec![1.0f64; n];
        let mut ctx = GpuContext::with_backend_kind(
            DeviceModel::v100_belos(),
            ReductionOrder::Sequential,
            BackendKind::Sharded { shards: 3 },
        );
        let mut y = vec![0.0f64; n];
        for pass in 0..3 {
            let mut st = ctx.stream_for(RegionKey::new(91, n));
            let ah = st.matrix(&a);
            let xh = st.slice(&x);
            let yh = st.slice_mut(&mut y);
            st.spmv(ah, xh, yh);
            st.sync();
            if pass == 0 {
                assert_eq!(ctx.stream_stats().misses, 1);
            }
        }
        let stats = ctx.stream_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        // All nodes were allocated by the single cold recording.
        let cold_nodes = stats.nodes_allocated;
        {
            let mut st = ctx.stream_for(RegionKey::new(91, n));
            let ah = st.matrix(&a);
            let xh = st.slice(&x);
            let yh = st.slice_mut(&mut y);
            st.spmv(ah, xh, yh);
            st.sync();
        }
        assert_eq!(ctx.stream_stats().nodes_allocated, cold_nodes);
        assert_eq!(ctx.stream_stats().hits, 3);
    }

    /// The same region shape under different shard counts must record
    /// distinct cached graphs (the key is salted with the backend's
    /// shard count), never replay across counts.
    #[test]
    fn shard_count_salts_the_region_key() {
        use mpgmres_backend::BackendKind;
        let key = RegionKey::new(92, 32);
        assert_eq!(key.shards, 0);
        assert_eq!(key.with_shards(3).shards, 3);
        assert_eq!(key.with_shards(4096).shards, u8::MAX);
        // Distinct keys hash/compare distinct.
        assert_ne!(key, key.with_shards(2));
        // And the context salts automatically: two backends, same
        // nominal key, two cache entries.
        let n = 32;
        let a = laplacian(n);
        let x = vec![1.0f64; n];
        for (kind, expect_len) in [
            (BackendKind::Sharded { shards: 2 }, 1usize),
            (BackendKind::Sharded { shards: 3 }, 1),
        ] {
            let mut ctx = GpuContext::with_backend_kind(
                DeviceModel::v100_belos(),
                ReductionOrder::Sequential,
                kind,
            );
            let mut y = vec![0.0f64; n];
            {
                let mut st = ctx.stream_for(key);
                let ah = st.matrix(&a);
                let xh = st.slice(&x);
                let yh = st.slice_mut(&mut y);
                st.spmv(ah, xh, yh);
                st.sync();
            }
            assert_eq!(ctx.stream_cache_len(), expect_len);
            assert_eq!(ctx.stream_stats().misses, 1);
        }
    }

    /// Sharded SpMM: per-column per-shard spans, bit-identical to the
    /// reference whole-block op, with halo traffic scaled by the block
    /// width.
    #[test]
    fn sharded_spmm_matches_reference_bitwise() {
        use mpgmres_backend::BackendKind;
        let n = 40;
        let k = 3;
        let a = laplacian(n);
        let cols: Vec<Vec<f64>> = (0..k)
            .map(|c| (0..n).map(|i| ((i + c) as f64 * 0.21).cos()).collect())
            .collect();
        let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let run = |kind: BackendKind| {
            let mut ctx = GpuContext::with_backend_kind(
                DeviceModel::v100_belos(),
                ReductionOrder::Sequential,
                kind,
            );
            let x = MultiVec::from_columns(&col_refs);
            let mut y = MultiVec::<f64>::zeros(n, k);
            {
                let mut st = ctx.stream_for(RegionKey::new(93, n).with_k(k));
                let ah = st.matrix(&a);
                let xh = st.block(&x);
                let yh = st.block_mut(&mut y);
                st.spmm(ah, xh, k, yh);
                st.sync();
            }
            let halo = ctx.profiler().class_stats(KernelClass::Halo);
            (y, halo)
        };
        let (y_ref, _) = run(BackendKind::Reference);
        let (y_one, halo_one) = run(BackendKind::Sharded { shards: 2 });
        assert_eq!(y_ref.data(), y_one.data());
        let (y_more, halo_more) = run(BackendKind::Sharded { shards: 4 });
        assert_eq!(y_ref.data(), y_more.data());
        // Block width multiplies the exchanged bytes; more shards cut
        // more boundaries.
        assert!(halo_one.bytes > 0);
        assert!(halo_more.bytes > halo_one.bytes);
    }
}
