//! The command recorder: kernel calls enqueue typed ops, `sync` builds
//! and executes the dependency DAG.
//!
//! [`Stream`] is the recorded counterpart of [`GpuContext`]'s eager
//! kernel methods. Each record call validates shapes and charges the
//! profiler exactly like its eager twin (the two share the same cost
//! specs, so the per-class accounting of a recorded run is bit-identical
//! to an eager run of the same call sequence), but instead of executing
//! immediately it pushes an [`OpNode`] carrying the call's read/write
//! buffer spans. Dependencies are derived from span overlap as ops are
//! recorded; at [`Stream::sync`] (or drop) the DAG's wavefronts of
//! mutually independent ready ops go to
//! [`Backend::execute_batch`](mpgmres_backend::Backend), which may run
//! them concurrently.
//!
//! Two things distinguish a recorded region from eager execution, and
//! bit-identical results are *not* one of them (see the determinism
//! notes in [`mpgmres_backend::stream`]):
//!
//! - independent ops may execute concurrently on a parallel backend;
//! - the profiler charges each op on the overlap-aware timeline at the
//!   finish time of its dependencies, so the report's critical path can
//!   drop below the serial sum. For a chain-shaped region the two
//!   timelines agree bit-for-bit.
//!
//! # Recording contract
//!
//! A recorded op holds raw views of the buffers passed to the record
//! call, exactly like a device stream holds buffer handles across an
//! asynchronous launch — the borrow checker cannot see them, which is
//! why every record method is `unsafe fn`. The caller promises that
//! between the record call and `sync`:
//!
//! - every recorded buffer (and matrix/basis) stays alive, and
//! - the host neither reads nor writes it.
//!
//! `sync` runs automatically when the stream drops, and the stream
//! mutably borrows the context, so in the usual pattern — record a
//! region over locals that outlive the stream, sync, read results — a
//! single `// SAFETY` comment per region discharges the obligation.
//! Reading a result buffer (e.g. a [`Stream::norm2_into`] slot) before
//! `sync` yields unspecified *values*; letting a recorded buffer drop
//! before `sync` is a use-after-free, which is exactly what the
//! `unsafe` marks.
//!
//! With [`GpuContext::set_streaming`] turned off, every record call
//! executes eagerly in place (record + immediate sync), which is the
//! reference behavior the parity suite compares against.

use mpgmres_backend::stream::{
    ExecOp, OpGraph, OpNode, RawMut, RawRef, RawSlice, RawSliceMut, Span,
};
use mpgmres_backend::{contracts, BackendScalar};
use mpgmres_gpusim::KernelClass;
use mpgmres_la::csr::Csr;
use mpgmres_la::multivec::MultiVec;
use mpgmres_la::multivector::MultiVector;

use crate::context::{GpuContext, GpuMatrix};

/// A recording session on a [`GpuContext`]. See the module docs for the
/// recording contract; obtain one with [`GpuContext::stream`].
pub struct Stream<'c> {
    ctx: &'c mut GpuContext,
    graph: OpGraph,
    execs: Vec<Option<ExecOp>>,
    finish: Vec<f64>,
    base: f64,
    eager: bool,
}

/// Dependency span of the leading `ncols` columns of a Krylov basis
/// (they are one contiguous run of the backing allocation).
fn basis_span<S: mpgmres_scalar::Scalar>(v: &MultiVector<S>, ncols: usize) -> Span {
    debug_assert!(ncols >= 1);
    Span::of(v.col(0)).hull(Span::of(v.col(ncols - 1)))
}

/// Dependency span of the leading `k` columns of a multi-RHS block.
fn block_span<S: mpgmres_scalar::Scalar>(x: &MultiVec<S>, k: usize) -> Span {
    Span::of(&x.data()[..k * x.n()])
}

impl<'c> Stream<'c> {
    pub(crate) fn begin(ctx: &'c mut GpuContext) -> Self {
        let base = ctx.profiler().critical_seconds();
        let eager = !ctx.streaming();
        Stream {
            ctx,
            graph: OpGraph::new(),
            execs: Vec::new(),
            finish: Vec::new(),
            base,
            eager,
        }
    }

    /// Ops recorded so far (0 in eager mode — everything already ran).
    pub fn recorded(&self) -> usize {
        self.graph.len()
    }

    fn record(&mut self, node: OpNode, charge: Option<(KernelClass, f64, usize)>, exec: ExecOp) {
        let idx = self.graph.push(node);
        let mut ready = self.base;
        for &p in self.graph.preds(idx) {
            if self.finish[p] > ready {
                ready = self.finish[p];
            }
        }
        let fin = match charge {
            Some((class, t, bytes)) => self.ctx.profiler_mut().charge_ready(class, t, bytes, ready),
            None => ready,
        };
        self.finish.push(fin);
        self.execs.push(Some(exec));
    }

    /// Submit everything recorded and wait for completion. Dropping the
    /// stream does the same; `sync` just makes the barrier explicit at
    /// the point where the host reads results.
    pub fn sync(self) {}

    // ----- recordable kernels ----------------------------------------

    /// Record `y = A x` (charged as a solver SpMV).
    ///
    /// # Safety
    /// The stream contract (module docs): every buffer recorded here
    /// must outlive the stream's sync/drop, and the host must not
    /// read or write it until then.
    pub unsafe fn spmv<S: BackendScalar>(&mut self, a: &GpuMatrix<S>, x: &[S], y: &mut [S]) {
        if self.eager {
            self.ctx.spmv(a, x, y);
            return;
        }
        contracts::spmv(a.csr(), x, y);
        let (t, bytes) = self.ctx.spmv_spec::<S>(a);
        let node = OpNode::new("spmv", vec![Span::of(x)], vec![Span::of(y)]);
        let (ar, xr, yw): (RawRef<Csr<S>>, _, _) =
            (RawRef::new(a.csr()), RawSlice::new(x), RawSliceMut::new(y));
        self.record(
            node,
            Some((KernelClass::SpMV, t, bytes)),
            Box::new(move |b| {
                // SAFETY: stream contract (module docs).
                unsafe { S::view(b).spmv(ar.get(), xr.get(), yw.get()) }
            }),
        );
    }

    /// Record the fused residual `r = b - A x`, charged to `class`.
    ///
    /// # Safety
    /// The stream contract (module docs): every buffer recorded here
    /// must outlive the stream's sync/drop, and the host must not
    /// read or write it until then.
    pub unsafe fn residual_as<S: BackendScalar>(
        &mut self,
        class: KernelClass,
        a: &GpuMatrix<S>,
        b: &[S],
        x: &[S],
        r: &mut [S],
    ) {
        if self.eager {
            self.ctx.residual_as(class, a, b, x, r);
            return;
        }
        contracts::residual(a.csr(), b, x, r);
        let (t, bytes) = self.ctx.residual_spec::<S>(a);
        let node = OpNode::new(
            "residual",
            vec![Span::of(b), Span::of(x)],
            vec![Span::of(r)],
        );
        let (ar, br, xr, rw): (RawRef<Csr<S>>, _, _, _) = (
            RawRef::new(a.csr()),
            RawSlice::new(b),
            RawSlice::new(x),
            RawSliceMut::new(r),
        );
        self.record(
            node,
            Some((class, t, bytes)),
            Box::new(move |be| {
                // SAFETY: stream contract.
                unsafe { S::view(be).residual(ar.get(), br.get(), xr.get(), rw.get()) }
            }),
        );
    }

    /// Record `h = V^T w` over the first `ncols` basis columns.
    ///
    /// # Safety
    /// The stream contract (module docs): every buffer recorded here
    /// must outlive the stream's sync/drop, and the host must not
    /// read or write it until then.
    pub unsafe fn gemv_t<S: BackendScalar>(
        &mut self,
        v: &MultiVector<S>,
        ncols: usize,
        w: &[S],
        h: &mut [S],
    ) {
        if self.eager {
            self.ctx.gemv_t(v, ncols, w, h);
            return;
        }
        contracts::gemv(v, ncols, w, h);
        let (t, bytes) = self.ctx.gemv_t_spec::<S>(v.n(), ncols);
        let node = OpNode::new(
            "gemv_t",
            vec![basis_span(v, ncols), Span::of(w)],
            vec![Span::of(&h[..ncols])],
        );
        let order = self.ctx.reduction();
        let (vr, wr, hw) = (RawRef::new(v), RawSlice::new(w), RawSliceMut::new(h));
        self.record(
            node,
            Some((KernelClass::GemvT, t, bytes)),
            Box::new(move |b| {
                // SAFETY: stream contract.
                unsafe { S::view(b).gemv_t(vr.get(), ncols, wr.get(), hw.get(), order) }
            }),
        );
    }

    /// Record `w -= V h` (GEMV No-Trans).
    ///
    /// # Safety
    /// The stream contract (module docs): every buffer recorded here
    /// must outlive the stream's sync/drop, and the host must not
    /// read or write it until then.
    pub unsafe fn gemv_n_sub<S: BackendScalar>(
        &mut self,
        v: &MultiVector<S>,
        ncols: usize,
        h: &[S],
        w: &mut [S],
    ) {
        if self.eager {
            self.ctx.gemv_n_sub(v, ncols, h, w);
            return;
        }
        contracts::gemv(v, ncols, w, h);
        let (t, bytes) = self.ctx.gemv_n_spec::<S>(v.n(), ncols);
        let node = OpNode::new(
            "gemv_n_sub",
            vec![basis_span(v, ncols), Span::of(&h[..ncols])],
            vec![Span::of(w)],
        );
        let (vr, hr, ww) = (RawRef::new(v), RawSlice::new(h), RawSliceMut::new(w));
        self.record(
            node,
            Some((KernelClass::GemvN, t, bytes)),
            Box::new(move |b| {
                // SAFETY: stream contract.
                unsafe { S::view(b).gemv_n_sub(vr.get(), ncols, hr.get(), ww.get()) }
            }),
        );
    }

    /// Record `y += V h` (GEMV No-Trans; the solution update).
    ///
    /// # Safety
    /// The stream contract (module docs): every buffer recorded here
    /// must outlive the stream's sync/drop, and the host must not
    /// read or write it until then.
    pub unsafe fn gemv_n_add<S: BackendScalar>(
        &mut self,
        v: &MultiVector<S>,
        ncols: usize,
        h: &[S],
        y: &mut [S],
    ) {
        if self.eager {
            self.ctx.gemv_n_add(v, ncols, h, y);
            return;
        }
        contracts::gemv(v, ncols, y, h);
        let (t, bytes) = self.ctx.gemv_n_spec::<S>(v.n(), ncols);
        let node = OpNode::new(
            "gemv_n_add",
            vec![basis_span(v, ncols), Span::of(&h[..ncols])],
            vec![Span::of(y)],
        );
        let (vr, hr, yw) = (RawRef::new(v), RawSlice::new(h), RawSliceMut::new(y));
        self.record(
            node,
            Some((KernelClass::GemvN, t, bytes)),
            Box::new(move |b| {
                // SAFETY: stream contract.
                unsafe { S::view(b).gemv_n_add(vr.get(), ncols, hr.get(), yw.get()) }
            }),
        );
    }

    /// Record `y += alpha x`.
    ///
    /// # Safety
    /// The stream contract (module docs): every buffer recorded here
    /// must outlive the stream's sync/drop, and the host must not
    /// read or write it until then.
    pub unsafe fn axpy<S: BackendScalar>(&mut self, alpha: S, x: &[S], y: &mut [S]) {
        if self.eager {
            self.ctx.axpy(alpha, x, y);
            return;
        }
        contracts::same_len("axpy", x, y);
        let (t, bytes) = self.ctx.axpy_spec::<S>(x.len());
        let node = OpNode::new("axpy", vec![Span::of(x)], vec![Span::of(y)]);
        let (xr, yw) = (RawSlice::new(x), RawSliceMut::new(y));
        self.record(
            node,
            Some((KernelClass::Axpy, t, bytes)),
            Box::new(move |b| {
                // SAFETY: stream contract.
                unsafe { S::view(b).axpy(alpha, xr.get(), yw.get()) }
            }),
        );
    }

    /// Record `x *= alpha`.
    ///
    /// # Safety
    /// The stream contract (module docs): every buffer recorded here
    /// must outlive the stream's sync/drop, and the host must not
    /// read or write it until then.
    pub unsafe fn scal<S: BackendScalar>(&mut self, alpha: S, x: &mut [S]) {
        if self.eager {
            self.ctx.scal(alpha, x);
            return;
        }
        let (t, bytes) = self.ctx.scal_spec::<S>(x.len());
        let node = OpNode::new("scal", Vec::new(), vec![Span::of(x)]);
        let xw = RawSliceMut::new(x);
        self.record(
            node,
            Some((KernelClass::Scal, t, bytes)),
            Box::new(move |b| {
                // SAFETY: stream contract.
                unsafe { S::view(b).scal(alpha, xw.get()) }
            }),
        );
    }

    /// Record a device-resident copy (uncharged, like
    /// [`GpuContext::copy`]; still a DAG node so dependent ops order).
    ///
    /// # Safety
    /// The stream contract (module docs): every buffer recorded here
    /// must outlive the stream's sync/drop, and the host must not
    /// read or write it until then.
    pub unsafe fn copy<S: BackendScalar>(&mut self, src: &[S], dst: &mut [S]) {
        if self.eager {
            self.ctx.copy(src, dst);
            return;
        }
        contracts::same_len("copy", src, dst);
        let node = OpNode::new("copy", vec![Span::of(src)], vec![Span::of(dst)]);
        let (sr, dw) = (RawSlice::new(src), RawSliceMut::new(dst));
        self.record(
            node,
            None,
            Box::new(move |b| {
                // SAFETY: stream contract.
                unsafe { S::view(b).copy(sr.get(), dw.get()) }
            }),
        );
    }

    /// Record a Euclidean norm whose result lands in `*out` after sync
    /// (the recordable form of [`GpuContext::norm2`]).
    ///
    /// # Safety
    /// The stream contract (module docs): every buffer recorded here
    /// must outlive the stream's sync/drop, and the host must not
    /// read or write it until then.
    pub unsafe fn norm2_into<S: BackendScalar>(&mut self, x: &[S], out: &mut S) {
        if self.eager {
            *out = self.ctx.norm2(x);
            return;
        }
        let (t, bytes) = self.ctx.norm_spec::<S>(x.len());
        let node = OpNode::new("norm2", vec![Span::of(x)], vec![Span::of_value(out)]);
        let order = self.ctx.reduction();
        let (xr, ow) = (RawSlice::new(x), RawMut::new(out));
        self.record(
            node,
            Some((KernelClass::Norm, t, bytes)),
            Box::new(move |b| {
                // SAFETY: stream contract.
                unsafe { *ow.get() = S::view(b).norm2(xr.get(), order) }
            }),
        );
    }

    // ----- batched multi-RHS kernels ---------------------------------

    /// Record the batched SpMM `Y[:, ..k] = A X[:, ..k]`.
    ///
    /// # Safety
    /// The stream contract (module docs): every buffer recorded here
    /// must outlive the stream's sync/drop, and the host must not
    /// read or write it until then.
    pub unsafe fn spmm<S: BackendScalar>(
        &mut self,
        a: &GpuMatrix<S>,
        x: &MultiVec<S>,
        k: usize,
        y: &mut MultiVec<S>,
    ) {
        if self.eager {
            self.ctx.spmm(a, x, k, y);
            return;
        }
        contracts::spmm(a.csr(), x, k, y);
        let (t, bytes) = self.ctx.spmm_spec::<S>(a, k);
        let node = OpNode::new("spmm", vec![block_span(x, k)], vec![block_span(y, k)]);
        let ar: RawRef<Csr<S>> = RawRef::new(a.csr());
        let (xr, yw) = (RawRef::new(x), RawMut::new(y));
        self.record(
            node,
            Some((KernelClass::SpMV, t, bytes)),
            Box::new(move |b| {
                // SAFETY: stream contract.
                unsafe { S::view(b).spmm(ar.get(), xr.get(), k, yw.get()) }
            }),
        );
    }

    /// Record the batched GEMV-Trans over one basis per block column.
    ///
    /// # Safety
    /// The stream contract (module docs): every buffer recorded here
    /// must outlive the stream's sync/drop, and the host must not
    /// read or write it until then.
    pub unsafe fn block_gemv_t<S: BackendScalar>(
        &mut self,
        vs: &[&MultiVector<S>],
        ncols: usize,
        w: &MultiVec<S>,
        h: &mut [S],
    ) {
        if self.eager {
            self.ctx.block_gemv_t(vs, ncols, w, h);
            return;
        }
        contracts::block_gemv(vs, ncols, w, h);
        let k = vs.len();
        let (t, bytes) = self.ctx.gemm_t_spec::<S>(w.n(), ncols, k);
        let mut reads: Vec<Span> = vs.iter().map(|v| basis_span(v, ncols)).collect();
        reads.push(block_span(w, k));
        let node = OpNode::new("block_gemv_t", reads, vec![Span::of(&h[..k * ncols])]);
        let order = self.ctx.reduction();
        let vrs: Vec<RawRef<MultiVector<S>>> = vs.iter().map(|v| RawRef::new(*v)).collect();
        let (wr, hw): (RawRef<MultiVec<S>>, _) = (RawRef::new(w), RawSliceMut::new(h));
        self.record(
            node,
            Some((KernelClass::GemvT, t, bytes)),
            Box::new(move |b| {
                // SAFETY: stream contract.
                unsafe {
                    let vs: Vec<&MultiVector<S>> = vrs.iter().map(|v| v.get()).collect();
                    S::view(b).block_gemv_t(&vs, ncols, wr.get(), hw.get(), order)
                }
            }),
        );
    }

    /// Record the batched GEMV-NoTrans `w_c -= V_c h_c`.
    ///
    /// # Safety
    /// The stream contract (module docs): every buffer recorded here
    /// must outlive the stream's sync/drop, and the host must not
    /// read or write it until then.
    pub unsafe fn block_gemv_n_sub<S: BackendScalar>(
        &mut self,
        vs: &[&MultiVector<S>],
        ncols: usize,
        h: &[S],
        w: &mut MultiVec<S>,
    ) {
        if self.eager {
            self.ctx.block_gemv_n_sub(vs, ncols, h, w);
            return;
        }
        contracts::block_gemv(vs, ncols, w, h);
        let k = vs.len();
        let (t, bytes) = self.ctx.gemm_n_spec::<S>(w.n(), ncols, k);
        let mut reads: Vec<Span> = vs.iter().map(|v| basis_span(v, ncols)).collect();
        reads.push(Span::of(&h[..k * ncols]));
        let node = OpNode::new("block_gemv_n_sub", reads, vec![block_span(w, k)]);
        let vrs: Vec<RawRef<MultiVector<S>>> = vs.iter().map(|v| RawRef::new(*v)).collect();
        let (hr, ww): (_, RawMut<MultiVec<S>>) = (RawSlice::new(h), RawMut::new(w));
        self.record(
            node,
            Some((KernelClass::GemvN, t, bytes)),
            Box::new(move |b| {
                // SAFETY: stream contract.
                unsafe {
                    let vs: Vec<&MultiVector<S>> = vrs.iter().map(|v| v.get()).collect();
                    S::view(b).block_gemv_n_sub(&vs, ncols, hr.get(), ww.get())
                }
            }),
        );
    }

    /// Record fused column norms whose results land in `out[..k]` after
    /// sync.
    ///
    /// # Safety
    /// The stream contract (module docs): every buffer recorded here
    /// must outlive the stream's sync/drop, and the host must not
    /// read or write it until then.
    pub unsafe fn block_norm2_into<S: BackendScalar>(
        &mut self,
        x: &MultiVec<S>,
        k: usize,
        out: &mut [S],
    ) {
        if self.eager {
            self.ctx.block_norm2(x, k, out);
            return;
        }
        contracts::block_scalars("block_norm2", x, k, out);
        let (t, bytes) = self.ctx.block_norm_spec::<S>(x.n(), k);
        let node = OpNode::new(
            "block_norm2",
            vec![block_span(x, k)],
            vec![Span::of(&out[..k])],
        );
        let order = self.ctx.reduction();
        let (xr, ow): (RawRef<MultiVec<S>>, _) = (RawRef::new(x), RawSliceMut::new(out));
        self.record(
            node,
            Some((KernelClass::Norm, t, bytes)),
            Box::new(move |b| {
                // SAFETY: stream contract.
                unsafe { S::view(b).block_norm2(xr.get(), k, ow.get(), order) }
            }),
        );
    }
}

impl Drop for Stream<'_> {
    fn drop(&mut self) {
        if self.graph.is_empty() {
            return;
        }
        // A record call's contract assert can fire mid-region; running
        // the half-recorded graph while unwinding would risk a
        // double-panic abort that masks the original message. Pending
        // ops are simply abandoned in that case.
        if std::thread::panicking() {
            return;
        }
        let execs = std::mem::take(&mut self.execs);
        mpgmres_backend::stream::submit(&self.graph, execs, self.ctx.backend());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpgmres_gpusim::DeviceModel;
    use mpgmres_la::coo::Coo;
    use mpgmres_la::vec_ops::ReductionOrder;

    fn small_matrix() -> GpuMatrix<f64> {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(0, 1, -1.0);
        coo.push(1, 0, -1.0);
        coo.push(1, 1, 2.0);
        coo.push(1, 2, -1.0);
        coo.push(2, 1, -1.0);
        coo.push(2, 2, 2.0);
        GpuMatrix::new(coo.into_csr())
    }

    #[test]
    fn recorded_chain_matches_eager_bitwise() {
        let a = small_matrix();
        let run = |streaming: bool| {
            let mut ctx =
                GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential);
            ctx.set_streaming(streaming);
            let x = [1.0, 2.0, 3.0];
            let mut y = [0.0f64; 3];
            let mut nrm = 0.0f64;
            {
                let mut st = ctx.stream();
                // SAFETY: all recorded buffers are locals outliving the stream.
                unsafe {
                    st.spmv(&a, &x, &mut y);
                    st.norm2_into(&y, &mut nrm);
                }
                st.sync();
            }
            (y, nrm, ctx.elapsed(), ctx.profiler().critical_seconds())
        };
        let (y_r, n_r, t_r, c_r) = run(true);
        let (y_e, n_e, t_e, c_e) = run(false);
        assert_eq!(y_r, y_e);
        assert_eq!(n_r.to_bits(), n_e.to_bits());
        assert_eq!(t_r.to_bits(), t_e.to_bits());
        // A pure chain has critical == serial in both modes.
        assert_eq!(c_r.to_bits(), t_r.to_bits());
        assert_eq!(c_e.to_bits(), t_e.to_bits());
    }

    #[test]
    fn independent_recorded_ops_overlap_on_the_timeline() {
        let run_streaming = |streaming: bool| {
            let mut ctx =
                GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential);
            ctx.set_streaming(streaming);
            let x = vec![1.0f64; 64];
            let mut y1 = vec![2.0f64; 64];
            let mut y2 = vec![3.0f64; 64];
            {
                let mut st = ctx.stream();
                // SAFETY: all recorded buffers are locals outliving the stream.
                unsafe {
                    st.axpy(1.5, &x, &mut y1);
                    st.axpy(-0.5, &x, &mut y2); // independent of the first
                }
                st.sync();
            }
            (y1, y2, ctx.elapsed(), ctx.profiler().critical_seconds())
        };
        let (y1, y2, serial, critical) = run_streaming(true);
        let (e1, e2, serial_e, critical_e) = run_streaming(false);
        assert_eq!(y1, e1);
        assert_eq!(y2, e2);
        assert_eq!(serial.to_bits(), serial_e.to_bits());
        // Eager mode serializes; recorded mode overlaps the two axpys.
        assert_eq!(critical_e.to_bits(), serial_e.to_bits());
        assert!(critical < serial, "{critical} !< {serial}");
    }

    #[test]
    fn war_hazard_orders_recorded_ops() {
        // op1 reads w, op2 overwrites w: the DAG must execute op1 first
        // even though op2 carries no data from it (write-after-read).
        let mut ctx =
            GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential);
        let mut w = vec![3.0f64, 4.0];
        let mut h = vec![0.0f64; 2];
        {
            let mut st = ctx.stream();
            // SAFETY: all recorded buffers are locals outliving the stream.
            unsafe {
                st.axpy(2.0, &w, &mut h); // reads the original w
                st.scal(0.5, &mut w); // then clobbers it
            }
            st.sync();
        }
        assert_eq!(h, vec![6.0, 8.0], "axpy must see w before the scal");
        assert_eq!(w, vec![1.5, 2.0]);
    }

    #[test]
    fn raw_and_waw_hazards_order_recorded_ops() {
        let a = small_matrix();
        let mut ctx =
            GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential);
        let x = [1.0f64, 1.0, 1.0];
        let mut y = [0.0f64; 3];
        let mut nrm = 0.0f64;
        {
            let mut st = ctx.stream();
            // SAFETY: all recorded buffers are locals outliving the stream.
            unsafe {
                st.spmv(&a, &x, &mut y); // writes y
                st.scal(2.0, &mut y); // WAW + RAW on y
                st.norm2_into(&y, &mut nrm); // RAW on y
            }
            st.sync();
        }
        // A 1D Laplacian row sums: y = [1, 0, 1] then doubled.
        assert_eq!(y, [2.0, 0.0, 2.0]);
        assert_eq!(nrm, (8.0f64).sqrt());
    }
}
