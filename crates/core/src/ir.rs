//! GMRES-IR: GMRES with iterative refinement (Algorithm 2 of the paper,
//! after Turner & Walker).
//!
//! The inner GMRES(m) runs in the low precision `Lo`; at every restart
//! the residual is recomputed in the high precision `Hi` and fed back as
//! the next inner right-hand side:
//!
//! ```text
//! r0 = b - A x0                       [Hi]
//! loop:  solve A u = r  with GMRES(m) [Lo]
//!        x += u                       [Hi]
//!        r  = b - A x                 [Hi]
//! ```
//!
//! Convergence is only checked at refinement boundaries — the inner
//! fp32 implicit residual says nothing about the outer fp64 problem
//! (§III-B) — so the inner solver always runs its full `m` iterations and
//! GMRES-IR "may take at most m-1 extra iterations" versus fp64 GMRES.
//! The inner right-hand side is normalized before casting down, which is
//! an exact reformulation (GMRES is scale-invariant) and keeps the
//! residual representable when `Lo` is fp16 (the paper's future-work
//! third precision).

use mpgmres_backend::BackendScalar;
use mpgmres_gpusim::KernelClass;
use mpgmres_la::multivec::MultiVec;

use crate::block_gmres::BlockGmres;
use crate::config::{GmresConfig, IrConfig, StorePath};
use crate::context::{GpuContext, GpuMatrix, GpuStore};
use crate::precond::{Identity, Preconditioner};
use crate::service::{
    Disposition, Operator, RequestId, SolveError, SolveOutcome, SolveRequest, Solver,
};
use crate::status::{HistoryKind, HistoryPoint, SolveResult, SolveStatus};
use crate::stream::{region, RegionKey};

/// GMRES-IR: inner precision `Lo`, outer (residual/solution) precision `Hi`.
pub struct GmresIr<'a, Lo: BackendScalar, Hi: BackendScalar> {
    a_hi: &'a GpuMatrix<Hi>,
    a_lo: GpuMatrix<Lo>,
    store_lo: Option<GpuStore<Lo>>,
    precond_lo: &'a dyn Preconditioner<Lo>,
    cfg: IrConfig,
}

impl<'a, Lo: BackendScalar, Hi: BackendScalar> Solver<'a, Hi> for GmresIr<'a, Lo, Hi> {
    /// Serve one [`SolveRequest`] with the identity inner
    /// preconditioner (the paper's baseline GMRES-IR); see
    /// [`GmresIr::serve_with`] for a low-precision preconditioner.
    fn serve(
        ctx: &mut GpuContext,
        req: &SolveRequest<'a, '_, Hi>,
    ) -> Result<SolveOutcome<Hi>, SolveError> {
        Self::serve_with(ctx, req, &Identity)
    }
}

impl<'a, Lo: BackendScalar, Hi: BackendScalar> GmresIr<'a, Lo, Hi> {
    /// Build the solver. The low-precision matrix copy is created here
    /// (its one-time conversion cost is excluded from solve times, as in
    /// the paper's protocol, §V). A non-[`StorePath::Native`] storage
    /// path additionally builds the low-precision value store the inner
    /// block solver streams. Panics on an unsupported combination; see
    /// [`GmresIr::try_new`] for the typed-error variant.
    pub fn new(
        a_hi: &'a GpuMatrix<Hi>,
        precond_lo: &'a dyn Preconditioner<Lo>,
        cfg: IrConfig,
    ) -> Self {
        Self::try_new(a_hi, precond_lo, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`GmresIr::new`] with typed errors. A non-native storage path
    /// packs the inner operand, so it supports exactly the
    /// preconditioners that never touch the matrix at apply time
    /// ([`Preconditioner::needs_matrix`] is `false`: identity, block
    /// Jacobi, cast wrappers — they apply in the working precision
    /// while the SpMM streams narrow values). A matrix-needing
    /// preconditioner degrades to
    /// [`SolveError::UnsupportedCombination`].
    pub fn try_new(
        a_hi: &'a GpuMatrix<Hi>,
        precond_lo: &'a dyn Preconditioner<Lo>,
        cfg: IrConfig,
    ) -> Result<Self, SolveError> {
        let a_lo = a_hi.convert::<Lo>();
        let store_lo = match cfg.store {
            StorePath::Native => None,
            StorePath::Shadow(p) => Some(GpuStore::shadow_of(&a_lo, p)),
            StorePath::Split(t) => Some(GpuStore::split_of(&a_lo, t)),
        };
        if store_lo.is_some() && precond_lo.needs_matrix() {
            return Err(SolveError::UnsupportedCombination(format!(
                "preconditioner '{}' needs the plain matrix at apply time, \
                 which the packed inner operand of a non-native storage path \
                 does not carry; use a matrix-free preconditioner (identity, \
                 block Jacobi, or a cast wrapper owning its own copy)",
                precond_lo.describe()
            )));
        }
        Ok(GmresIr {
            a_hi,
            a_lo,
            store_lo,
            precond_lo,
            cfg,
        })
    }

    /// Serve one [`SolveRequest`] through GMRES-IR with an explicit
    /// inner-precision preconditioner (the request's own preconditioner
    /// field lives in `Hi` and cannot run in `Lo` arithmetic; it must
    /// be the identity here).
    pub fn serve_with(
        ctx: &mut GpuContext,
        req: &SolveRequest<'a, '_, Hi>,
        precond_lo: &'a dyn Preconditioner<Lo>,
    ) -> Result<SolveOutcome<Hi>, SolveError> {
        req.validate()?;
        if !req.precond.is_identity() {
            return Err(SolveError::UnsupportedCombination(
                "GMRES-IR applies its preconditioner in the inner precision; \
                 pass it as `precond_lo` and leave the request's own \
                 preconditioner at the identity"
                    .into(),
            ));
        }
        let a = match req.operator {
            Operator::Matrix(a) => a,
            Operator::Store(_) => {
                return Err(SolveError::UnsupportedCombination(
                    "GMRES-IR needs the plain high-precision matrix for its \
                     outer residual; select a storage path for the *inner* \
                     operand via the request's `store` field instead"
                        .into(),
                ))
            }
        };
        let cfg = IrConfig::default()
            .with_m(req.config.m)
            .with_rtol(req.config.rtol)
            .with_max_iters(req.config.max_iters)
            .with_store(req.store);
        let cfg = IrConfig {
            record_history: req.config.record_history,
            ..cfg
        };
        let ir = Self::try_new(a, precond_lo, cfg)?;
        let n = a.n();
        let mut x = req
            .x0
            .map(|x| x.to_vec())
            .unwrap_or_else(|| vec![Hi::zero(); n]);
        let start = ctx.elapsed();
        let result = ir.solve(ctx, req.rhs, &mut x);
        Ok(SolveOutcome {
            id: RequestId(0),
            x,
            result: Some(result),
            disposition: Disposition::Completed,
            degraded: None,
            queued_seconds: 0.0,
            solve_seconds: ctx.elapsed() - start,
        })
    }

    /// The low-precision matrix copy (GMRES-IR keeps both in memory,
    /// §III-B).
    pub fn matrix_lo(&self) -> &GpuMatrix<Lo> {
        &self.a_lo
    }

    /// The inner low-precision value store, when a non-native
    /// [`StorePath`] is configured.
    pub fn store_lo(&self) -> Option<&GpuStore<Lo>> {
        self.store_lo.as_ref()
    }

    /// The configuration in use.
    pub fn config(&self) -> &IrConfig {
        &self.cfg
    }

    /// Precision-tag code keyed into the outer region: `0` for the
    /// native path, the store's [`mpgmres_scalar::PrecisionTag`] code
    /// otherwise — switching storage paths lands on a distinct cached
    /// outer graph.
    fn tag8(&self) -> u8 {
        self.store_lo.as_ref().map_or(0, |s| s.tag().code())
    }

    /// The fp64 refinement step `r = b - A x`, `||r||`, recorded as the
    /// [`region::IR_OUTER`] stream region (cold solve records the graph,
    /// every later refinement replays it).
    fn outer_residual(
        &self,
        ctx: &mut GpuContext,
        b: &[Hi],
        x: &[Hi],
        r: &mut [Hi],
        norm: &mut [Hi],
    ) {
        let n = self.a_hi.n();
        let mut st = ctx.stream_for(RegionKey::new(region::IR_OUTER, n).with_tag(self.tag8()));
        let ah = st.matrix(self.a_hi);
        let bh = st.slice(b);
        let xh = st.slice(x);
        let rh = st.slice_mut(r);
        let nh = st.slice_mut(norm);
        st.residual_as(KernelClass::ResidualHi, ah, bh, xh, rh);
        st.norm2_into_as(KernelClass::ResidualHi, rh.read(), nh.at(0));
        st.sync();
    }

    /// Solve `A x = b` to the outer tolerance; `x` holds the initial
    /// guess on entry and the solution on exit.
    pub fn solve(&self, ctx: &mut GpuContext, b: &[Hi], x: &mut [Hi]) -> SolveResult {
        let n = self.a_hi.n();
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        let m = self.cfg.m;

        let mut history: Vec<HistoryPoint> = Vec::new();
        let mut r = vec![Hi::zero(); n];
        let mut r_lo = MultiVec::<Lo>::zeros(n, 1);
        let mut u_lo = MultiVec::<Lo>::zeros(n, 1);
        let mut u_hi = vec![Hi::zero(); n];
        let mut nbuf = vec![Hi::zero(); 1];

        // High-precision initial residual (Algorithm 2, line 1); cold
        // call records the IR_OUTER region, refinements replay it.
        self.outer_residual(ctx, b, x, &mut r, &mut nbuf);
        let mut rnorm = nbuf[0].to_f64();
        let r0_norm = rnorm;
        if !r0_norm.is_finite() {
            return SolveResult {
                status: SolveStatus::Breakdown,
                iterations: 0,
                restarts: 0,
                final_relative_residual: f64::NAN,
                history,
            };
        }
        if r0_norm == 0.0 {
            return SolveResult {
                status: SolveStatus::Converged,
                iterations: 0,
                restarts: 0,
                final_relative_residual: 0.0,
                history,
            };
        }

        let inner_cfg = match self.cfg.inner_early_exit {
            None => GmresConfig::inner_cycle(m),
            Some(tau) => GmresConfig {
                monitor_implicit: true,
                rtol: tau,
                record_history: self.cfg.record_history,
                ..GmresConfig::inner_cycle(m)
            },
        };
        let inner = match &self.store_lo {
            None => BlockGmres::new(&self.a_lo, self.precond_lo, inner_cfg),
            // The construction boundary already vetted the
            // preconditioner as matrix-free, so the packed path applies
            // it in the working precision while the SpMM streams the
            // store's narrow values.
            Some(s) => BlockGmres::try_over_store(s, self.precond_lo, inner_cfg)
                .expect("vetted at construction"),
        };

        let mut total_iters = 0usize;
        let mut restarts = 0usize;
        let status;
        if self.cfg.record_history {
            history.push(HistoryPoint {
                iteration: 0,
                relative_residual: 1.0,
                kind: HistoryKind::Explicit,
            });
        }

        loop {
            let rel = rnorm / r0_norm;
            if rel <= self.cfg.rtol {
                status = SolveStatus::Converged;
                break;
            }
            if total_iters >= self.cfg.max_iters {
                status = SolveStatus::MaxIters;
                break;
            }
            if !rel.is_finite() {
                status = SolveStatus::Breakdown;
                break;
            }

            // Normalize and cast the residual down through the host
            // interface (§IV: Belos-mediated conversions).
            ctx.scal(Hi::from_f64(1.0 / rnorm), &mut r);
            ctx.cast_host(&r, r_lo.col_mut(0));

            // Inner solve A_lo u = r_lo from a zero guess: one cycle of
            // the one-lane block driver — bit-identical to a single-RHS
            // inner GMRES, and the lane shares the block storage-path
            // (SpMM-over-store) kernels.
            for ui in u_lo.col_mut(0).iter_mut() {
                *ui = Lo::zero();
            }
            let inner_res = inner
                .solve(ctx, &r_lo, &mut u_lo)
                .pop()
                .expect("one inner lane");
            if inner_res.iterations == 0 {
                // Inner solver could make no progress (e.g. fp16 overflow).
                status = SolveStatus::Breakdown;
                break;
            }
            if self.cfg.record_history {
                for p in inner_res
                    .history
                    .iter()
                    .filter(|p| p.kind == HistoryKind::Implicit)
                {
                    history.push(HistoryPoint {
                        iteration: total_iters + p.iteration,
                        relative_residual: p.relative_residual * rel,
                        kind: HistoryKind::Implicit,
                    });
                }
            }
            total_iters += inner_res.iterations;
            restarts += 1;

            // x += rnorm * u  (undo the normalization), then refresh the
            // true residual in high precision (Algorithm 2, lines 4-5).
            ctx.cast_host(u_lo.col(0), &mut u_hi);
            ctx.axpy(Hi::from_f64(rnorm), &u_hi, x);
            self.outer_residual(ctx, b, x, &mut r, &mut nbuf);
            let new_norm = nbuf[0].to_f64();
            if self.cfg.record_history {
                history.push(HistoryPoint {
                    iteration: total_iters,
                    relative_residual: new_norm / r0_norm,
                    kind: HistoryKind::Explicit,
                });
            }
            if !new_norm.is_finite() {
                status = SolveStatus::Breakdown;
                break;
            }
            rnorm = new_norm;
        }

        SolveResult {
            status,
            iterations: total_iters,
            restarts,
            final_relative_residual: rnorm / r0_norm,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmres::Gmres;
    use crate::precond::Identity;
    use mpgmres_gpusim::{DeviceModel, PaperCategory};
    use mpgmres_la::coo::Coo;
    use mpgmres_la::vec_ops::ReductionOrder;
    use mpgmres_scalar::Half;

    fn ctx() -> GpuContext {
        GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential)
    }

    fn laplace1d(n: usize) -> GpuMatrix<f64> {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        GpuMatrix::new(coo.into_csr())
    }

    fn true_rel_residual(a: &GpuMatrix<f64>, b: &[f64], x: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        a.csr().residual(b, x, &mut r);
        mpgmres_la::vec_ops::norm2(&r) / mpgmres_la::vec_ops::norm2(b)
    }

    #[test]
    fn reaches_double_precision_accuracy_with_fp32_inner() {
        // The paper's core claim: fp32 inner + fp64 refinement converges
        // to 1e-10, which fp32 alone cannot certify.
        let n = 96;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let cfg = IrConfig::default().with_m(20).with_max_iters(20_000);
        let ir = GmresIr::<f32, f64>::new(&a, &Identity, cfg);
        let res = ir.solve(&mut ctx(), &b, &mut x);
        assert_eq!(res.status, SolveStatus::Converged);
        assert!(true_rel_residual(&a, &b, &x) <= 1.2e-10);
    }

    #[test]
    fn iterations_are_multiples_of_m() {
        // Inner cycles always run full m (paper: iteration counts in
        // Tables II/III are exact multiples of the restart length).
        let n = 64;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let m = 15;
        let cfg = IrConfig::default().with_m(m).with_max_iters(10_000);
        let res = GmresIr::<f32, f64>::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x);
        assert_eq!(res.status, SolveStatus::Converged);
        assert_eq!(
            res.iterations % m,
            0,
            "iterations {} not multiple of {m}",
            res.iterations
        );
        assert_eq!(res.iterations / m, res.restarts);
    }

    #[test]
    fn refinement_work_lands_in_other_category() {
        let n = 48;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let mut c = ctx();
        let cfg = IrConfig::default().with_m(10).with_max_iters(5_000);
        let res = GmresIr::<f32, f64>::new(&a, &Identity, cfg).solve(&mut c, &b, &mut x);
        assert_eq!(res.status, SolveStatus::Converged);
        let rep = c.report();
        // Other must contain the hi-precision residual recomputations and
        // host casts: at least 2 ResidualHi + 2 casts per restart.
        assert!(rep.seconds(PaperCategory::Other) > 0.0);
        let casts = c
            .profiler()
            .class_stats(mpgmres_gpusim::KernelClass::CastHost)
            .calls;
        assert_eq!(casts as usize, 2 * res.restarts);
        let hi_res = c
            .profiler()
            .class_stats(mpgmres_gpusim::KernelClass::ResidualHi)
            .calls;
        assert_eq!(hi_res as usize, 2 * (res.restarts + 1));
    }

    #[test]
    fn matches_fp64_gmres_solution() {
        let n = 80;
        let a = laplace1d(n);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let mut x_ir = vec![0.0; n];
        let cfg = IrConfig::default().with_m(25).with_max_iters(20_000);
        let res = GmresIr::<f32, f64>::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x_ir);
        assert_eq!(res.status, SolveStatus::Converged);
        let mut x_64 = vec![0.0; n];
        let g = Gmres::new(&a, &Identity, GmresConfig::default().with_m(25));
        g.solve(&mut ctx(), &b, &mut x_64);
        // Both residuals meet 1e-10; solutions agree to solver accuracy.
        let dx: f64 = x_ir
            .iter()
            .zip(&x_64)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let xn = mpgmres_la::vec_ops::norm2(&x_64);
        assert!(dx <= 1e-6 * xn, "solutions differ: {dx} vs {xn}");
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = laplace1d(10);
        let b = vec![0.0; 10];
        let mut x = vec![0.0; 10];
        let res = GmresIr::<f32, f64>::new(&a, &Identity, IrConfig::default()).solve(
            &mut ctx(),
            &b,
            &mut x,
        );
        assert_eq!(res.status, SolveStatus::Converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn max_iters_respected() {
        let n = 128;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let cfg = IrConfig::default().with_m(10).with_max_iters(30);
        let res = GmresIr::<f32, f64>::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x);
        assert_eq!(res.status, SolveStatus::MaxIters);
        assert!(res.iterations <= 30);
    }

    #[test]
    fn fp16_inner_three_precision_future_work() {
        // The paper's future-work extension: fp16 inner, fp64 outer.
        // The normalized-residual refinement keeps fp16 in range; a small
        // well-conditioned system must still reach fp64 accuracy.
        let n = 24;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let cfg = IrConfig::default()
            .with_m(24)
            .with_rtol(1e-10)
            .with_max_iters(50_000);
        let ir = GmresIr::<Half, f64>::new(&a, &Identity, cfg);
        let res = ir.solve(&mut ctx(), &b, &mut x);
        assert_eq!(
            res.status,
            SolveStatus::Converged,
            "final rel {}",
            res.final_relative_residual
        );
        assert!(true_rel_residual(&a, &b, &x) <= 1.2e-10);
    }

    #[test]
    fn storage_paths_reach_fp64_accuracy() {
        // The cuSPARSE shadow pattern: accumulate in the working
        // precision, stream low-precision matrix values. The 1D
        // Laplacian's entries are exact in every precision, so every
        // storage path must hit the same fp64 target.
        let n = 96;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        let paths = [
            StorePath::Shadow(mpgmres_scalar::Precision::Fp32),
            StorePath::Split(1.5),
        ];
        for store in paths {
            let mut x = vec![0.0; n];
            let cfg = IrConfig::default()
                .with_m(20)
                .with_max_iters(20_000)
                .with_store(store);
            let ir = GmresIr::<f64, f64>::new(&a, &Identity, cfg);
            assert!(ir.store_lo().is_some(), "{store:?} must build a store");
            let res = ir.solve(&mut ctx(), &b, &mut x);
            assert_eq!(res.status, SolveStatus::Converged, "{store:?}");
            assert!(true_rel_residual(&a, &b, &x) <= 1.2e-10, "{store:?}");
        }
        // fp16 value storage under an fp32 inner working precision.
        let mut x = vec![0.0; n];
        let cfg = IrConfig::default()
            .with_m(20)
            .with_max_iters(20_000)
            .with_store(StorePath::Shadow(mpgmres_scalar::Precision::Fp16));
        let res = GmresIr::<f32, f64>::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x);
        assert_eq!(res.status, SolveStatus::Converged);
        assert!(true_rel_residual(&a, &b, &x) <= 1.2e-10);
    }

    #[test]
    fn native_path_builds_no_store() {
        let a = laplace1d(16);
        let ir = GmresIr::<f32, f64>::new(&a, &Identity, IrConfig::default());
        assert!(ir.store_lo().is_none());
    }

    #[test]
    fn storage_path_accepts_matrix_free_preconditioners_only() {
        let a = laplace1d(16);
        let cfg =
            IrConfig::default().with_store(StorePath::Shadow(mpgmres_scalar::Precision::Fp32));
        // Block Jacobi extracts its factors at build time and never
        // touches A at apply time: allowed over packed storage.
        let jacobi = crate::precond::block_jacobi::BlockJacobi::build(&a, 1);
        assert!(GmresIr::<f64, f64>::try_new(&a, &jacobi, cfg).is_ok());
        // Chebyshev streams SpMVs against the plain matrix: degrades to
        // a typed error instead of the old panic.
        let cheb =
            crate::precond::chebyshev::ChebyshevPreconditioner::with_bounds(4, 0.1, 4.0).unwrap();
        let err = match GmresIr::<f64, f64>::try_new(&a, &cheb, cfg) {
            Ok(_) => panic!("chebyshev must be rejected over packed storage"),
            Err(e) => e,
        };
        assert!(matches!(err, SolveError::UnsupportedCombination(_)));
    }

    #[test]
    fn block_jacobi_over_shadow_path_matches_native_bitwise() {
        // The PR-6 restriction lift, end to end: block Jacobi applied in
        // the working precision while the SpMM streams fp32 shadow
        // values. Laplacian entries are fp32-exact, so the shadow path
        // must reproduce the native preconditioned solve bit for bit.
        let n = 64;
        let a = laplace1d(n);
        let jacobi = crate::precond::block_jacobi::BlockJacobi::build(&a.convert::<f32>(), 4);
        let b = vec![1.0f64; n];
        let cfg = IrConfig::default().with_m(15).with_max_iters(5_000);
        let mut x_native = vec![0.0f64; n];
        let res_native =
            GmresIr::<f32, f64>::new(&a, &jacobi, cfg).solve(&mut ctx(), &b, &mut x_native);
        let mut x_shadow = vec![0.0f64; n];
        let res_shadow = GmresIr::<f32, f64>::new(
            &a,
            &jacobi,
            IrConfig {
                store: StorePath::Shadow(mpgmres_scalar::Precision::Fp32),
                ..cfg
            },
        )
        .solve(&mut ctx(), &b, &mut x_shadow);
        assert_eq!(res_native.status, SolveStatus::Converged);
        assert_eq!(res_native.iterations, res_shadow.iterations);
        for (ns, ss) in x_native.iter().zip(&x_shadow) {
            assert_eq!(ns.to_bits(), ss.to_bits(), "shadow path diverged");
        }
    }

    #[test]
    fn early_exit_ablation_reduces_iterations_sometimes() {
        let n = 64;
        let a = laplace1d(n);
        let b = vec![1.0; n];
        let full = {
            let mut x = vec![0.0; n];
            let cfg = IrConfig::default().with_m(40).with_max_iters(20_000);
            GmresIr::<f32, f64>::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x)
        };
        let early = {
            let mut x = vec![0.0; n];
            let cfg = IrConfig {
                inner_early_exit: Some(1e-6),
                ..IrConfig::default().with_m(40).with_max_iters(20_000)
            };
            GmresIr::<f32, f64>::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x)
        };
        assert_eq!(full.status, SolveStatus::Converged);
        assert_eq!(early.status, SolveStatus::Converged);
        // Early exit stops inner cycles at fp32 stall instead of burning
        // the full m; it must never need more iterations.
        assert!(early.iterations <= full.iterations);
    }
}
