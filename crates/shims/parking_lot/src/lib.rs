//! Offline shim for `parking_lot` (see `crates/shims/README.md`).
//!
//! Wraps `std::sync::Mutex` with parking_lot's ergonomics: `lock()`
//! returns the guard directly (recovering from poisoning instead of
//! returning a `Result`).

use std::sync::Mutex as StdMutex;
pub use std::sync::MutexGuard;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1usize);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn default_works() {
        let m: Mutex<Vec<u8>> = Mutex::default();
        assert!(m.lock().is_empty());
    }
}
