//! Offline shim for `serde` (see `crates/shims/README.md`).
//!
//! Provides a [`Serialize`] trait producing a JSON [`Value`] tree, plus
//! the `#[derive(Serialize)]` macro from the sibling `serde_derive`
//! shim. The surface intentionally covers only what this workspace
//! uses: plain structs with named fields, unit-variant enums, and the
//! standard container/primitive types below.

use std::collections::{BTreeMap, HashMap};

// Let the derive macro's `::serde::` paths resolve inside this crate's
// own tests as well.
extern crate self as serde;

pub use serde_derive::Serialize;

/// A JSON value tree — the intermediate representation every
/// [`Serialize`] impl produces and `serde_json` renders.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats, as
    /// `JSON.stringify` does).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    Uint(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The key string this value contributes when used as a map key.
    ///
    /// Mirrors `serde_json`: string keys pass through, unit enum
    /// variants serialize as their name, integers stringify.
    pub fn into_key(self) -> String {
        match self {
            Value::Str(s) => s,
            Value::Uint(u) => u.to_string(),
            Value::Int(i) => i.to_string(),
            other => panic!("map key must serialize to a string, got {other:?}"),
        }
    }
}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a JSON value.
    fn to_value(&self) -> Value;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Uint(*self as u64) }
        }
    )*};
}
macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_value().into_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value().into_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic output
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(3usize.to_value(), Value::Uint(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("x".to_string().to_value(), Value::Str("x".into()));
        assert_eq!(None::<f64>.to_value(), Value::Null);
    }

    #[test]
    fn containers() {
        let v = vec![(1usize, 2.0f64)];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::Array(vec![Value::Uint(1), Value::Float(2.0)])])
        );
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        assert_eq!(
            m.to_value(),
            Value::Object(vec![("a".into(), Value::Uint(1))])
        );
    }

    #[derive(Serialize)]
    struct Demo {
        n: usize,
        label: String,
    }

    #[derive(Serialize)]
    enum Kind {
        Alpha,
        #[allow(dead_code)]
        Beta,
    }

    #[test]
    fn derive_struct_and_enum() {
        let d = Demo {
            n: 7,
            label: "ok".into(),
        };
        assert_eq!(
            d.to_value(),
            Value::Object(vec![
                ("n".into(), Value::Uint(7)),
                ("label".into(), Value::Str("ok".into())),
            ])
        );
        assert_eq!(Kind::Alpha.to_value(), Value::Str("Alpha".into()));
    }
}
