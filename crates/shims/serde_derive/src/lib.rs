//! Offline shim for `serde_derive` (see `crates/shims/README.md`).
//!
//! Implements `#[derive(Serialize)]` by hand-parsing the item's token
//! stream (no `syn`/`quote` available offline). Supported shapes — the
//! only ones this workspace uses:
//!
//! - `struct Name { field: Ty, ... }` → JSON object in field order
//! - `enum Name { VariantA, VariantB, ... }` (unit variants only)
//!   → JSON string of the variant name
//!
//! Generics, tuple structs, and data-carrying enum variants are
//! rejected with a compile-time panic naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (shim: to_value -> serde::Value).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut iter = input.into_iter().peekable();

    // Skip attributes (#[...]) and visibility.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Consume the bracketed attribute body.
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde_derive shim: malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Optional pub(...) restriction.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                panic!("serde_derive shim: unexpected token `{s}` before struct/enum");
            }
            other => panic!("serde_derive shim: unexpected token {other:?}"),
        }
    };

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };

    // Reject generics: the workspace derives only on concrete types.
    let body = match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive shim: generic type `{name}` is not supported")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("serde_derive shim: tuple struct `{name}` is not supported")
        }
        other => panic!("serde_derive shim: expected {{...}} body for `{name}`, got {other:?}"),
    };

    let out = if kind == "struct" {
        let fields = parse_named_fields(body, &name);
        let entries: String = fields
            .iter()
            .map(|f| {
                format!(
                    "(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f})),"
                )
            })
            .collect();
        format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Object(::std::vec![{entries}])\n\
                 }}\n\
             }}"
        )
    } else {
        let variants = parse_unit_variants(body, &name);
        let arms: String = variants
            .iter()
            .map(|v| {
                format!(
                    "{name}::{v} => \
                     ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                )
            })
            .collect();
        format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     match self {{ {arms} }}\n\
                 }}\n\
             }}"
        )
    };

    out.parse()
        .expect("serde_derive shim: generated impl failed to parse")
}

/// Field names of a named-field struct body, in declaration order.
fn parse_named_fields(body: TokenStream, type_name: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip per-field attributes and visibility.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    match iter.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                        other => panic!(
                            "serde_derive shim: malformed field attribute in `{type_name}`: {other:?}"
                        ),
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = iter.next() else { break };
        let field = match tok {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                panic!("serde_derive shim: expected field name in `{type_name}`, got {other:?}")
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("serde_derive shim: expected `:` after `{type_name}.{field}`, got {other:?}")
            }
        }
        // Skip the type: consume until a top-level comma (angle depth 0).
        let mut depth = 0i32;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(field);
    }
    fields
}

/// Variant names of a unit-variant enum body.
fn parse_unit_variants(body: TokenStream, type_name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip per-variant attributes (incl. doc comments).
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() != '#' {
                break;
            }
            iter.next();
            match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                other => panic!(
                    "serde_derive shim: malformed variant attribute in `{type_name}`: {other:?}"
                ),
            }
        }
        let Some(tok) = iter.next() else { break };
        let variant = match tok {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                panic!("serde_derive shim: expected variant name in `{type_name}`, got {other:?}")
            }
        };
        match iter.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive shim: enum `{type_name}` variant `{variant}` carries data — \
                 only unit variants are supported"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => panic!(
                "serde_derive shim: enum `{type_name}` uses explicit discriminants — unsupported"
            ),
            other => panic!("serde_derive shim: unexpected token in `{type_name}`: {other:?}"),
        }
    }
    variants
}
