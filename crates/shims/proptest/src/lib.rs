//! Offline shim for `proptest` (see `crates/shims/README.md`).
//!
//! Implements the subset of proptest this workspace uses: the
//! [`proptest!`] macro, range/tuple/vec/map strategies, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros. Cases are
//! generated from a deterministic per-test seed (derived from the test
//! path and the case index) so failures are reproducible; there is no
//! shrinking — the failing case's `Debug` rendering is printed instead.

use std::ops::{Range, RangeInclusive};

/// Number of cases run when no [`ProptestConfig`] is supplied.
pub const DEFAULT_CASES: u32 = 64;

/// Per-test configuration (subset: case count only).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// Run exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered this case out; it is skipped, not failed.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic splitmix64 generator seeding each test case.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for `case` of the test identified by `path` (stable across
    /// runs, distinct across tests and cases).
    pub fn deterministic(path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator (no shrinking in this shim).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u128, *self.end() as u128);
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = hi - lo + 1;
                (lo + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (f64::from(self.start) + rng.unit_f64() * f64::from(self.end - self.start)) as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Anything usable as the size parameter of [`vec()`].
    pub trait IntoSizeRange {
        /// Inclusive lower and exclusive upper bound of the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy producing `Vec`s of values from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    /// A vector whose length is drawn from `size` and whose elements
    /// come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty size range for collection::vec");
        VecStrategy { elem, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.hi - self.lo) as u64;
            let len = self.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Numeric special-value strategies.
pub mod num {
    /// `f32` strategies.
    pub mod f32 {
        use crate::{Strategy, TestRng};

        /// Strategy over normal (non-zero, non-subnormal, finite) f32s.
        #[derive(Clone, Copy, Debug)]
        pub struct Normal;

        /// All normal `f32` values, uniformly over the bit patterns.
        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f32;
            fn generate(&self, rng: &mut TestRng) -> f32 {
                loop {
                    let v = f32::from_bits(rng.next_u64() as u32);
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

/// Everything a test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __l,
                __r
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Fail the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __l
            )));
        }
    }};
}

/// Skip (not fail) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __path = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::deterministic(__path, __case);
                let __vals = ( $( $crate::Strategy::generate(&($strat), &mut __rng), )+ );
                let __repr = format!("{:?}", __vals);
                let __run = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    #[allow(unused_parens)]
                    let ( $($pat,)+ ) = __vals;
                    $body
                    ::std::result::Result::Ok(())
                };
                match __run() {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => panic!(
                        "proptest {} case {}/{} failed: {}\n  inputs: {}",
                        __path, __case, __config.cases, __msg, __repr
                    ),
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::deterministic("x::y", 3);
        let mut b = TestRng::deterministic("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_sizes(v in collection::vec(0u32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn map_and_assume(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            let doubled = (0usize..10).prop_map(|v| v * 2);
            let mut rng = TestRng::deterministic("inner", n as u32);
            prop_assert_eq!(Strategy::generate(&doubled, &mut rng) % 2, 0);
        }
    }
}
