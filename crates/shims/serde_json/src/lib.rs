//! Offline shim for `serde_json` (see `crates/shims/README.md`).
//!
//! Renders the `serde` shim's [`Value`] tree as pretty-printed JSON.
//! Non-finite floats serialize as `null` (like `JSON.stringify`), and
//! writer errors surface as `std::io::Error` so call sites using `?`
//! inside `io::Result` functions keep working.

use std::io::Write;

use serde::Serialize;
pub use serde::Value;

/// Serialize `value` as pretty JSON into `writer`.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> std::io::Result<()> {
    let s = to_string_pretty(value);
    writer.write_all(s.as_bytes())?;
    writer.write_all(b"\n")
}

/// Serialize `value` as a pretty JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    render(&value.to_value(), 0, &mut out);
    out
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    // Compact output reuses the pretty renderer with indent elision is
    // not worth a second code path here; strip is lossy for strings, so
    // render compactly for real.
    let mut out = String::new();
    render_compact(&value.to_value(), &mut out);
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn render(v: &Value, level: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                indent(level + 1, out);
                render(item, level + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(level, out);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                indent(level + 1, out);
                push_json_string(k, out);
                out.push_str(": ");
                render(val, level + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(level, out);
            out.push('}');
        }
        other => render_compact(other, out),
    }
}

fn render_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Uint(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Display for floats is shortest-roundtrip.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => push_json_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_string(k, out);
                out.push(':');
                render_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn push_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip_shapes() {
        let v = vec![1.0f64, 2.5, f64::NAN];
        assert_eq!(to_string(&v), "[1.0,2.5,null]");
        let pretty = to_string_pretty(&v);
        assert!(pretty.starts_with("[\n"));
        assert!(pretty.contains("  1.0,"));
    }

    #[test]
    fn strings_are_escaped() {
        let s = "a\"b\\c\nd".to_string();
        assert_eq!(to_string(&s), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn writer_path_appends_newline() {
        let mut buf = Vec::new();
        to_writer_pretty(&mut buf, &42usize).unwrap();
        assert_eq!(buf, b"42\n");
    }
}
