//! Offline shim for `rand` (see `crates/shims/README.md`).
//!
//! Implements the slice of the `rand` API this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over half-open ranges. The generator is
//! splitmix64 — deterministic for a given seed, which is exactly what
//! the matrix-generator call sites rely on.

use std::ops::Range;

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample(&self, rng: &mut dyn RngCore) -> Self::Output;
}

/// Core entropy source: 64 random bits at a time.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Random-value convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample(&self, rng: &mut dyn RngCore) -> f32 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (f64::from(self.start) + unit * f64::from(self.end - self.start)) as f32
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(&self, rng: &mut dyn RngCore) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(
                a.gen_range(0.0f64..1.0).to_bits(),
                b.gen_range(0.0f64..1.0).to_bits()
            );
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v));
            let u = r.gen_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }
}
