//! Offline shim for `criterion` (see `crates/shims/README.md`).
//!
//! Provides the benchmark-definition surface the workspace's benches
//! use (`Criterion`, benchmark groups, `criterion_group!` /
//! `criterion_main!`, `Bencher::iter`, `BenchmarkId`, `Throughput`)
//! with a simple wall-clock measurement loop and plain-text output.
//! There is no statistical analysis, HTML report, or baseline store.
//!
//! Set `MPGMRES_BENCH_FAST=1` to run each benchmark with two samples
//! (useful to smoke-test bench binaries in CI).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&name.into(), self.sample_size, None, f);
        self
    }
}

/// Benchmark identifier with a function name and a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation used to derive rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the number of measured samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, self.throughput, f);
        self
    }

    /// Measure `f` with an input value passed through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id);
        run_benchmark(&id, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (printing is incremental; nothing further to do).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the
/// routine under measurement.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Measure `routine`, running it enough times per sample to get
    /// above timer resolution.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: aim for samples of roughly >= 1 ms.
        if self.iters_per_sample == 0 {
            let t0 = Instant::now();
            black_box(routine());
            let once = t0.elapsed().max(Duration::from_nanos(20));
            let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1);
            self.iters_per_sample = per_sample.min(1_000_000) as u64;
        }
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }
}

fn fast_mode() -> bool {
    std::env::var("MPGMRES_BENCH_FAST")
        .map(|v| v != "0")
        .unwrap_or(false)
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let target_samples = if fast_mode() { 2 } else { sample_size };
    let mut b = Bencher {
        iters_per_sample: 0,
        samples: Vec::new(),
        target_samples,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no measurement: Bencher::iter never called)");
        return;
    }
    let per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(0.0f64, f64::max);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:>10.2} Melem/s", n as f64 / mean / 1e6)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:>10.2} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!(
        "{id:<48} time: [{} {} {}]{rate}",
        format_time(min),
        format_time(mean),
        format_time(max)
    );
}

/// Define a benchmark group function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("MPGMRES_BENCH_FAST", "1");
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("shim-self-test");
        g.throughput(Throughput::Elements(100));
        let mut count = 0u64;
        g.bench_function("counting", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        g.bench_with_input(BenchmarkId::new("with-input", 7), &7u64, |b, &v| {
            b.iter(|| v * 2)
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(2.0), "2.000 s");
        assert_eq!(format_time(2.5e-3), "2.500 ms");
        assert_eq!(format_time(2.5e-6), "2.500 µs");
        assert_eq!(format_time(3.0e-9), "3.0 ns");
    }
}
