//! Cross-crate integration tests: generators -> solvers -> performance
//! model, at tiny scale.

use multiprec_gmres::la::vec_ops::{norm2, ReductionOrder};
use multiprec_gmres::matgen::{galeri, registry::PaperProblem, suitesparse};
use multiprec_gmres::prelude::*;

fn ctx() -> GpuContext {
    GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::Sequential)
}

fn true_rel(a: &GpuMatrix<f64>, b: &[f64], x: &[f64]) -> f64 {
    let mut r = vec![0.0; b.len()];
    a.csr().residual(b, x, &mut r);
    norm2(&r) / norm2(b)
}

#[test]
fn every_paper_problem_solves_with_ir() {
    for p in PaperProblem::ALL {
        let nx = match p {
            PaperProblem::Laplace3D150 | PaperProblem::Laplace3D200 => 8,
            _ => 20,
        };
        let a = GpuMatrix::new(p.generate_at(nx));
        let b = vec![1.0f64; a.n()];
        let mut x = vec![0.0f64; a.n()];
        let ir = GmresIr::<f32, f64>::new(
            &a,
            &Identity,
            IrConfig::default().with_m(25).with_max_iters(50_000),
        );
        let res = ir.solve(&mut ctx(), &b, &mut x);
        assert!(
            res.status.is_converged(),
            "{} did not converge: {:?} rel {:.2e}",
            p.name(),
            res.status,
            res.final_relative_residual
        );
        assert!(
            true_rel(&a, &b, &x) <= 1.5e-10,
            "{} true residual too large",
            p.name()
        );
    }
}

#[test]
fn ir_and_fp64_agree_on_convection_problem() {
    let a = GpuMatrix::new(galeri::bentpipe2d(24, 0.5));
    let b = vec![1.0f64; a.n()];
    let cfg = GmresConfig::default().with_m(20).with_max_iters(20_000);
    let mut x64 = vec![0.0f64; a.n()];
    let r64 = Gmres::new(&a, &Identity, cfg).solve(&mut ctx(), &b, &mut x64);
    let mut xir = vec![0.0f64; a.n()];
    let rir = GmresIr::<f32, f64>::new(
        &a,
        &Identity,
        IrConfig::default().with_m(20).with_max_iters(20_000),
    )
    .solve(&mut ctx(), &b, &mut xir);
    assert!(r64.status.is_converged() && rir.status.is_converged());
    let dx: f64 = x64
        .iter()
        .zip(&xir)
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt();
    assert!(dx <= 1e-5 * norm2(&x64), "solutions disagree: {dx}");
}

#[test]
fn deterministic_under_sequential_reductions() {
    let a = GpuMatrix::new(galeri::uniflow2d(20, 0.9));
    let b = vec![1.0f64; a.n()];
    let run = || {
        let mut x = vec![0.0f64; a.n()];
        let res = GmresIr::<f32, f64>::new(
            &a,
            &Identity,
            IrConfig::default().with_m(15).with_max_iters(20_000),
        )
        .solve(&mut ctx(), &b, &mut x);
        (res.iterations, res.final_relative_residual, x)
    };
    let (i1, r1, x1) = run();
    let (i2, r2, x2) = run();
    assert_eq!(i1, i2, "iteration counts must be deterministic");
    assert_eq!(r1, r2, "residuals must be bit-identical");
    assert_eq!(x1, x2, "solutions must be bit-identical");
}

#[test]
fn gpu_like_reductions_converge_too() {
    // The paper notes GPU reductions make runs slightly nondeterministic;
    // convergence must be robust to the blocked-tree order regardless.
    let a = GpuMatrix::new(galeri::laplace2d(24, 24));
    let b = vec![1.0f64; a.n()];
    let mut c = GpuContext::with_reduction(DeviceModel::v100_belos(), ReductionOrder::GPU_LIKE);
    let mut x = vec![0.0f64; a.n()];
    let res = GmresIr::<f32, f64>::new(&a, &Identity, IrConfig::default().with_m(20))
        .solve(&mut c, &b, &mut x);
    assert!(res.status.is_converged());
    assert!(true_rel(&a, &b, &x) <= 1.5e-10);
}

#[test]
fn fd_and_ir_and_fp64_reach_same_accuracy() {
    let a = GpuMatrix::new(galeri::laplace2d(20, 20));
    let b = vec![1.0f64; a.n()];
    let mut x_fd = vec![0.0f64; a.n()];
    let id32 = Identity;
    let id64 = Identity;
    let fd = GmresFd::<f32, f64>::new(
        &a,
        &id32,
        &id64,
        FdConfig {
            m: 15,
            switch_at: 30,
            max_iters: 20_000,
            ..FdConfig::default()
        },
    );
    let res = fd.solve(&mut ctx(), &b, &mut x_fd);
    assert!(res.result.status.is_converged());
    assert!(true_rel(&a, &b, &x_fd) <= 1.5e-10);
    assert!(res.lo_iterations > 0 && res.hi_iterations > 0);
}

#[test]
fn polynomial_preconditioned_ir_on_fem_matrix() {
    let a = GpuMatrix::new(galeri::stretched2d(20, 2.0));
    let b = vec![1.0f64; a.n()];
    let a32 = a.convert::<f32>();
    let _b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
    let mut c = ctx();
    let poly = PolyPreconditioner::build_auto_seed(&mut c, &a32, 10).expect("poly build");
    let mut x = vec![0.0f64; a.n()];
    let res = GmresIr::<f32, f64>::new(
        &a,
        &poly,
        IrConfig::default().with_m(20).with_max_iters(20_000),
    )
    .solve(&mut ctx(), &b, &mut x);
    assert!(res.status.is_converged(), "{:?}", res.status);
    assert!(true_rel(&a, &b, &x) <= 1.5e-10);
}

#[test]
fn block_jacobi_with_rcm_pipeline() {
    use multiprec_gmres::la::rcm::{bandwidth, rcm};
    // Scramble the generator's (already grid-ordered) numbering the way a
    // real SuiteSparse download would arrive, then recover locality with
    // RCM before blocking — the paper's §V-G protocol.
    let raw = suitesparse::surrogate("hood", 0.04);
    let n = raw.nrows();
    let mut ids: Vec<usize> = (0..n).collect();
    ids.sort_by_key(|&v| (v.wrapping_mul(2654435761)) % n);
    let scrambled = raw.permute_sym(&ids);
    let bw_scrambled = bandwidth(&scrambled);
    let perm = rcm(&scrambled);
    let reordered = scrambled.permute_sym(&perm);
    assert!(
        bandwidth(&reordered) < bw_scrambled,
        "RCM must recover locality: {} -> {}",
        bw_scrambled,
        bandwidth(&reordered)
    );
    let a = GpuMatrix::new(reordered);
    let b = vec![1.0f64; a.n()];
    let bj = BlockJacobi::build(&a, 8);
    let mut x = vec![0.0f64; a.n()];
    let res = Gmres::new(
        &a,
        &bj,
        GmresConfig::default().with_m(30).with_max_iters(30_000),
    )
    .solve(&mut ctx(), &b, &mut x);
    assert!(res.status.is_converged(), "{:?}", res.status);
    assert!(true_rel(&a, &b, &x) <= 1.5e-10);
}

#[test]
fn surrogates_match_paper_symmetry_classes() {
    use multiprec_gmres::matgen::suitesparse::{Symmetry, TABLE3};
    for entry in &TABLE3 {
        let a = suitesparse::surrogate(entry.name, 0.04);
        let sym = a.is_symmetric(1e-10);
        match entry.symmetry {
            Symmetry::General => assert!(!sym, "{}", entry.name),
            _ => assert!(sym, "{}", entry.name),
        }
    }
}

#[test]
fn mtx_roundtrip_through_solver() {
    // Generate -> write MatrixMarket -> read back -> solve: same answer.
    let a0 = galeri::laplace2d(12, 12);
    let mut buf = Vec::new();
    multiprec_gmres::la::mtx::write_matrix_market(&a0, &mut buf).unwrap();
    let a1: multiprec_gmres::la::csr::Csr<f64> =
        multiprec_gmres::la::mtx::read_matrix_market(buf.as_slice()).unwrap();
    let a = GpuMatrix::new(a1);
    let b = vec![1.0f64; a.n()];
    let mut x = vec![0.0f64; a.n()];
    let res =
        Gmres::new(&a, &Identity, GmresConfig::default().with_m(20)).solve(&mut ctx(), &b, &mut x);
    assert!(res.status.is_converged());
}
