//! Regression tests on the paper's qualitative findings ("shapes"),
//! at sizes small enough for CI.
//!
//! These are the claims EXPERIMENTS.md tracks; if a code change breaks
//! one of them, the reproduction is broken even if unit tests pass.
//!
//! Each shape runs twice: a **downscaled default** (BentPipe 72², fast
//! enough that tier-1 `cargo test -q` stays well under two minutes
//! single-core) and a `#[ignore]`d **full-size** variant at the
//! experiments' default 96² / 48² instances, exercised by the
//! `paper-shapes-full` CI job (`cargo test -q -- --ignored`). 72² is
//! the smallest BentPipe grid that preserves the paper's regimes — at
//! 48² the coarse, strongly convective operator inflates IR's iteration
//! count by ~1.5x and the IR-speedup band is lost; 64² still misses it
//! (measured speedup 1.06, iteration gap 1.32).

use multiprec_gmres::la::vec_ops::ReductionOrder;
use multiprec_gmres::matgen::galeri;
use multiprec_gmres::prelude::*;

fn ctx_for(n: usize, paper_n: usize) -> GpuContext {
    let dev = DeviceModel::v100_belos().scaled_latencies(n as f64 / paper_n as f64);
    GpuContext::with_reduction(dev, ReductionOrder::Sequential)
}

/// Downscaled default BentPipe grid (see the module docs for why 72).
const BENTPIPE_NX: usize = 72;
/// The experiments' full default grid.
const BENTPIPE_NX_FULL: usize = 96;

/// Shared BentPipe instance in the many-iterations regime. The grid must
/// be large enough that the fp32 inner solver tracks fp64 (at 48² the
/// coarse, strongly convective operator inflates IR's iteration count by
/// ~1.5x and the paper's regime is lost; 96² is the experiments'
/// default, 72² the smallest grid that keeps the regime).
fn bentpipe(nx: usize) -> (GpuMatrix<f64>, Vec<f64>) {
    let a = GpuMatrix::new(galeri::bentpipe2d(nx, 0.5));
    let b = vec![1.0f64; a.n()];
    (a, b)
}

fn check_ir_speedup_on_slow_problems(nx: usize) {
    // Paper Table I/III: IR gives 1.2-1.5x on problems needing thousands
    // of iterations.
    let (a, b) = bentpipe(nx);
    let mut c64 = ctx_for(a.n(), 2_250_000);
    let mut x = vec![0.0f64; a.n()];
    let r64 = Gmres::new(&a, &Identity, GmresConfig::default().with_max_iters(60_000))
        .solve(&mut c64, &b, &mut x);
    assert!(r64.status.is_converged());
    assert!(
        r64.iterations > 800,
        "need the many-iterations regime, got {}",
        r64.iterations
    );

    let mut cir = ctx_for(a.n(), 2_250_000);
    let mut xir = vec![0.0f64; a.n()];
    let rir = GmresIr::<f32, f64>::new(&a, &Identity, IrConfig::default().with_max_iters(60_000))
        .solve(&mut cir, &b, &mut xir);
    assert!(rir.status.is_converged());

    let speedup = c64.elapsed() / cir.elapsed();
    assert!(
        (1.15..=1.60).contains(&speedup),
        "IR speedup {speedup:.2} outside the paper's band (1.2-1.5)"
    );
}

#[test]
fn shape_ir_speedup_on_slow_problems() {
    check_ir_speedup_on_slow_problems(BENTPIPE_NX);
}

#[test]
#[ignore = "full-size shape; run via the paper-shapes-full CI job"]
fn shape_ir_speedup_on_slow_problems_full() {
    check_ir_speedup_on_slow_problems(BENTPIPE_NX_FULL);
}

fn check_kernel_speedup_ordering(nx: usize) {
    // Paper Table I ordering: SpMV >> GEMV(NoTrans) > GEMV(Trans) > Norm.
    let (a, b) = bentpipe(nx);
    let run = |ir: bool| {
        let mut c = ctx_for(a.n(), 2_250_000);
        let mut x = vec![0.0f64; a.n()];
        if ir {
            GmresIr::<f32, f64>::new(&a, &Identity, IrConfig::default().with_max_iters(60_000))
                .solve(&mut c, &b, &mut x);
        } else {
            Gmres::new(&a, &Identity, GmresConfig::default().with_max_iters(60_000))
                .solve(&mut c, &b, &mut x);
        }
        c.report()
    };
    let rep64 = run(false);
    let repir = run(true);
    let s = |cat: PaperCategory| rep64.seconds(cat) / repir.seconds(cat);
    let spmv = s(PaperCategory::SpMV);
    let gemv_n = s(PaperCategory::GemvNoTrans);
    let gemv_t = s(PaperCategory::GemvTrans);
    let norm = s(PaperCategory::Norm);
    assert!(spmv > 2.0, "SpMV speedup {spmv:.2} (paper 2.48)");
    assert!(
        gemv_n > gemv_t,
        "GEMV ordering violated: {gemv_n:.2} vs {gemv_t:.2}"
    );
    assert!(
        gemv_t > norm * 0.98,
        "GEMV(T) {gemv_t:.2} should beat Norm {norm:.2}"
    );
    // Norm is latency-bound, so its speedup is smallest (paper: 1.15 per
    // call); these are category *totals*, and IR makes ~10% more norm
    // calls (extra iterations + inner-cycle norms), so the ratio can dip
    // just below 1.
    assert!(
        norm > 0.9 && norm < 1.3,
        "Norm speedup {norm:.2} (paper 1.15)"
    );
}

#[test]
fn shape_kernel_speedup_ordering() {
    check_kernel_speedup_ordering(BENTPIPE_NX);
}

#[test]
#[ignore = "full-size shape; run via the paper-shapes-full CI job"]
fn shape_kernel_speedup_ordering_full() {
    check_kernel_speedup_ordering(BENTPIPE_NX_FULL);
}

fn check_fp32_floor_fp64_converges_ir_tracks(nx: usize) {
    // Paper Fig. 3.
    let (a, b) = bentpipe(nx);
    let mut x64 = vec![0.0f64; a.n()];
    let r64 = Gmres::new(&a, &Identity, GmresConfig::default().with_max_iters(60_000)).solve(
        &mut ctx_for(a.n(), 2_250_000),
        &b,
        &mut x64,
    );
    assert!(r64.status.is_converged());

    let a32 = a.convert::<f32>();
    let b32 = vec![1.0f32; a.n()];
    let mut x32 = vec![0.0f32; a.n()];
    let r32 = Gmres::new(
        &a32,
        &Identity,
        GmresConfig::default().with_max_iters(r64.iterations),
    )
    .solve(&mut ctx_for(a.n(), 2_250_000), &b32, &mut x32);
    assert!(!r32.status.is_converged(), "fp32 must not certify 1e-10");
    let floor = r32.best_residual();
    assert!(
        floor < 1e-3 && floor > 1e-9,
        "fp32 floor {floor:.2e} should be ~1e-5ish"
    );

    let mut xir = vec![0.0f64; a.n()];
    let rir = GmresIr::<f32, f64>::new(&a, &Identity, IrConfig::default().with_max_iters(60_000))
        .solve(&mut ctx_for(a.n(), 2_250_000), &b, &mut xir);
    assert!(rir.status.is_converged());
    // IR tracks fp64: iteration count within ~1 restart cycle + 15%.
    let gap = rir.iterations as f64 / r64.iterations as f64;
    assert!(
        (0.85..=1.25).contains(&gap),
        "IR/fp64 iteration ratio {gap:.2} — curves should track (paper: 13150 vs 12967)"
    );
}

#[test]
fn shape_fp32_floor_fp64_converges_ir_tracks() {
    check_fp32_floor_fp64_converges_ir_tracks(BENTPIPE_NX);
}

#[test]
#[ignore = "full-size shape; run via the paper-shapes-full CI job"]
fn shape_fp32_floor_fp64_converges_ir_tracks_full() {
    check_fp32_floor_fp64_converges_ir_tracks(BENTPIPE_NX_FULL);
}

fn check_restart_size_tradeoff(nx: usize, m_small: usize, m_big: usize) {
    // Paper Table II: larger m lowers fp64 iterations but raises time
    // (orthogonalization dominates). The comparison pair is
    // size-dependent: at 96² the paper's 25-vs-100 pair shows it, but
    // on smaller grids the iteration count collapses so fast with m
    // that total time falls again past m = 50, so the downscaled
    // variant compares 25 vs 50 (measured at 72²: 4498 iters/0.0293 s
    // vs 3273 iters/0.0307 s — fewer iterations, more time).
    let (a, b) = bentpipe(nx);
    let run_m = |m: usize| {
        let mut c = ctx_for(a.n(), 2_250_000);
        let mut x = vec![0.0f64; a.n()];
        let r = Gmres::new(
            &a,
            &Identity,
            GmresConfig::default().with_m(m).with_max_iters(80_000),
        )
        .solve(&mut c, &b, &mut x);
        assert!(r.status.is_converged(), "m={m}: {:?}", r.status);
        (r.iterations, c.elapsed())
    };
    let (it_small, t_small) = run_m(m_small);
    let (it_big, t_big) = run_m(m_big);
    assert!(it_big < it_small, "bigger subspace must lower iterations");
    assert!(
        t_big > t_small,
        "but time must rise as orthogonalization grows"
    );
}

#[test]
fn shape_restart_size_tradeoff() {
    check_restart_size_tradeoff(BENTPIPE_NX, 25, 50);
}

#[test]
#[ignore = "full-size shape; run via the paper-shapes-full CI job"]
fn shape_restart_size_tradeoff_full() {
    check_restart_size_tradeoff(BENTPIPE_NX_FULL, 25, 100);
}

fn check_fd_never_beats_ir_materially(nx: usize) {
    // Paper Figs. 1-2: the best tuned FD is at most on par with untuned IR.
    let a = GpuMatrix::new(galeri::uniflow2d(nx, 0.9));
    let b = vec![1.0f64; a.n()];
    let paper_n = 6_250_000;

    let mut cir = ctx_for(a.n(), paper_n);
    let mut xir = vec![0.0f64; a.n()];
    let rir = GmresIr::<f32, f64>::new(
        &a,
        &Identity,
        IrConfig::default().with_m(25).with_max_iters(60_000),
    )
    .solve(&mut cir, &b, &mut xir);
    assert!(rir.status.is_converged());
    let t_ir = cir.elapsed();

    let id32 = Identity;
    let id64 = Identity;
    let mut best_fd = f64::INFINITY;
    for k in 1..=6usize {
        let mut c = ctx_for(a.n(), paper_n);
        let mut x = vec![0.0f64; a.n()];
        let fd = GmresFd::<f32, f64>::new(
            &a,
            &id32,
            &id64,
            FdConfig {
                m: 25,
                switch_at: k * 25,
                max_iters: 60_000,
                ..FdConfig::default()
            },
        );
        let res = fd.solve(&mut c, &b, &mut x);
        if res.result.status.is_converged() {
            best_fd = best_fd.min(c.elapsed());
        }
    }
    assert!(
        best_fd >= 0.85 * t_ir,
        "tuned FD {best_fd:.4}s should not materially beat untuned IR {t_ir:.4}s"
    );
}

#[test]
fn shape_fd_never_beats_ir_materially() {
    check_fd_never_beats_ir_materially(36);
}

#[test]
#[ignore = "full-size shape; run via the paper-shapes-full CI job"]
fn shape_fd_never_beats_ir_materially_full() {
    check_fd_never_beats_ir_materially(48);
}

#[test]
fn shape_half_inner_needs_more_refinements_than_fp32() {
    // The future-work third precision: fp16 inner cycles are weaker, so
    // more refinements are needed for the same tolerance.
    let a = GpuMatrix::new(galeri::laplace2d(16, 16));
    let b = vec![1.0f64; a.n()];
    let cfg = IrConfig::default().with_m(16).with_max_iters(50_000);
    let mut x32 = vec![0.0f64; a.n()];
    let r32 = GmresIr::<f32, f64>::new(&a, &Identity, cfg).solve(
        &mut ctx_for(a.n(), 2_250_000),
        &b,
        &mut x32,
    );
    let mut x16 = vec![0.0f64; a.n()];
    let r16 = GmresIr::<Half, f64>::new(&a, &Identity, cfg).solve(
        &mut ctx_for(a.n(), 2_250_000),
        &b,
        &mut x16,
    );
    assert!(r32.status.is_converged());
    assert!(r16.status.is_converged(), "{:?}", r16.status);
    assert!(
        r16.restarts >= r32.restarts,
        "fp16 should need at least as many refinements: {} vs {}",
        r16.restarts,
        r32.restarts
    );
}

/// The batched multi-RHS path is guarded at tier-1 too: a k=3 BentPipe
/// block solve must reproduce the single-RHS solves bit-for-bit (the
/// full parity matrix lives in `crates/core/tests/block_parity.rs`).
#[test]
fn shape_multirhs_block_solve_matches_singles() {
    let a = GpuMatrix::new(galeri::bentpipe2d(24, 0.5));
    let n = a.n();
    let cols: Vec<Vec<f64>> = (0..3)
        .map(|j| {
            (0..n)
                .map(|i| 1.0 + j as f64 * 0.25 * (((i * 7 + j) % 13) as f64 / 13.0 - 0.5))
                .collect()
        })
        .collect();
    let cfg = GmresConfig::default().with_m(30).with_max_iters(20_000);
    let mut singles = Vec::new();
    for bcol in &cols {
        let mut c = ctx_for(n, 2_250_000);
        let mut x = vec![0.0f64; n];
        let r = Gmres::new(&a, &Identity, cfg).solve(&mut c, bcol, &mut x);
        assert!(r.status.is_converged());
        singles.push((r, x));
    }
    let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
    let b = MultiVec::from_columns(&col_refs);
    let mut x = MultiVec::<f64>::zeros(n, 3);
    let mut c = ctx_for(n, 2_250_000);
    let results = BlockGmres::new(&a, &Identity, cfg).solve(&mut c, &b, &mut x);
    for (l, (rs, xs)) in singles.iter().enumerate() {
        assert_eq!(rs.status, results[l].status);
        assert_eq!(rs.iterations, results[l].iterations, "rhs {l}");
        for (a_, b_) in xs.iter().zip(x.col(l)) {
            assert_eq!(a_.to_bits(), b_.to_bits(), "rhs {l}");
        }
    }
}
