//! # multiprec-gmres
//!
//! A reproduction of *"Experimental Evaluation of Multiprecision
//! Strategies for GMRES on GPUs"* (Loe, Glusa, Yamazaki, Boman,
//! Rajamanickam — IPDPS 2021, arXiv:2105.07544) as a Rust workspace.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`scalar`] — precision abstraction (`f64`/`f32`/software `f16`).
//! - [`la`] — sparse/dense kernels (the Kokkos-Kernels stand-in).
//! - [`matgen`] — PDE test matrices (the Galeri stand-in) and SuiteSparse
//!   surrogates.
//! - [`gpusim`] — the calibrated V100 performance model and cache
//!   simulator.
//! - [`solver`] — GMRES(m), GMRES-IR, GMRES-FD and the GPU-friendly
//!   preconditioners (the paper's contribution).
//!
//! See `examples/` for runnable walkthroughs and
//! `crates/bench` for the harness that regenerates every figure and
//! table of the paper.
//!
//! ```
//! use multiprec_gmres::prelude::*;
//!
//! let a = GpuMatrix::new(multiprec_gmres::matgen::galeri::laplace2d(16, 16));
//! let b = vec![1.0f64; a.n()];
//! let mut x = vec![0.0f64; a.n()];
//! let mut ctx = GpuContext::new(DeviceModel::v100_belos());
//! let ir = GmresIr::<f32, f64>::new(&a, &Identity, IrConfig::default().with_m(20));
//! assert!(ir.solve(&mut ctx, &b, &mut x).status.is_converged());
//! ```

pub use mpgmres as solver;
pub use mpgmres_gpusim as gpusim;
pub use mpgmres_la as la;
pub use mpgmres_matgen as matgen;
pub use mpgmres_scalar as scalar;

/// Convenient glob-import surface for examples and downstream users:
/// the solver crate's own [`mpgmres::prelude`] (drivers, the
/// `SolveRequest`/`SolverService` serving surface, configurations,
/// operand and device handles) plus the backend handles, preconditioner
/// constructors, and profiler categories examples reach for.
pub mod prelude {
    pub use mpgmres::precond::block_jacobi::BlockJacobi;
    pub use mpgmres::precond::mixed::CastPreconditioner;
    pub use mpgmres::precond::poly::PolyPreconditioner;
    pub use mpgmres::prelude::*;
    pub use mpgmres::{Backend, ParallelBackend, ReferenceBackend};
    pub use mpgmres_gpusim::{KernelClass, PaperCategory};
    pub use mpgmres_scalar::Scalar;
}
